"""Scatter–gather scaling: sharded range search vs the single store.

Times the fixed-seed 100k-point range workload against
:class:`~repro.shard.store.ShardedSpatialStore` at 1/2/4 shards under
each executor (serial, thread, process), with the 1-shard serial
configuration as the baseline.  Every configuration must return the
same matches (byte-identity is the differential suite's job; here we
cross-check match counts as a cheap tripwire), and a selective corner
box must show shard pruning (``shards_pruned >= 1``).

The acceptance floor — >= 1.5x at 4 shards with the process executor —
only holds where parallel hardware exists, so it is asserted when
``os.cpu_count() >= 2`` and reported otherwise (a single-core host
serialises the pool and measures pure dispatch overhead).

Runs two ways:

* as a pytest bench, writing ``benchmarks/results/sharding_scaling.txt``::

      PYTHONPATH=src python -m pytest benchmarks/bench_sharding.py -q

* as a standalone script for CI smoke runs::

      PYTHONPATH=src python benchmarks/bench_sharding.py --smoke
"""

import argparse
import os
import sys
import time

from repro.core.geometry import Box, Grid
from repro.shard import ShardedSpatialStore, make_executor
from repro.workloads.datasets import make_dataset
from repro.workloads.queries import query_workload

DEPTH = 10
NPOINTS = 100_000
SEED = 0
SHARD_COUNTS = (1, 2, 4)
EXECUTORS = ("serial", "thread", "process")
SPEEDUP_FLOOR = 1.5


def _build_workload(depth=DEPTH, npoints=NPOINTS, seed=SEED):
    grid = Grid(ndims=2, depth=depth)
    points = make_dataset("C", grid, npoints, seed=seed).points
    specs = query_workload(
        grid, volumes=(0.01, 0.03), aspects=(1.0, 2.0), locations=5,
        seed=seed + 1,
    )
    return grid, points, [spec.box for spec in specs]


def _time_queries(store, boxes, repeats=3):
    """Min-of-repeats wall time for the box sweep, pool pre-warmed."""
    for box in boxes[:2]:  # warm executor pool + decompose cache
        store.range_query(box)
    best = float("inf")
    total = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        total = sum(store.range_query(box).nmatches for box in boxes)
        best = min(best, time.perf_counter() - t0)
    return best, total


def bench_pruning(store):
    """A selective corner box must skip shards before dispatch."""
    side = store.grid.side
    box = Box(((0, max(1, side // 8)), (0, max(1, side // 8))))
    result = store.range_query(box)
    return {
        "shards_hit": len(result.shards_hit),
        "shards_pruned": result.shards_pruned,
    }


def run(depth=DEPTH, npoints=NPOINTS, shard_counts=SHARD_COUNTS,
        executors=EXECUTORS, seed=SEED, verbose=True):
    grid, points, boxes = _build_workload(depth, npoints, seed)
    rows = []
    pruning = None
    baseline_s = None
    baseline_matches = None
    for nshards in shard_counts:
        store = ShardedSpatialStore.build(grid, points, nshards=nshards)
        try:
            if nshards == max(shard_counts):
                pruning = bench_pruning(store)
            for kind in executors:
                if nshards == 1 and kind != "serial":
                    continue  # one shard never fans out
                store.set_executor(make_executor(kind))
                elapsed, matches = _time_queries(store, boxes)
                if baseline_matches is None:
                    baseline_s, baseline_matches = elapsed, matches
                assert matches == baseline_matches, (
                    f"shards={nshards} {kind}: {matches} matches, "
                    f"baseline {baseline_matches}"
                )
                rows.append(
                    {
                        "nshards": nshards,
                        "executor": kind,
                        "elapsed_s": elapsed,
                        "speedup": baseline_s / elapsed if elapsed else 0.0,
                    }
                )
        finally:
            store.close()
    report = format_report(npoints, depth, boxes, rows, pruning)
    if verbose:
        print(report)
    return rows, pruning, report


def format_report(npoints, depth, boxes, rows, pruning):
    lines = [
        "# Sharded scatter–gather: range-search wall time by configuration",
        f"  {npoints:,} pts, depth {depth}, {len(boxes)} boxes, "
        f"{os.cpu_count() or 1} cpu(s)",
        "",
    ]
    for r in rows:
        lines.append(
            f"  shards={r['nshards']}  {r['executor']:<7}  "
            f"{r['elapsed_s'] * 1e3:>8.1f} ms   {r['speedup']:.2f}x"
        )
    if pruning is not None:
        lines.append(
            f"  selective corner box: shards_hit={pruning['shards_hit']} "
            f"shards_pruned={pruning['shards_pruned']}"
        )
    return "\n".join(lines)


def _best_speedup(rows, nshards, executor):
    for r in rows:
        if r["nshards"] == nshards and r["executor"] == executor:
            return r["speedup"]
    return 0.0


# ----------------------------------------------------------------------
# pytest entry point (writes the result artifact)
# ----------------------------------------------------------------------


def test_sharding_scaling(results_dir):
    from conftest import save_result

    rows, pruning, report = run(verbose=False)
    save_result(results_dir, "sharding_scaling.txt", report)
    assert pruning is not None and pruning["shards_pruned"] >= 1, report
    if (os.cpu_count() or 1) >= 2:
        # The acceptance floor: 4 shards through the process pool.
        assert _best_speedup(rows, 4, "process") >= SPEEDUP_FLOOR, report


# ----------------------------------------------------------------------
# CLI entry point (CI smoke)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, identity + pruning checks only (no floor)",
    )
    parser.add_argument("--points", type=int, default=NPOINTS)
    parser.add_argument("--depth", type=int, default=DEPTH)
    args = parser.parse_args(argv)
    npoints = 12_000 if args.smoke else args.points
    depth = 8 if args.smoke else args.depth
    from gates import gate

    rows, pruning, _ = run(depth=depth, npoints=npoints)
    checks = [(
        pruning is not None and pruning["shards_pruned"] >= 1,
        "selective box pruned at least one shard",
    )]
    notes = []
    if args.smoke:
        checks.append((True, "identity held across configurations"))
    else:
        speedup = _best_speedup(rows, 4, "process")
        if (os.cpu_count() or 1) < 2:
            notes.append(
                f"single-core host, {SPEEDUP_FLOOR}x floor not "
                f"enforced (measured {speedup:.2f}x)"
            )
        else:
            checks.append((
                speedup >= SPEEDUP_FLOOR,
                f"4-shard process speedup {speedup:.2f}x "
                f"(floor {SPEEDUP_FLOOR}x)",
            ))
    return gate("sharding", checks, notes)


if __name__ == "__main__":
    sys.exit(main())
