"""Section 5.1: space requirements of box decompositions.

Regenerates the analysis results as tables:

* ``E(U, V)`` against the bit span of ``U OR V`` (the driver of element
  count);
* the cyclicity ``E(U, V) = E(2U, 2V)``;
* the boundary-expansion (coarsening) optimization: element reduction
  vs area error for growing ``m``;
* surface-vs-volume: element count tracks the perimeter, an explicit
  grid tracks the area.
"""


from conftest import save_result

from repro.core.analysis import (
    bit_span,
    coarsen_size,
    coarsening_tradeoff,
    element_count_2d,
)

DEPTH = 10  # 1024 x 1024 grid


def test_bit_span_correlation(benchmark, results_dir):
    """E(U, V) grows with the bit span of U | V at (nearly) fixed area."""

    def build_table():
        rows = []
        # Boxes with similar area ~10000 but different bit structure.
        cases = [
            (128, 78),   # U has one 1-bit
            (100, 100),  # round decimal
            (96, 104),   # mostly-zero low bits
            (101, 99),   # odd
            (127, 79),   # all-ones patterns
            (125, 81),
        ]
        for u, v in cases:
            rows.append(
                (u, v, bit_span(u | v), element_count_2d(u, v, DEPTH))
            )
        return rows

    rows = benchmark(build_table)
    lines = [f"{'U':>5} {'V':>5} {'span(U|V)':>10} {'E(U,V)':>8}"]
    for u, v, span, count in sorted(rows, key=lambda r: r[2]):
        lines.append(f"{u:>5} {v:>5} {span:>10} {count:>8}")
    save_result(results_dir, "space_bit_span.txt", "\n".join(lines))
    by_span = sorted(rows, key=lambda r: r[2])
    # Lowest span beats highest span decisively.
    assert by_span[0][3] < by_span[-1][3]


def test_cyclicity(benchmark, results_dir):
    """E(U, V) = E(2U, 2V) across a sweep."""

    def check():
        lines = [f"{'U':>5} {'V':>5} {'E(U,V)':>8} {'E(2U,2V)':>9}"]
        for u, v in [(3, 5), (13, 9), (100, 37), (255, 254), (77, 200)]:
            a = element_count_2d(u, v, DEPTH - 1)
            b = element_count_2d(2 * u, 2 * v, DEPTH)
            assert a == b, (u, v)
            lines.append(f"{u:>5} {v:>5} {a:>8} {b:>9}")
        return "\n".join(lines)

    table = benchmark(check)
    save_result(results_dir, "space_cyclicity.txt", table)


def test_coarsening_tradeoff_sweep(benchmark, results_dir):
    """The m-bit boundary expansion: elements shrink fast, area error
    grows slowly (the paper's optimization)."""

    def sweep():
        return [
            coarsening_tradeoff((0b0110110101, 0b0101101101), DEPTH, m)
            for m in range(0, 8)
        ]

    tradeoffs = benchmark(sweep)
    lines = [
        f"{'m':>2} {'U_prime':>8} {'V_prime':>8} {'elements':>9} "
        f"{'reduction':>10} {'area_err':>9}"
    ]
    for t in tradeoffs:
        lines.append(
            f"{t.m:>2} {t.coarsened_sizes[0]:>8} {t.coarsened_sizes[1]:>8} "
            f"{t.elements_after:>9} {t.element_reduction:>10.2%} "
            f"{t.volume_error:>9.2%}"
        )
    save_result(results_dir, "space_coarsening.txt", "\n".join(lines))
    # Monotone element reduction; error stays bounded.
    counts = [t.elements_after for t in tradeoffs]
    assert counts == sorted(counts, reverse=True)
    assert tradeoffs[4].element_reduction > 0.4
    assert tradeoffs[4].volume_error < 0.2


def test_surface_not_volume(benchmark, results_dir):
    """Element count scales with the border (perimeter), while an
    explicit grid scales with the area: the 'very hard to beat' claim."""

    def sweep():
        rows = []
        # Avoid exact doubling: E(U, V) = E(2U, 2V) would keep the
        # count constant by cyclicity.  Subtracting one keeps the bit
        # structure "messy" so the border genuinely grows.
        for scale in (1, 2, 4, 8):
            u = 101 * scale - 1
            v = 67 * scale - 1
            elements = element_count_2d(u, v, DEPTH)
            area = u * v
            perimeter = 2 * (u + v)
            rows.append((u, v, elements, area, perimeter))
        return rows

    rows = benchmark(sweep)
    lines = [
        f"{'U':>5} {'V':>5} {'elements':>9} {'area':>8} {'perimeter':>9} "
        f"{'elem/perim':>10}"
    ]
    for u, v, e, a, p in rows:
        lines.append(f"{u:>5} {v:>5} {e:>9} {a:>8} {p:>9} {e / p:>10.2f}")
    save_result(results_dir, "space_surface_vs_volume.txt", "\n".join(lines))
    # Doubling the box doubles the perimeter (2x) and quadruples the
    # area (4x).  Surface-driven growth means each doubling multiplies
    # the element count by ~2, clearly below the 4x an explicit grid
    # (volume-driven) would pay.
    counts = [e for _, _, e, _, _ in rows]
    for before, after in zip(counts[1:], counts[2:]):
        assert 1.5 < after / before < 3.2
    # Pixels per element (the inverse density) grows with the box: the
    # representation gets cheaper per unit of area as objects grow.
    assert rows[-1][3] / rows[-1][2] > rows[1][3] / rows[1][2]
