"""The perf-trajectory gate: deterministic trace counters vs baseline.

Runs a fixed-seed query workload (planned range queries through the zkd
index plus a Section-4 overlap join) under a :mod:`repro.obs` trace and
collects every counter the instrumented layers publish — elements
generated, pages accessed, node visits, buffer misses, merge advances,
rows in/out.  With fixed seeds these are *byte-stable*, so CI diffs
them against ``benchmarks/baselines/trace_counters.json`` and fails on
any increase: an algorithmic regression that wall-clock timing would
bury in noise.

Runs three ways:

* as a pytest bench (determinism + gate self-check)::

      PYTHONPATH=src python -m pytest benchmarks/bench_trace_counters.py -q

* as the CI gate::

      PYTHONPATH=src python benchmarks/bench_trace_counters.py \
          --check benchmarks/baselines/trace_counters.json \
          --out BENCH_${SHA}.json

* to re-pin the baseline after an intentional change::

      PYTHONPATH=src python benchmarks/bench_trace_counters.py \
          --update-baseline benchmarks/baselines/trace_counters.json
"""

import argparse
import json
import pathlib
import random
import sys
import time

from repro.core.geometry import Box, Grid
from repro.db import INTEGER, OID, SPATIAL_OBJECT, Schema, SpatialDatabase
from repro.db.query import Query
from repro.db.relation import Relation
from repro.db.spatial import overlap_query
from repro.db.types import SpatialObject
from repro.obs import compare_counters, trace
from repro.shard import ShardedSpatialStore
from repro.workloads.datasets import make_dataset
from repro.workloads.queries import query_workload

BASELINE_PATH = (
    pathlib.Path(__file__).parent / "baselines" / "trace_counters.json"
)

DEPTH = 7
NPOINTS = 1500
NOBJECTS = 30
CAPACITY = 20
SEED = 0


def _build_database(depth=DEPTH, npoints=NPOINTS, capacity=CAPACITY,
                    seed=SEED):
    grid = Grid(ndims=2, depth=depth)
    db = SpatialDatabase(grid, page_capacity=capacity)
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    dataset = make_dataset("C", grid, npoints, seed=seed)
    db.insert_many(
        "points",
        [(f"p{i}", x, y) for i, (x, y) in enumerate(dataset.points)],
    )
    db.create_index("points_xy", "points", ("x", "y"))
    return grid, db


def _object_relation(name, prefix, grid, count, rng):
    relation = Relation(
        name, Schema.of(("id@", OID), ("geom", SPATIAL_OBJECT))
    )
    extent = max(2, grid.side // 16)
    for i in range(count):
        x = rng.randrange(grid.side - extent)
        y = rng.randrange(grid.side - extent)
        box = Box(((x, x + extent), (y, y + extent)))
        relation.insert(
            (f"{prefix}{i}", SpatialObject.from_box(f"{prefix}{i}", box))
        )
    return relation


def collect_server(depth=DEPTH, capacity=CAPACITY, seed=SEED):
    """Deterministic request-lifecycle counters from the query service.

    The service runs on a *step clock* (every reading advances a fixed
    0.5 s), so deadline expiry and breaker transitions are pure
    functions of the request sequence — no wall clock anywhere.  The
    scripted lifecycle drives each counter family exactly once:

    * healthy armed requests (``server.deadline.armed``),
    * a budget that runs out mid row-scan — the cooperative abort
      (``server.deadline.expired`` + ``server.deadline.scan_aborts``),
    * injected dispatch faults that trip the backend breaker, one shed
      on the open circuit, then a clock jump past ``reset_timeout`` so
      the half-open probe closes it again (``breaker.opened`` /
      ``breaker.shed`` / ``breaker.probes`` / ``breaker.closed``).

    Only nonzero ``server.deadline.*`` / ``breaker.*`` values are
    returned: the baseline gates the lifecycle, not the zero padding.
    """
    import asyncio

    from repro.faults import FaultInjector
    from repro.server import QueryService

    grid = Grid(ndims=2, depth=depth)
    db = SpatialDatabase(grid, page_capacity=capacity)
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    dataset = make_dataset("C", grid, 500, seed=seed)
    db.insert_many(
        "points",
        [(f"p{i}", x, y) for i, (x, y) in enumerate(dataset.points)],
    )
    db.create_index("points_xy", "points", ("x", "y"))
    # An index-less table big enough that its row scan passes several
    # cooperative deadline checks (one per 1024 rows).
    db.create_table(
        "bare", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    rng = random.Random(seed + 5)
    db.insert_many(
        "bare",
        [
            (f"b{i}", rng.randrange(grid.side), rng.randrange(grid.side))
            for i in range(16_000)
        ],
    )

    ticks = [0.0]

    def clock():
        ticks[0] += 0.5
        return ticks[0]

    injector = FaultInjector(seed=seed)
    service = QueryService(
        db,
        batching=False,
        request_timeout=3600.0,
        faults=injector,
        clock=clock,
        breaker_options={
            "min_samples": 2,
            "failure_threshold": 0.5,
            "reset_timeout": 60.0,
        },
    )
    half = grid.side // 2
    box = [[0, half], [0, half]]

    async def drive():
        client = service.connect("bench")
        try:
            points_req = {
                "op": "range", "table": "points",
                "cols": ["x", "y"], "box": box,
            }
            # Healthy armed requests (budget capped at request_timeout).
            for i in range(3):
                resp = await service.handle_request(
                    client, dict(points_req, id=i, deadline_ms=7_200_000)
                )
                assert resp["ok"], resp
            # A 6 s budget is 12 clock steps: the bare-table row scan
            # reads the clock every 1024 rows, so the budget runs out
            # mid-scan and the cooperative abort fires.
            resp = await service.handle_request(
                client,
                {
                    "op": "range", "table": "bare", "cols": ["x", "y"],
                    "box": box, "id": 10, "deadline_ms": 6_000,
                },
            )
            assert resp["rejected"]["reason"] == "deadline", resp
            # Three dispatch faults: the window reaches 3 ok / 3 fail,
            # which is exactly the 0.5 failure threshold — trip.
            injector.rule("server.dispatch", "error", times=3)
            for i in (20, 21, 22):
                resp = await service.handle_request(
                    client, dict(points_req, id=i)
                )
                assert resp["error"]["type"] == "internal", resp
            # The open circuit sheds before any work is queued.
            resp = await service.handle_request(
                client, dict(points_req, id=23)
            )
            assert resp["rejected"]["reason"] == "breaker", resp
            # Past reset_timeout the half-open probe succeeds: closed.
            ticks[0] += 500.0
            resp = await service.handle_request(
                client, dict(points_req, id=24)
            )
            assert resp["ok"], resp
        finally:
            service.disconnect(client)
            service.close()

    asyncio.run(drive())
    snapshot = service.stats_snapshot()
    merged = {**snapshot["server"], **snapshot.get("breaker", {})}
    return {
        key: value
        for key, value in merged.items()
        if value
        and (key.startswith("server.deadline.") or key.startswith("breaker."))
    }


def collect(depth=DEPTH, npoints=NPOINTS, nobjects=NOBJECTS,
            capacity=CAPACITY, seed=SEED):
    """Every published counter, summed over the fixed workload.

    Range-query counters are prefixed ``range.``, overlap-join counters
    ``join.``, SQL statements ``sql.`` (including the ``planner.*``
    family); all values are integers (``elapsed_s`` lives in span
    timings, not counters, so nothing here is wall-clock-dependent).
    """
    grid, db = _build_database(depth, npoints, capacity, seed)
    specs = query_workload(
        grid, volumes=(0.01, 0.05), aspects=(1.0, 4.0), locations=3,
        seed=seed + 1,
    )
    counters = {}

    def fold(prefix, totals):
        for key, value in totals.items():
            name = f"{prefix}.{key}"
            counters[name] = counters.get(name, 0) + value

    for spec in specs:
        with trace("range") as t:
            Query(db, "points").within(("x", "y"), spec.box).run()
        fold("range", t.total_counters())

    rng = random.Random(seed + 2)
    p_objects = _object_relation("P", "p", grid, nobjects, rng)
    q_objects = _object_relation("Q", "q", grid, nobjects, rng)
    with trace("join") as t:
        overlap_query(
            p_objects, q_objects, "geom", "id@",
            grid=grid, max_depth=max(1, depth - 3),
        )
    fold("join", t.total_counters())

    # The SQL layer: one multi-conjunct single-table statement (z-window
    # access + reordered attribute/residual filters) and one OVERLAPS
    # join, so the planner.* counters and the per-filter cardinalities
    # gate alongside the raw operator counters.
    from repro.sql import execute_sql

    for table, source in (("pobjs", p_objects), ("qobjs", q_objects)):
        db.create_table(
            table, Schema.of(("id@", OID), ("geom", SPATIAL_OBJECT))
        )
        db.insert_many(table, list(source.rows))
    side = grid.side
    statements = (
        f"SELECT id@ FROM points "
        f"WHERE BOX({side // 8}, {5 * side // 8}, {side // 8}, "
        f"{5 * side // 8}) CONTAINS POINT(x, y) "
        f"AND x + y > {3 * side // 4} "
        f"AND x BETWEEN {side // 4} AND {side // 2} ORDER BY id@",
        "SELECT pobjs.id@, qobjs.id@ FROM pobjs "
        "JOIN qobjs ON OVERLAPS(pobjs.geom, qobjs.geom) "
        "WHERE pobjs.id@ != 'p0' ORDER BY pobjs.id@, qobjs.id@",
    )
    for statement in statements:
        with trace("sql") as t:
            execute_sql(db, statement)
        fold("sql", t.total_counters())

    # The semantic result cache, same range workload run twice against
    # a cache-enabled database: pass one misses and admits, pass two
    # hits, and every cache.* counter (plus the storage counters the
    # miss pass still publishes) lands in the baseline.  Outcomes are
    # seed-deterministic, so hit/miss tallies gate like page counts.
    db_c = SpatialDatabase(grid, page_capacity=capacity, cache=True)
    db_c.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    db_c.insert_many(
        "points",
        [
            (f"p{i}", x, y)
            for i, (x, y) in enumerate(
                make_dataset("C", grid, npoints, seed=seed).points
            )
        ],
    )
    db_c.create_index("points_xy", "points", ("x", "y"))
    for _ in range(2):
        for spec in specs:
            with trace("cached-range") as t:
                Query(db_c, "points").within(("x", "y"), spec.box).run()
            fold("cached", t.total_counters())

    # The sharded engine, same workload: scatter–gather range queries
    # through a 4-shard store plus the partition-parallel overlap join
    # (serial executor, so counters stay executor-invariant).
    store = ShardedSpatialStore.build(
        grid, make_dataset("C", grid, npoints, seed=seed).points, nshards=4
    )
    for spec in specs:
        with trace("shard-range") as t:
            store.range_query(spec.box)
        fold("shard", t.total_counters())
    with trace("shard-join") as t:
        overlap_query(
            p_objects, q_objects, "geom", "id@",
            grid=grid, max_depth=max(1, depth - 3),
            partitioner=store.partitioner,
        )
    fold("shard", t.total_counters())
    store.close()

    # The proximity operators: a k-NN sweep over the shifted orderings
    # and one epsilon cross-match per join strategy.  Their counters
    # already carry the ``knn.`` / ``zones.`` prefixes, so they merge
    # unprefixed — new baseline sections, existing keys untouched.
    from repro.proximity import (
        knn as knn_search,
        nested_epsilon_join,
        zmerge_epsilon_join,
        zones_epsilon_join,
    )
    from repro.storage.prefix_btree import ZkdTree
    from repro.workloads import cross_match_catalogs, knn_workload

    primary, secondary = cross_match_catalogs(grid, 400, seed=seed + 3)
    tree = ZkdTree(grid, page_capacity=capacity)
    tree.bulk_load(sorted(set(primary.points)))
    pts_a, pts_b = list(primary.points), list(secondary.points)
    with trace("proximity") as t:
        for center in knn_workload(grid, primary, 8, seed=seed + 4):
            knn_search(tree, grid, center, 8)
        zones_epsilon_join(pts_a, pts_b, 2.5)
        zmerge_epsilon_join(grid, pts_a, pts_b, 2.5)
        nested_epsilon_join(pts_a, pts_b, 2.5)
    for key, value in t.total_counters().items():
        # Keep only the operator families; the refinement box queries
        # also publish raw storage counters, which the ``range.`` fold
        # already gates in its own workload.
        if key.startswith(("knn.", "zones.")):
            counters[key] = counters.get(key, 0) + value

    # The serving lifecycle on a step clock: deadline and breaker
    # counters land in the same baseline as the operator counters.
    counters.update(collect_server(depth=depth, capacity=capacity,
                                   seed=seed))
    return counters


def measure_overhead(repeats=3):
    """Wall time of the range workload with tracing off vs on.

    The disabled path costs one global load per query/operator; the
    ratio quantifies what the full span machinery adds when enabled.
    """
    grid, db = _build_database()
    specs = query_workload(
        grid, volumes=(0.01, 0.05), aspects=(1.0, 4.0), locations=3,
        seed=SEED + 1,
    )

    def run_workload(traced):
        t0 = time.perf_counter()
        for spec in specs:
            query = Query(db, "points").within(("x", "y"), spec.box)
            if traced:
                query.run_traced()
            else:
                query.run()
        return time.perf_counter() - t0

    run_workload(False)  # warm caches before timing
    disabled = min(run_workload(False) for _ in range(repeats))
    enabled = min(run_workload(True) for _ in range(repeats))
    return {
        "disabled_s": disabled,
        "enabled_s": enabled,
        "enabled_over_disabled": enabled / disabled if disabled else 0.0,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------


def test_counters_deterministic(results_dir):
    """Two independent collections must agree bit-for-bit — the property
    the CI gate stands on."""
    from conftest import save_result

    first = collect()
    second = collect()
    assert first == second
    assert first  # non-empty: the instrumentation actually published
    lines = [f"{k} {v}" for k, v in sorted(first.items())]
    save_result(results_dir, "trace_counters.txt", "\n".join(lines))


def test_counters_match_committed_baseline():
    """The committed baseline is what CI diffs against; drift means
    either a regression or a baseline that needs re-pinning."""
    baseline = json.loads(BASELINE_PATH.read_text())["counters"]
    report = compare_counters(collect(), baseline)
    assert report.ok, report.summary()


# ----------------------------------------------------------------------
# CLI entry point (CI gate)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the collected counters as a BENCH json artifact",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="diff against a baseline json; exit 1 on regression",
    )
    parser.add_argument(
        "--update-baseline", metavar="BASELINE",
        help="write the collected counters as the new baseline",
    )
    parser.add_argument(
        "--overhead", action="store_true",
        help="also time the workload traced vs untraced",
    )
    args = parser.parse_args(argv)

    counters = collect()
    payload = {
        "bench": "trace_counters",
        "workload": {
            "depth": DEPTH, "npoints": NPOINTS, "nobjects": NOBJECTS,
            "capacity": CAPACITY, "seed": SEED,
        },
        "counters": dict(sorted(counters.items())),
    }
    print(f"collected {len(counters)} deterministic counters")

    if args.overhead:
        overhead = measure_overhead()
        payload["overhead"] = overhead
        print(
            f"workload wall time: untraced {overhead['disabled_s'] * 1e3:.1f} ms, "
            f"traced {overhead['enabled_s'] * 1e3:.1f} ms "
            f"({overhead['enabled_over_disabled']:.2f}x)"
        )

    if args.out:
        pathlib.Path(args.out).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.out}")

    if args.update_baseline:
        path = pathlib.Path(args.update_baseline)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"bench": "trace_counters", "counters": payload["counters"]},
                indent=2,
            )
            + "\n"
        )
        print(f"baseline pinned at {path}")

    from gates import gate

    checks = [(
        len(counters) > 0,
        f"{len(counters)} deterministic counters collected",
    )]
    if args.check:
        baseline = json.loads(pathlib.Path(args.check).read_text())[
            "counters"
        ]
        report = compare_counters(counters, baseline)
        print(report.summary())
        checks.append(
            (report.ok, "counters match the committed baseline")
        )
    return gate("trace-counters", checks)


if __name__ == "__main__":
    sys.exit(main())
