"""Uniform benchmark gating: one grep-able GATE line, one exit code.

Every ``bench_*.py`` CLI gate funnels its floor checks through
:func:`gate` so CI can grep a single format::

    GATE PASS: kernels - 2-d batched shuffle speedup 3.4x (floor 3.0x)
    GATE FAIL: sharding - 4-shard process speedup 1.1x below the 1.3x floor

A failing gate prints the line on stderr and returns exit code 1; a
passing gate prints on stdout and returns 0.  Environment caveats that
waive a floor (single-core hosts, smoke mode) are reported as ``NOTE:``
lines ahead of the verdict, so a waived floor still passes loudly.
"""

from __future__ import annotations

import sys
from typing import Iterable, Sequence, Tuple

__all__ = ["gate"]

#: A check: (passed, description).  The description reads as a reason
#: when failed and as supporting detail when passed.
Check = Tuple[bool, str]


def gate(
    name: str,
    checks: Sequence[Check],
    notes: Iterable[str] = (),
) -> int:
    """Print ``NOTE:`` lines, then exactly one GATE verdict line.

    Returns the process exit code (0 pass, 1 fail) so mains can end
    with ``return gate(...)``.
    """
    for note in notes:
        print(f"NOTE: {note}")
    failures = [detail for ok, detail in checks if not ok]
    if failures:
        print(f"GATE FAIL: {name} - {'; '.join(failures)}", file=sys.stderr)
        return 1
    passed = [detail for ok, detail in checks if detail]
    detail = "; ".join(passed) if passed else "all checks passed"
    print(f"GATE PASS: {name} - {detail}")
    return 0
