"""Concurrent-session read throughput: snapshots under a hot writer,
and the process-executor read-scaling ceiling.

Two measurements:

* **Sessions under write load** — 1/4/8 reader threads, each cycling
  ``db.session()`` snapshots over range queries, race one hot writer
  committing insert bursts the whole time.  Reported as queries/sec
  per configuration, with the snapshot/COW counters; correctness is
  asserted (every session's double-read is identical, zero leak
  counters at teardown).  Pure-Python readers share the GIL, so this
  section *reports* rather than enforces scaling — it exists to show
  snapshot pin/COW overhead does not collapse throughput while a
  writer churns epochs.

* **Process-executor scaling** — reader threads sweep range queries
  through a 4-shard :class:`~repro.shard.store.ShardedSpatialStore`
  on the ``process`` executor, the serving configuration a session
  front-end would sit on.  The store is write-quiesced during the
  sweep (a mutation would rebind the worker pool), which is exactly
  what a pinned snapshot guarantees a reader.  The acceptance floor —
  4 reader threads >= 2x single-thread — needs real parallel
  hardware, so it is asserted when ``os.cpu_count() >= 4`` and
  reported otherwise.

Runs two ways:

* as a pytest bench, writing
  ``benchmarks/results/concurrency_throughput.txt``::

      PYTHONPATH=src python -m pytest benchmarks/bench_concurrency.py -q

* as a standalone script for CI smoke runs::

      PYTHONPATH=src python benchmarks/bench_concurrency.py --smoke
"""

import argparse
import itertools
import os
import random
import sys
import threading
import time

from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.shard import ShardedSpatialStore, make_executor
from repro.workloads.datasets import make_dataset
from repro.workloads.queries import query_workload

READER_COUNTS = (1, 4, 8)
SPEEDUP_FLOOR = 2.0
FLOOR_CPUS = 4

# -- sessions under write load ----------------------------------------

DB_DEPTH = 8
DB_SEED_ROWS = 4_000
READS_PER_READER = 60
READS_PER_SESSION = 6
WRITER_BATCH = 8

# -- process-executor scaling -----------------------------------------

SHARD_DEPTH = 10
SHARD_NPOINTS = 60_000
SHARD_COUNT = 4
SWEEP_ROUNDS = 2


def _session_workload(depth, nrows, seed):
    grid = Grid(ndims=2, depth=depth)
    side = grid.side
    rng = random.Random(seed)
    schema = Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    db = SpatialDatabase(grid, page_capacity=32, concurrency=True)
    db.create_table("pts", schema)
    db.insert_many(
        "pts",
        [
            (i, rng.randrange(side), rng.randrange(side))
            for i in range(nrows)
        ],
    )
    db.create_index("pts_xy", "pts", ("x", "y"), buffer_frames=16)
    return db, grid


def _random_box(rng, side):
    x0, x1 = sorted(rng.randrange(side) for _ in range(2))
    y0, y1 = sorted(rng.randrange(side) for _ in range(2))
    return Box(((x0, x1), (y0, y1)))


def bench_sessions(
    reader_counts=READER_COUNTS,
    depth=DB_DEPTH,
    nrows=DB_SEED_ROWS,
    reads_per_reader=READS_PER_READER,
    seed=0,
):
    """Readers on cycling snapshots vs one hot writer; q/s per config."""
    rows = []
    for nreaders in reader_counts:
        db, grid = _session_workload(depth, nrows, seed)
        side = grid.side
        stop = threading.Event()
        errors = []
        commits = itertools.count()
        ncommits = 0

        def writer():
            nonlocal ncommits
            rng = random.Random(f"{seed}-writer")
            ids = itertools.count(10_000_000)
            while not stop.is_set():
                with db.session() as session:
                    for _ in range(WRITER_BATCH):
                        session.insert(
                            "pts",
                            (
                                next(ids),
                                rng.randrange(side),
                                rng.randrange(side),
                            ),
                        )
                    session.commit()
                ncommits += 1

        def reader(tid):
            rng = random.Random(f"{seed}-reader-{tid}")
            done = 0
            try:
                while done < reads_per_reader:
                    with db.session() as session:
                        for _ in range(READS_PER_SESSION):
                            if done >= reads_per_reader:
                                break
                            box = _random_box(rng, side)
                            first = session.range_query(
                                "pts", ("x", "y"), box
                            ).rows
                            again = session.range_query(
                                "pts", ("x", "y"), box
                            ).rows
                            assert first == again, "snapshot moved"
                            done += 1
                            next(commits)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        wthread = threading.Thread(target=writer)
        rthreads = [
            threading.Thread(target=reader, args=(t,))
            for t in range(nreaders)
        ]
        wthread.start()
        t0 = time.perf_counter()
        for t in rthreads:
            t.start()
        for t in rthreads:
            t.join()
        elapsed = time.perf_counter() - t0
        stop.set()
        wthread.join()
        if errors:
            raise errors[0]
        manager = db.snapshots
        manager.reclaim()
        leaks = manager.leak_stats()
        assert all(v == 0 for v in leaks.values()), leaks
        counters = manager.counters()
        rows.append(
            {
                "nreaders": nreaders,
                "qps": (nreaders * reads_per_reader) / elapsed,
                "writer_commits": ncommits,
                "pins": counters.get("snapshot.pins", 0),
                "cow_retained": counters.get("cow.retained", 0),
                "cow_reclaimed": counters.get("cow.reclaimed", 0),
            }
        )
    return rows


def bench_scaling(
    reader_counts=READER_COUNTS,
    depth=SHARD_DEPTH,
    npoints=SHARD_NPOINTS,
    nshards=SHARD_COUNT,
    rounds=SWEEP_ROUNDS,
    seed=0,
):
    """Reader-thread q/s through the process pool, store quiesced."""
    grid = Grid(ndims=2, depth=depth)
    points = make_dataset("C", grid, npoints, seed=seed).points
    specs = query_workload(
        grid, volumes=(0.01, 0.03), aspects=(1.0, 2.0), locations=4,
        seed=seed + 1,
    )
    boxes = [spec.box for spec in specs]
    store = ShardedSpatialStore.build(grid, points, nshards=nshards)
    store.set_executor(make_executor("process"))
    rows = []
    try:
        # Warm the pool and every per-process cache before the 1-reader
        # baseline, or the ratios flatter the threaded configs.
        for box in boxes:
            store.range_query(box)
        expected = sum(store.range_query(b).nmatches for b in boxes)

        def sweep(tid, counts):
            total = 0
            for _ in range(rounds):
                for box in boxes:
                    total += store.range_query(box).nmatches
            counts[tid] = total

        baseline = None
        for nreaders in reader_counts:
            best = 0.0
            for _ in range(2):
                counts = [0] * nreaders
                threads = [
                    threading.Thread(target=sweep, args=(t, counts))
                    for t in range(nreaders)
                ]
                t0 = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                elapsed = time.perf_counter() - t0
                assert all(c == expected * rounds for c in counts)
                best = max(
                    best, (nreaders * rounds * len(boxes)) / elapsed
                )
            if baseline is None:
                baseline = best
            rows.append(
                {
                    "nreaders": nreaders,
                    "qps": best,
                    "speedup": best / baseline if baseline else 0.0,
                }
            )
    finally:
        store.close()
    return rows


def format_report(session_rows, scaling_rows):
    ncpus = os.cpu_count() or 1
    lines = [
        "# Concurrent sessions: read throughput ({} cpu(s))".format(ncpus),
        "",
        "## Snapshot sessions vs one hot writer (GIL-shared, reported)",
    ]
    for r in session_rows:
        lines.append(
            f"  readers={r['nreaders']}  {r['qps']:>8.1f} q/s   "
            f"writer commits={r['writer_commits']}  "
            f"pins={r['pins']}  cow retained/reclaimed="
            f"{r['cow_retained']}/{r['cow_reclaimed']}"
        )
    lines += ["", "## Reader threads through the process executor"]
    for r in scaling_rows:
        lines.append(
            f"  readers={r['nreaders']}  {r['qps']:>8.1f} q/s   "
            f"{r['speedup']:.2f}x"
        )
    lines.append(
        f"  floor: {SPEEDUP_FLOOR}x at 4 readers "
        + (
            "(enforced)"
            if ncpus >= FLOOR_CPUS
            else f"(reported only: host has {ncpus} < {FLOOR_CPUS} cpus)"
        )
    )
    return "\n".join(lines)


def _speedup_at(rows, nreaders):
    for r in rows:
        if r["nreaders"] == nreaders:
            return r["speedup"]
    return 0.0


# ----------------------------------------------------------------------
# pytest entry point (writes the result artifact)
# ----------------------------------------------------------------------


def test_concurrency_throughput(results_dir):
    from conftest import save_result

    session_rows = bench_sessions()
    scaling_rows = bench_scaling()
    report = format_report(session_rows, scaling_rows)
    save_result(results_dir, "concurrency_throughput.txt", report)
    # The hot writer must actually have been hot.
    assert all(r["writer_commits"] > 0 for r in session_rows), report
    if (os.cpu_count() or 1) >= FLOOR_CPUS:
        assert _speedup_at(scaling_rows, 4) >= SPEEDUP_FLOOR, report


# ----------------------------------------------------------------------
# CLI entry point (CI smoke)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, correctness checks only (no floor)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        session_rows = bench_sessions(
            reader_counts=(1, 4), nrows=800, reads_per_reader=12
        )
        scaling_rows = bench_scaling(
            reader_counts=(1, 4), npoints=8_000, depth=8, rounds=1
        )
    else:
        session_rows = bench_sessions()
        scaling_rows = bench_scaling()
    from gates import gate

    print(format_report(session_rows, scaling_rows))
    checks = [(
        all(r["writer_commits"] > 0 for r in session_rows),
        "hot writer committed during snapshot reads",
    )]
    notes = []
    if args.smoke:
        checks.append(
            (True, "snapshot reads stable under writes, zero leaks")
        )
    else:
        speedup = _speedup_at(scaling_rows, 4)
        if (os.cpu_count() or 1) < FLOOR_CPUS:
            notes.append(
                f"{os.cpu_count() or 1}-cpu host, {SPEEDUP_FLOOR}x "
                f"floor not enforced (measured {speedup:.2f}x)"
            )
        else:
            checks.append((
                speedup >= SPEEDUP_FLOOR,
                f"4-reader process speedup {speedup:.2f}x "
                f"(floor {SPEEDUP_FLOOR}x)",
            ))
    return gate("concurrency", checks, notes)


if __name__ == "__main__":
    sys.exit(main())
