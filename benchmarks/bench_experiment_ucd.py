"""Section 5.3.2: the U / C / D range-query experiments, full size.

Paper setup: prefix B+-tree over 5000 points in z order, page capacity
20; rectangular queries of several shapes x four volumes x five random
locations; measured quantities are data-page accesses and efficiency.

Reproduced findings asserted here:

1. trends from the analysis hold in all experiments (pages grow with
   volume; long-narrow shapes beat squarish ones for cost);
2. the analytic prediction is an approximate upper bound, tightest for
   U and loosest for D;
3. efficiency increases with query volume;
4. the most efficient shapes are square or twice-as-tall.
"""

import pytest

from conftest import save_result

from repro.core.geometry import Grid
from repro.experiments.harness import (
    check_findings,
    format_summary,
    run_ucd_experiment,
)
from repro.workloads.datasets import PAPER_NPOINTS, PAPER_PAGE_CAPACITY

GRID = Grid(ndims=2, depth=8)  # 256 x 256


def run_full(name):
    return run_ucd_experiment(
        GRID,
        name,
        npoints=PAPER_NPOINTS,
        page_capacity=PAPER_PAGE_CAPACITY,
        locations=5,
        seed=0,
    )


@pytest.fixture(scope="module")
def all_rows():
    return {name: run_full(name)[1] for name in ("U", "C", "D")}


@pytest.mark.parametrize("name", ["U", "C", "D"])
def test_experiment_runs(benchmark, results_dir, name):
    measurements, rows = benchmark.pedantic(
        run_full, args=(name,), rounds=1, iterations=1
    )
    assert len(measurements) == 4 * 7 * 5  # volumes x aspects x locations
    findings = check_findings(rows)
    table = format_summary(rows)
    save_result(
        results_dir,
        f"experiment_{name}.txt",
        f"{table}\n\nfindings: {findings}",
    )


def test_finding1_trends_everywhere(all_rows):
    for name, rows in all_rows.items():
        findings = check_findings(rows)
        assert findings.pages_grow_with_volume, name
        assert findings.narrow_costs_more_than_square, name


def test_finding2_prediction_upper_bound(all_rows):
    u = check_findings(all_rows["U"])
    assert u.prediction_upper_bound_fraction >= 0.6


def test_finding2_ordering_u_closest_d_farthest(all_rows):
    def deviation(rows):
        return sum(
            abs(r.mean_pages - r.predicted_pages) / r.predicted_pages
            for r in rows
        ) / len(rows)

    assert deviation(all_rows["U"]) <= deviation(all_rows["D"])


def test_finding3_efficiency_grows_with_volume(all_rows):
    for name in ("U", "C"):
        findings = check_findings(all_rows[name])
        assert findings.efficiency_grows_with_volume, name


def test_finding4_best_shapes(all_rows):
    findings = check_findings(all_rows["U"])
    assert 1.0 in findings.best_aspects or 0.5 in findings.best_aspects


def test_finding3b_low_efficiency_means_few_pages(all_rows):
    """'Low efficiency was usually accompanied by a low number of page
    accesses (fortunately).'  The least efficient quartile of cells must
    not be more expensive than the average cell."""
    import statistics

    for name, rows in all_rows.items():
        ranked = sorted(rows, key=lambda r: r.mean_efficiency)
        quartile = ranked[: max(1, len(ranked) // 4)]
        low_eff_pages = statistics.fmean(r.mean_pages for r in quartile)
        overall_pages = statistics.fmean(r.mean_pages for r in rows)
        assert low_eff_pages <= overall_pages * 1.1, name


def test_page_capacity_sensitivity(results_dir):
    """Ablation: halving/doubling the page capacity scales page counts
    roughly inversely (the analysis' N dependence)."""
    lines = ["capacity  npages  pages/query"]
    pages_by_capacity = {}
    for capacity in (10, 20, 40):
        _, rows = run_ucd_experiment(
            GRID,
            "U",
            npoints=PAPER_NPOINTS,
            page_capacity=capacity,
            volumes=(0.04,),
            aspects=(1.0,),
            locations=5,
            seed=0,
        )
        mean_pages = rows[0].mean_pages
        pages_by_capacity[capacity] = mean_pages
        lines.append(f"{capacity:>8}  {mean_pages:>11.1f}")
    save_result(results_dir, "ablation_page_capacity.txt", "\n".join(lines))
    assert pages_by_capacity[10] > pages_by_capacity[20] > pages_by_capacity[40]
