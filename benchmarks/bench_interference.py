"""Section 6, CAD interference detection via spatial join.

An assembly of parts at mixed resolutions: the single self spatial join
classifies all pairs; refinement (a finer grid) resolves potential
interferences, mirroring the filter-and-refine architecture.
"""

import random


from conftest import save_result

from repro.core.geometry import Grid, circle_classifier
from repro.core.interference import Solid, detect_interference


def build_assembly(grid, nparts, seed, max_depth=None):
    rng = random.Random(seed)
    solids = []
    placements = {}
    for i in range(nparts):
        r = rng.randint(4, 10)
        cx = rng.randrange(r + 1, grid.side - r - 1)
        cy = rng.randrange(r + 1, grid.side - r - 1)
        name = f"part{i}"
        placements[name] = (cx, cy, r)
        solids.append(
            Solid.from_object(
                name, grid, circle_classifier((cx, cy), float(r)), max_depth
            )
        )
    return solids, placements


def true_interferences(placements):
    out = set()
    names = sorted(placements)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            ax, ay, ar = placements[a]
            bx, by, br = placements[b]
            if (ax - bx) ** 2 + (ay - by) ** 2 <= (ar + br) ** 2:
                # Circles whose pixel rasters overlap (conservative:
                # centre-distance vs radius sum; verified below by
                # raster check when needed).
                out.add(frozenset((a, b)))
    return out


def test_full_resolution_detection_exact(benchmark, results_dir):
    """At full depth, definite pairs are exactly the raster overlaps."""
    grid = Grid(2, 6)
    solids, placements = build_assembly(grid, 10, seed=1)

    report = benchmark.pedantic(
        detect_interference, args=(solids,), rounds=1, iterations=1
    )
    # Raster ground truth.
    rasters = {}
    for name, (cx, cy, r) in placements.items():
        rasters[name] = {
            (x, y)
            for x in range(grid.side)
            for y in range(grid.side)
            if (x - cx) ** 2 + (y - cy) ** 2 <= r * r
        }
    expected = {
        frozenset((a, b))
        for a in rasters
        for b in rasters
        if a < b and rasters[a] & rasters[b]
    }
    assert report.definite == expected
    assert report.potential == set()  # full depth: no uncertainty
    save_result(
        results_dir,
        "interference_exact.txt",
        f"{len(solids)} parts, {len(expected)} interfering pairs, "
        f"all classified definite at full resolution",
    )


def test_filter_and_refine(results_dir):
    """Coarse pass filters; the fine pass refines only flagged pairs."""
    coarse_grid = Grid(2, 6)
    solids, placements = build_assembly(
        coarse_grid, 12, seed=2, max_depth=8
    )
    coarse = detect_interference(solids)
    flagged = coarse.definite | coarse.potential

    fine_solids, _ = build_assembly(coarse_grid, 12, seed=2)
    fine = detect_interference(fine_solids)

    # Soundness of the filter: every true (fine) interference was
    # flagged by the coarse pass.
    assert fine.definite <= flagged
    refined_away = len(flagged) - len(fine.definite)
    save_result(
        results_dir,
        "interference_refine.txt",
        f"coarse flagged: {len(flagged)} pairs "
        f"({len(coarse.definite)} definite, {len(coarse.potential)} "
        f"potential)\nfine (refined) interferences: {len(fine.definite)}\n"
        f"false alarms removed by refinement: {refined_away}",
    )


def test_interference_scales(benchmark):
    """Larger assembly through the single-join classifier."""
    grid = Grid(2, 7)
    solids, _ = build_assembly(grid, 20, seed=3, max_depth=10)
    report = benchmark(lambda: detect_interference(solids))
    assert isinstance(report.definite, set)
