"""Section 6, overlay: "performance is determined by the surface area of
spatial objects, not volume".

Compares the AG overlay (merge of element sequences / z intervals)
against the explicit-grid overlay (pixel at a time) as object size
grows: the grid algorithm's cost quadruples per doubling while the AG
algorithm's roughly doubles.
"""

import time

import pytest

from conftest import save_result

from repro.core.geometry import Box, Grid, circle_classifier
from repro.core.overlay import ElementRegion, map_overlay


def grid_overlay_pixel_count(grid, classify_a, classify_b):
    """The explicit-grid algorithm: classify every pixel of both
    objects.  Returns intersection area; cost is O(volume of space)."""
    count = 0
    for x in range(grid.side):
        for y in range(grid.side):
            pixel = Box(((x, x), (y, y)))
            from repro.core.geometry import INSIDE

            if classify_a(pixel) is INSIDE and classify_b(pixel) is INSIDE:
                count += 1
    return count


def test_overlay_correct_vs_grid(results_dir):
    """AG overlay and the pixel-at-a-time overlay agree exactly."""
    grid = Grid(2, 5)
    classify_a = circle_classifier((12, 14), 8.0)
    classify_b = circle_classifier((18, 16), 9.0)
    region_a = ElementRegion.from_object(grid, classify_a)
    region_b = ElementRegion.from_object(grid, classify_b)
    ag_area = (region_a & region_b).area()
    grid_area = grid_overlay_pixel_count(grid, classify_a, classify_b)
    assert ag_area == grid_area
    save_result(
        results_dir,
        "overlay_correctness.txt",
        f"intersection area: AG={ag_area} explicit-grid={grid_area}",
    )


def test_overlay_cost_tracks_surface(benchmark, results_dir):
    """The intersection merge runs on element sequences whose length is
    surface-driven; doubling the radius roughly doubles the work."""

    def overlay_at(depth, radius):
        grid = Grid(2, depth)
        c = grid.side // 2
        a = ElementRegion.from_object(
            grid, circle_classifier((c - radius // 3, c), radius)
        )
        b = ElementRegion.from_object(
            grid, circle_classifier((c + radius // 3, c), radius)
        )
        start = time.perf_counter()
        for _ in range(5):
            face = a & b
        elapsed = (time.perf_counter() - start) / 5
        return len(a.elements()) + len(b.elements()), face.area(), elapsed

    rows = []
    for depth, radius in ((6, 12), (7, 24), (8, 48)):
        nelements, area, elapsed = overlay_at(depth, radius)
        rows.append((radius, nelements, area, elapsed))

    lines = [f"{'radius':>7} {'elements':>9} {'area':>8} {'seconds':>9}"]
    for radius, nelements, area, elapsed in rows:
        lines.append(
            f"{radius:>7} {nelements:>9} {area:>8} {elapsed:>9.5f}"
        )
    save_result(results_dir, "overlay_surface_scaling.txt", "\n".join(lines))

    # Element count (the merge's input size) doubles-ish per radius
    # doubling, while the intersection *area* quadruples.
    (r1, e1, a1, _), (_, e2, a2, _), (_, e3, a3, _) = rows
    assert a3 / a1 > 10  # area grew ~16x
    assert e3 / e1 < 8  # elements grew ~4x (2x per doubling)

    # Timing anchor for pytest-benchmark.
    grid = Grid(2, 7)
    a = ElementRegion.from_object(grid, circle_classifier((50, 60), 24.0))
    b = ElementRegion.from_object(grid, circle_classifier((70, 64), 24.0))
    benchmark(lambda: a & b)


def test_multi_layer_overlay(benchmark, results_dir):
    """GIS map overlay over two layers of several polygons each."""
    grid = Grid(2, 7)

    def build_and_overlay():
        soils = {
            f"soil{i}": ElementRegion.from_box(
                grid, Box(((i * 30, i * 30 + 40), (0, 127)))
            )
            for i in range(3)
        }
        zones = {
            f"zone{j}": ElementRegion.from_box(
                grid, Box(((0, 127), (j * 30, j * 30 + 40)))
            )
            for j in range(3)
        }
        return map_overlay(soils, zones)

    faces = benchmark(build_and_overlay)
    assert len(faces) == 9  # every soil strip crosses every zone strip
    total = sum(f.area() for f in faces.values())
    lines = ["face                    area"] + [
        f"{a} x {b:<12} {face.area():>8}"
        for (a, b), face in sorted(faces.items())
    ]
    save_result(results_dir, "overlay_map.txt", "\n".join(lines))
    assert total > 0
