"""Serving benchmark: latency and throughput of the TCP query service.

Simulated client fleets (1, 16 and 64 closed-loop connections) fire
overlapping hot-region range queries at a :class:`repro.server.
QueryService` over real sockets, measuring per-request latency
(p50/p95) and aggregate qps at each concurrency level.

The headline gate is the batching dividend: at 16 clients the
coalescing dispatcher (concurrent queries against one index and epoch
share a single scatter-gather pass) must deliver at least ``2x`` the
qps of serial request-at-a-time dispatch (``max_batch=1`` through the
identical machinery).  Both sides run cache-less so the comparison
isolates batching itself.

``--check benchmarks/baselines/server_latency.json`` additionally
enforces the committed serving floors (min qps, max p95) so CI fails
on serving regressions; ``--write-baseline`` re-pins them from a
fresh measurement with generous margins.
"""

import argparse
import asyncio
import gc
import json
import pathlib
import random
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.core.geometry import Box, Grid  # noqa: E402
from repro.db import INTEGER, OID, Schema, SpatialDatabase  # noqa: E402
from repro.server import QueryClient, QueryService, serve  # noqa: E402
from repro.shard.executor import ResiliencePolicy  # noqa: E402
from repro.workloads.datasets import make_dataset  # noqa: E402

NPOINTS = 8_000
DEPTH = 11
CAPACITY = 20
SEED = 0
CLIENT_LEVELS = (1, 16, 64)
REQUESTS_PER_CLIENT = 12
SPEEDUP_FLOOR = 2.0
BASELINE = pathlib.Path(__file__).parent / "baselines" / "server_latency.json"


def build_database(npoints=NPOINTS, depth=DEPTH, seed=SEED, shards=6):
    grid = Grid(ndims=2, depth=depth)
    db = SpatialDatabase(
        grid, page_capacity=CAPACITY, concurrency=True, cache=False
    )
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    dataset = make_dataset("C", grid, npoints, seed=seed)
    db.insert_many(
        "points",
        [(f"p{i}", x, y) for i, (x, y) in enumerate(dataset.points)],
    )
    # Sharded scatter-gather index: every interval_query pays a 6-way
    # fan-out, which the batched dispatcher amortizes across the group.
    db.create_index(
        "points_xy", "points", ("x", "y"), shards=shards,
    )
    return db


def workload_boxes(grid, count, seed=SEED):
    """Overlapping fat boxes jittered around one hot centre — the
    traffic shape batching exploits.  Overlapping squares share the
    large aligned z cells of their common interior, so the merged
    interval list covers the fleet's elements roughly once; jitter
    keeps the boxes distinct (no free cache-style identity).  The
    centre sits in a sparse region of the clustered dataset so scan
    work (elements, shard fan-outs) dominates over answer size."""
    side = grid.side
    rng = random.Random(seed + 17)
    extent = side // 4
    jitter = side // 24
    cx = cy = 13 * side // 16
    boxes = []
    for _ in range(count):
        x = max(0, min(side - 1 - extent, cx + rng.randrange(-jitter, jitter + 1)))
        y = max(0, min(side - 1 - extent, cy + rng.randrange(-jitter, jitter + 1)))
        boxes.append(Box(((x, x + extent), (y, y + extent))))
    return boxes


async def _client_loop(host, port, boxes, requests, latencies):
    policy = ResiliencePolicy(
        max_retries=6, backoff_base=0.05, backoff_factor=2.0, timeout=60.0
    )
    async with await QueryClient.connect(host, port, policy) as client:
        for i in range(requests):
            box = boxes[i % len(boxes)]
            start = time.perf_counter()
            # Every request carries a generous explicit deadline: the
            # qps/p95 floors therefore price in the armed-deadline path
            # (scope push, cooperative checks, bounded waits), not just
            # the unarmed fast path.
            await client.range_query(
                "points", ("x", "y"), box.ranges, deadline_ms=60_000
            )
            latencies.append(time.perf_counter() - start)


async def _run_level(db, nclients, requests, batching, use_boxes):
    service = QueryService(
        db,
        max_inflight=128,
        client_quota=max(4, requests),
        queue_limit=256,
        batching=batching,
        max_batch=64,
        request_timeout=60.0,
    )
    server = await serve(service)
    # Untimed warm-up through a connection held open for the whole
    # level: builds the service's shared snapshot view and per-epoch
    # row map so the timed fleet measures steady-state serving.
    warm = await QueryClient.connect(server.host, server.port)
    for box in use_boxes[0][:3]:
        await warm.range_query("points", ("x", "y"), box.ranges)
    latencies = []
    start = time.perf_counter()
    try:
        await asyncio.gather(*[
            _client_loop(
                server.host,
                server.port,
                use_boxes[c % len(use_boxes)],
                requests,
                latencies,
            )
            for c in range(nclients)
        ])
    finally:
        elapsed = time.perf_counter() - start
        snapshot = service.stats_snapshot()
        stats = snapshot["server"]
        breaker = snapshot.get("breaker", {})
        await warm.close()
        await server.close()
    total = nclients * requests
    latencies.sort()
    return {
        "clients": nclients,
        "batching": batching,
        "requests": total,
        "qps": total / elapsed,
        "p50_ms": statistics.median(latencies) * 1e3,
        "p95_ms": latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
        * 1e3,
        "batch_size_peak": stats["server.batch_size_peak"],
        "rejected": sum(
            v for k, v in stats.items() if k.startswith("server.rejected.")
        ),
        "deadline_armed": stats.get("server.deadline.armed", 0),
        "deadline_expired": stats.get("server.deadline.expired", 0),
        "breaker_visible": bool(breaker),
        "breaker_open_now": breaker.get("breaker.open_now", 0),
        "breaker_opened": breaker.get("breaker.opened", 0),
    }


def run(npoints=NPOINTS, depth=DEPTH, levels=CLIENT_LEVELS,
        requests=REQUESTS_PER_CLIENT, seed=SEED):
    """Measure every concurrency level batched, plus the 16-client
    serial baseline for the speedup gate."""
    db = build_database(npoints=npoints, depth=depth, seed=seed)
    # Each client cycles its own shuffled copy of a shared box pool, so
    # concurrent requests overlap without being identical.
    pool = workload_boxes(db.grid, 24, seed=seed)
    # Warm the store-level decompose cache once: production traffic
    # repeats query shapes, and cold decomposition would otherwise
    # dominate the short 1-client level.
    from repro.server.batching import batched_range_matches

    entry = db.catalog.index("points_xy")
    batched_range_matches(entry.tree, db.grid, pool)
    rng = random.Random(seed + 23)
    per_client = []
    for _ in range(max(levels)):
        shuffled = list(pool)
        rng.shuffle(shuffled)
        per_client.append(shuffled)

    rows = []
    for nclients in levels:
        rows.append(
            asyncio.run(
                _run_level(db, nclients, requests, True, per_client)
            )
        )
        gc.collect()
    # The dispatch gate pair runs back-to-back (best of two rounds each)
    # so the comparison is not polluted by whatever the larger latency
    # levels left behind in the allocator.
    serial_runs, batched_runs = [], []
    for _ in range(2):
        serial_runs.append(
            asyncio.run(_run_level(db, 16, requests, False, per_client))
        )
        gc.collect()
        batched_runs.append(
            asyncio.run(_run_level(db, 16, requests, True, per_client))
        )
        gc.collect()
    serial = max(serial_runs, key=lambda r: r["qps"])
    batched16 = max(batched_runs, key=lambda r: r["qps"])
    return rows, batched16, serial


def format_report(rows, batched16, serial):
    header = (
        f"{'clients':>8} {'dispatch':>10} {'qps':>9} "
        f"{'p50_ms':>8} {'p95_ms':>8} {'peak_batch':>10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows + [batched16, serial]:
        dispatch = "batched" if row["batching"] else "serial"
        lines.append(
            f"{row['clients']:>8} {dispatch:>10} {row['qps']:>9.0f} "
            f"{row['p50_ms']:>8.2f} {row['p95_ms']:>8.2f} "
            f"{row['batch_size_peak']:>10}"
        )
    lines.append(
        f"\nbatching dividend at 16 clients: "
        f"{batched16['qps'] / serial['qps']:.2f}x qps"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry points (bench-marked smoke)
# ----------------------------------------------------------------------


def test_smoke_levels(results_dir):
    from conftest import save_result

    rows, batched16, serial = run(
        npoints=6_000, depth=8, levels=(1, 8), requests=6
    )
    report = format_report(rows, batched16, serial)
    save_result(results_dir, "server_latency_smoke.txt", report)
    assert all(
        r["rejected"] == 0 for r in rows + [batched16, serial]
    ), report
    assert all(r["requests"] == r["clients"] * 6 for r in rows), report
    # Concurrency must actually have produced multi-request batches.
    assert batched16["batch_size_peak"] > 1, report
    # Deadline + breaker paths were live (and quiet) for every request.
    assert all(
        r["deadline_armed"] == r["requests"] and r["breaker_visible"]
        for r in rows + [batched16, serial]
    ), report


# ----------------------------------------------------------------------
# CLI entry point (CI gate)
# ----------------------------------------------------------------------


def main(argv=None):
    from gates import gate

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller fleet and dataset with a relaxed speedup floor",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", nargs="?", const=str(BASELINE),
        help="enforce the committed qps/p95 serving floors",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="re-pin the serving floors from this measurement",
    )
    parser.add_argument("--points", type=int, default=NPOINTS)
    parser.add_argument("--depth", type=int, default=DEPTH)
    parser.add_argument(
        "--requests", type=int, default=REQUESTS_PER_CLIENT,
        help="closed-loop requests per client (default: 12)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        npoints, depth, levels, requests, floor = (
            NPOINTS, DEPTH, (1, 16), 10, SPEEDUP_FLOOR
        )
    else:
        npoints, depth, levels, requests, floor = (
            args.points, args.depth, CLIENT_LEVELS, args.requests,
            SPEEDUP_FLOOR,
        )
    rows, batched16, serial = run(
        npoints=npoints, depth=depth, levels=levels, requests=requests
    )
    print(format_report(rows, batched16, serial))
    speedup = batched16["qps"] / serial["qps"]

    checks = [
        (
            speedup >= floor,
            f"16-client batched dispatch {speedup:.2f}x serial qps "
            f"(floor {floor}x)",
        ),
        (
            all(
                r["rejected"] == 0 for r in rows + [batched16, serial]
            ),
            "no spurious rejections at any level",
        ),
        (
            all(
                r["deadline_armed"] == r["requests"]
                and r["deadline_expired"] == 0
                for r in rows + [batched16, serial]
            ),
            "every request armed a deadline; none spuriously expired",
        ),
        (
            all(
                r["breaker_visible"]
                and r["breaker_open_now"] == 0
                and r["breaker_opened"] == 0
                for r in rows + [batched16, serial]
            ),
            "breaker section observable in stats; all breakers stayed "
            "closed under healthy load",
        ),
    ]
    notes = []
    if args.write_baseline:
        baseline = {
            "bench": "server_latency",
            "workload": {
                "npoints": npoints, "depth": depth,
                "requests_per_client": requests, "levels": list(levels),
            },
            # Generous margins: floors catch collapses, not jitter.
            "floors": {
                str(r["clients"]): {
                    "qps_min": round(r["qps"] / 4.0, 1),
                    "p95_ms_max": round(r["p95_ms"] * 8.0, 2),
                }
                for r in rows
            },
            "speedup_16_min": floor,
        }
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline pinned at {BASELINE}")
    if args.check:
        pinned = json.loads(pathlib.Path(args.check).read_text())
        for row in rows:
            pin = pinned["floors"].get(str(row["clients"]))
            if pin is None:
                notes.append(
                    f"no pinned floor for {row['clients']} clients"
                )
                continue
            checks.append((
                row["qps"] >= pin["qps_min"],
                f"{row['clients']}-client qps {row['qps']:.0f} "
                f"(floor {pin['qps_min']})",
            ))
            checks.append((
                row["p95_ms"] <= pin["p95_ms_max"],
                f"{row['clients']}-client p95 {row['p95_ms']:.2f} ms "
                f"(ceiling {pin['p95_ms_max']} ms)",
            ))
    return gate("server", checks, notes)


if __name__ == "__main__":
    sys.exit(main())
