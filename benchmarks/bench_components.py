"""Section 6, connected-component labelling on element sequences.

The AG algorithm works on the decomposition (surface-driven element
count) rather than the raster (volume-driven pixel count); the bench
shows cost scaling with element count and agreement with flood fill.
"""

import random
import time


from conftest import save_result

from repro.core.components import label_components
from repro.core.decompose import Element, decompose_box
from repro.core.geometry import Box, Grid


def scatter_boxes(grid, nboxes, max_size, rng):
    boxes = []
    for _ in range(nboxes):
        w = rng.randint(1, max_size)
        h = rng.randint(1, max_size)
        x = rng.randrange(grid.side - w)
        y = rng.randrange(grid.side - h)
        boxes.append(Box(((x, x + w - 1), (y, y + h - 1))))
    return boxes


def disjoint_elements(grid, boxes):
    """Union the boxes into a canonical (disjoint) element sequence."""
    from repro.core.intervals import IntervalSet, intervals_to_elements

    intervals = IntervalSet()
    for box in boxes:
        intervals = intervals | IntervalSet(
            (e.zlo, e.zhi)
            for e in (
                Element.of(z, grid) for z in decompose_box(grid, box)
            )
        )
    return intervals_to_elements(intervals, grid)


def flood_fill(grid, pixels):
    pixels = set(pixels)
    seen = set()
    sizes = []
    for start in pixels:
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        size = 0
        while stack:
            x, y = stack.pop()
            size += 1
            for q in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if q in pixels and q not in seen:
                    seen.add(q)
                    stack.append(q)
        sizes.append(size)
    return len(sizes), sorted(sizes)


def test_labelling_agrees_with_flood_fill(benchmark, results_dir):
    grid = Grid(2, 6)
    rng = random.Random(7)
    boxes = scatter_boxes(grid, 25, 6, rng)
    elements = disjoint_elements(grid, boxes)
    pixels = set()
    for box in boxes:
        pixels |= set(box.pixels())

    cc = benchmark(lambda: label_components(grid, elements))
    expected_count, expected_sizes = flood_fill(grid, pixels)
    assert cc.ncomponents == expected_count
    assert sorted(cc.areas().values()) == expected_sizes
    save_result(
        results_dir,
        "components_agreement.txt",
        f"{len(elements)} elements, {len(pixels)} pixels -> "
        f"{cc.ncomponents} components (flood fill: {expected_count})",
    )


def test_labelling_cost_scales_with_elements(results_dir):
    """Same picture at growing resolution: pixels quadruple per level,
    elements roughly double, and the AG labeller's time follows the
    element count, not the pixel count."""
    rows = []
    for depth in (6, 7, 8):
        grid = Grid(2, depth)
        scale = grid.side // 64
        boxes = [
            Box(
                (
                    (8 * scale, 23 * scale - 1),
                    (8 * scale, 23 * scale - 1),
                )
            ),
            Box(
                (
                    (40 * scale, 55 * scale - 1),
                    (8 * scale, 39 * scale - 1),
                )
            ),
            Box(
                (
                    (8 * scale, 31 * scale - 1),
                    (40 * scale, 47 * scale - 1),
                )
            ),
        ]
        elements = disjoint_elements(grid, boxes)
        npixels = sum(b.volume for b in boxes)
        start = time.perf_counter()
        cc = label_components(grid, elements)
        elapsed = time.perf_counter() - start
        assert cc.ncomponents == 3
        rows.append((depth, len(elements), npixels, elapsed))

    lines = [f"{'depth':>6} {'elements':>9} {'pixels':>9} {'seconds':>9}"]
    for depth, nelem, npix, secs in rows:
        lines.append(f"{depth:>6} {nelem:>9} {npix:>9} {secs:>9.5f}")
    save_result(results_dir, "components_scaling.txt", "\n".join(lines))

    # Pixel count quadruples per level; element count must grow far
    # slower (same aligned boxes -> constant-ish, at most 2x per level).
    (_, e1, p1, _), (_, _, _, _), (_, e3, p3, _) = rows
    assert p3 / p1 == 16
    assert e3 / e1 <= 4


def test_global_properties_queries(benchmark, results_dir):
    """The paper's 'global property' queries: how many objects, what is
    the area of each — answered from the labelling alone."""
    grid = Grid(2, 7)
    rng = random.Random(3)
    boxes = scatter_boxes(grid, 40, 10, rng)
    elements = disjoint_elements(grid, boxes)

    def query():
        cc = label_components(grid, elements)
        areas = cc.areas()
        return len(areas), max(areas.values()), sum(areas.values())

    nobjects, largest, total = benchmark(query)
    assert nobjects >= 1
    assert largest <= total
    save_result(
        results_dir,
        "components_global_properties.txt",
        f"objects: {nobjects}\nlargest area: {largest}\ntotal area: {total}",
    )
