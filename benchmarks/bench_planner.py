"""Planner validation: the Section 5.3.1 cost model steering access
path choice, and where the index/scan crossover falls.

For growing query volumes, measure actual pages for both access paths
and record where the planner flips — the flip should sit near the true
crossover.
"""


from conftest import save_result

from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.planner import plan_range_query
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.workloads.datasets import uniform_dataset

GRID = Grid(ndims=2, depth=8)


def build_db(npoints=5000):
    db = SpatialDatabase(GRID, page_capacity=20)
    db.create_table(
        "pts", Schema.of(("p@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    dataset = uniform_dataset(GRID, npoints, seed=0)
    db.insert_many(
        "pts",
        [(f"p{i}", x, y) for i, (x, y) in enumerate(dataset.points)],
    )
    db.create_index("pts_xy", "pts", ("x", "y"))
    return db


def test_crossover(benchmark, results_dir):
    db = benchmark.pedantic(build_db, rounds=1, iterations=1)
    entry = db._index_for("pts", ("x", "y"))
    scan_pages = -(-len(db.table("pts")) // db.page_capacity)

    lines = [
        f"{'side':>5} {'vol%':>6} {'plan':>11} {'est':>7} "
        f"{'actual idx pages':>17}"
    ]
    flip_seen = False
    previous = None
    for side in (8, 16, 32, 64, 96, 128, 192, 256):
        box = Box(((0, side - 1), (0, side - 1)))
        plan = plan_range_query(db, "pts", ("x", "y"), box)
        actual = entry.tree.range_query(box).pages_accessed
        lines.append(
            f"{side:>5} {100 * plan.selectivity:>6.1f} {plan.method:>11} "
            f"{plan.estimated_pages:>7.1f} {actual:>17}"
        )
        if previous == "index-scan" and plan.method == "table-scan":
            flip_seen = True
        previous = plan.method
    lines.append(f"table scan: {scan_pages} pages")
    save_result(results_dir, "planner_crossover.txt", "\n".join(lines))

    # Small queries must plan as index scans, the whole space as a scan.
    small = plan_range_query(db, "pts", ("x", "y"), Box(((0, 7), (0, 7))))
    huge = plan_range_query(db, "pts", ("x", "y"), GRID.whole_space())
    assert small.method == "index-scan"
    assert huge.method == "table-scan"
    assert flip_seen


def test_estimates_track_actuals(results_dir):
    """The predicted index cost stays within a small factor of the
    measured pages across the sweep (it is a bound-flavoured model)."""
    db = build_db()
    entry = db._index_for("pts", ("x", "y"))
    for side in (8, 32, 64, 128):
        box = Box(((10, 10 + side - 1), (20, 20 + side - 1)))
        if box.clipped_to(GRID.whole_space()) != box:
            continue
        plan = plan_range_query(db, "pts", ("x", "y"), box)
        actual = entry.tree.range_query(box).pages_accessed
        if plan.method == "index-scan":
            assert plan.estimated_pages >= 0.4 * actual
            assert plan.estimated_pages <= 4.0 * max(actual, 1)
