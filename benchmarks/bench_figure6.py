"""Figure 6: the page-boundary partition of the zkd B+-tree.

The paper's setup verbatim: 5000 points, page capacity 20, three
datasets (U, C, D).  Each bench builds the tree, renders the partition
of the space induced by leaf-page boundaries, and asserts structural
facts (page count near N/capacity; partitioning follows the data
distribution).
"""

import pytest

from conftest import save_result

from repro.core.geometry import Grid
from repro.experiments.figures import figure6_partition_map
from repro.experiments.harness import build_tree
from repro.workloads.datasets import (
    PAPER_NPOINTS,
    PAPER_PAGE_CAPACITY,
    make_dataset,
)

GRID = Grid(ndims=2, depth=7)  # 128x128: fine enough to see the shapes


def build_and_render(name):
    dataset = make_dataset(name, GRID, PAPER_NPOINTS, seed=0)
    tree = build_tree(dataset, PAPER_PAGE_CAPACITY)
    return dataset, tree, figure6_partition_map(tree, max_side=64)


@pytest.mark.parametrize("name", ["U", "C", "D"])
def test_figure6_partition(benchmark, results_dir, name):
    dataset, tree, rendering = benchmark.pedantic(
        build_and_render, args=(name,), rounds=1, iterations=1
    )
    # 5000 points at 20/page: between 250 (perfect packing) and ~500
    # (half-full splits) data pages.
    assert 250 <= tree.npages <= 520
    save_result(
        results_dir,
        f"figure6_{name}.txt",
        f"experiment {name}: {tree.npages} data pages, "
        f"{len(tree)} points\n\n{rendering}",
    )


def test_figure6_diagonal_concentrates_pages():
    """Experiment D packs nearly all pages along the x=y line: pixels
    far from the diagonal share the few sparse pages."""
    _, tree_d, _ = build_and_render("D")
    matrix = tree_d.partition_map()
    side = GRID.side
    on_diag = {matrix[i][i] for i in range(side)}
    off_diag = {
        matrix[y][x]
        for x in range(0, side, 4)
        for y in range(0, side, 4)
        if abs(x - y) > side // 4
    }
    # The diagonal crosses most pages; the far-off-diagonal area uses
    # comparatively few distinct pages.
    assert len(on_diag) > len(off_diag)


def test_figure6_clusters_get_small_pages():
    """Experiment C: pages inside a cluster cover little area; empty
    space is covered by few large page regions."""
    dataset, tree, _ = build_and_render("C")
    matrix = tree.partition_map()
    # Page region sizes in pixels.
    from collections import Counter

    region_size = Counter()
    for row in matrix:
        for page in row:
            region_size[page] += 1
    sizes = sorted(region_size.values())
    # Strong skew: the smallest regions (dense clusters) are orders of
    # magnitude smaller than the largest (empty space).
    assert sizes[0] * 10 < sizes[-1]
