"""Microbenchmark: scalar reference z kernels vs the batched fast path.

Reports shuffle/unshuffle throughput (points per second) and box
decomposition throughput (boxes per second, cold cache vs the LRU
front-end) so the kernel speedup lands in the perf trajectory.  The
acceptance floor for this bench is a >= 3x batched shuffle speedup on
100k 2-d points.

Runs two ways:

* as a pytest bench (the repo's usual style), writing
  ``benchmarks/results/kernel_throughput.txt``::

      PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q

* as a standalone script for CI smoke runs::

      PYTHONPATH=src python benchmarks/bench_kernels.py --smoke
"""

import argparse
import random
import sys
import time

from repro.core import fastz
from repro.core.decompose import decompose_box
from repro.core.geometry import Box, Grid
from repro.core.interleave import deinterleave, interleave

DEPTH = 16


def _make_points(n, ndims, depth, seed=0xC0FFEE):
    rng = random.Random(seed)
    side = 1 << depth
    return [
        tuple(rng.randrange(side) for _ in range(ndims)) for _ in range(n)
    ]


def _make_boxes(n, grid, seed=0xB0C5):
    rng = random.Random(seed)
    boxes = []
    for _ in range(n):
        ranges = []
        for _ in range(grid.ndims):
            a = rng.randrange(grid.side)
            b = rng.randrange(grid.side)
            ranges.append((min(a, b), max(a, b)))
        boxes.append(Box(tuple(ranges)))
    return boxes


def _rate(n, seconds):
    return n / seconds if seconds > 0 else float("inf")


def bench_shuffle(npoints, ndims, depth=DEPTH):
    """Scalar reference vs batched interleave; returns a result dict."""
    points = _make_points(npoints, ndims, depth)
    t0 = time.perf_counter()
    reference = [interleave(p, depth) for p in points]
    t1 = time.perf_counter()
    fastz.interleave_many(points[:64], depth)  # warm the tables
    t2 = time.perf_counter()
    batched = fastz.interleave_many(points, depth)
    t3 = time.perf_counter()
    assert batched == reference, "fast path diverged from reference"
    scalar_s, batch_s = t1 - t0, t3 - t2
    return {
        "npoints": npoints,
        "ndims": ndims,
        "depth": depth,
        "scalar_pps": _rate(npoints, scalar_s),
        "batch_pps": _rate(npoints, batch_s),
        "speedup": scalar_s / batch_s if batch_s else float("inf"),
    }


def bench_unshuffle(npoints, ndims, depth=DEPTH):
    codes = fastz.interleave_many(_make_points(npoints, ndims, depth), depth)
    t0 = time.perf_counter()
    reference = [deinterleave(c, ndims, depth) for c in codes]
    t1 = time.perf_counter()
    fastz.deinterleave_many(codes[:64], ndims, depth)  # warm the tables
    t2 = time.perf_counter()
    batched = fastz.deinterleave_many(codes, ndims, depth)
    t3 = time.perf_counter()
    assert batched == reference, "fast path diverged from reference"
    scalar_s, batch_s = t1 - t0, t3 - t2
    return {
        "npoints": npoints,
        "ndims": ndims,
        "depth": depth,
        "scalar_pps": _rate(npoints, scalar_s),
        "batch_pps": _rate(npoints, batch_s),
        "speedup": scalar_s / batch_s if batch_s else float("inf"),
    }


def bench_decompose(nboxes, grid):
    """Uncached decompose_box vs the LRU front-end on a repeating
    workload (each box queried several times, as real workloads do)."""
    boxes = _make_boxes(nboxes, grid)
    workload = boxes * 3
    t0 = time.perf_counter()
    for box in workload:
        decompose_box(grid, box)
    t1 = time.perf_counter()
    fastz.decompose_box_cache_clear()
    t2 = time.perf_counter()
    for box in workload:
        fastz.decompose_box_cached(grid, box)
    t3 = time.perf_counter()
    cold_s, cached_s = t1 - t0, t3 - t2
    return {
        "nqueries": len(workload),
        "grid": f"{grid.ndims}d/depth{grid.depth}",
        "cold_bps": _rate(len(workload), cold_s),
        "cached_bps": _rate(len(workload), cached_s),
        "speedup": cold_s / cached_s if cached_s else float("inf"),
    }


def format_report(shuffles, unshuffles, decomposes):
    lines = ["# Kernel throughput: scalar reference vs batched fast path", ""]
    lines.append("## shuffle (interleave)")
    for r in shuffles:
        lines.append(
            f"  {r['npoints']:>7} pts {r['ndims']}d depth {r['depth']}: "
            f"scalar {r['scalar_pps']:>12,.0f} pts/s   "
            f"batch {r['batch_pps']:>12,.0f} pts/s   "
            f"speedup {r['speedup']:.1f}x"
        )
    lines.append("## unshuffle (deinterleave)")
    for r in unshuffles:
        lines.append(
            f"  {r['npoints']:>7} pts {r['ndims']}d depth {r['depth']}: "
            f"scalar {r['scalar_pps']:>12,.0f} pts/s   "
            f"batch {r['batch_pps']:>12,.0f} pts/s   "
            f"speedup {r['speedup']:.1f}x"
        )
    lines.append("## decompose_box (repeating box workload, x3)")
    for r in decomposes:
        lines.append(
            f"  {r['nqueries']:>7} queries on {r['grid']}: "
            f"cold {r['cold_bps']:>10,.0f} boxes/s   "
            f"cached {r['cached_bps']:>10,.0f} boxes/s   "
            f"speedup {r['speedup']:.1f}x"
        )
    return "\n".join(lines)


def run(npoints=100_000, nboxes=150, verbose=True):
    shuffles = [
        bench_shuffle(npoints, 2),
        bench_shuffle(max(1000, npoints // 4), 3),
        bench_shuffle(max(1000, npoints // 4), 4),
    ]
    unshuffles = [bench_unshuffle(max(1000, npoints // 2), 2)]
    decomposes = [bench_decompose(nboxes, Grid(ndims=2, depth=10))]
    report = format_report(shuffles, unshuffles, decomposes)
    if verbose:
        print(report)
    return shuffles, unshuffles, decomposes, report


# ----------------------------------------------------------------------
# pytest entry point (writes the result artifact)
# ----------------------------------------------------------------------


def test_kernel_throughput(results_dir):
    from conftest import save_result

    shuffles, unshuffles, decomposes, report = run(verbose=False)
    save_result(results_dir, "kernel_throughput.txt", report)
    # The acceptance floor: batched 2-d shuffle of 100k points >= 3x.
    assert shuffles[0]["npoints"] == 100_000
    assert shuffles[0]["speedup"] >= 3.0, report
    # The cached decomposer must beat recomputing on repeats.
    assert decomposes[0]["speedup"] >= 1.5, report


# ----------------------------------------------------------------------
# CLI entry point (CI smoke)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes + relaxed floor, for CI sanity checks",
    )
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--boxes", type=int, default=150)
    args = parser.parse_args(argv)
    if args.smoke:
        npoints, nboxes, floor = 20_000, 40, 2.0
    else:
        npoints, nboxes, floor = args.points, args.boxes, 3.0
    from gates import gate

    shuffles, _, _, _ = run(npoints=npoints, nboxes=nboxes)
    speedup = shuffles[0]["speedup"]
    return gate(
        "kernels",
        [(
            speedup >= floor,
            f"2-d batched shuffle speedup {speedup:.1f}x (floor {floor}x)",
        )],
    )


if __name__ == "__main__":
    sys.exit(main())
