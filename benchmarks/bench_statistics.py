"""Selectivity estimation quality: the zkd-leaf histogram vs the
uniformity assumption of the Section 5 analysis.

On uniform data both estimators are fine; on clustered and diagonal
data the histogram (which falls out of the index for free) is several
times more accurate — the kind of distribution-awareness the PROBE
optimizer would need.
"""

import statistics as stats_module

import pytest

from conftest import save_result

from repro.core.geometry import Grid
from repro.db.statistics import estimate_matches, estimate_pages
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import make_dataset
from repro.workloads.queries import query_workload

GRID = Grid(ndims=2, depth=8)
NPOINTS = 5000


def evaluate(name):
    dataset = make_dataset(name, GRID, NPOINTS, seed=0)
    tree = ZkdTree(GRID, page_capacity=20)
    tree.insert_many(dataset.points)
    specs = query_workload(
        GRID, volumes=(0.01, 0.04), aspects=(1.0, 8.0), locations=5, seed=1
    )
    hist_err = []
    unif_err = []
    page_err = []
    for spec in specs:
        actual = tree.range_query(spec.box)
        hist_err.append(
            abs(estimate_matches(tree, spec.box) - actual.nmatches)
        )
        unif_err.append(
            abs(
                NPOINTS * spec.box.volume / GRID.npixels
                - actual.nmatches
            )
        )
        page_err.append(
            abs(estimate_pages(tree, spec.box) - actual.pages_accessed)
        )
    return (
        stats_module.fmean(hist_err),
        stats_module.fmean(unif_err),
        stats_module.fmean(page_err),
    )


@pytest.fixture(scope="module")
def quality():
    return {name: evaluate(name) for name in ("U", "C", "D")}


def test_estimator_quality_table(benchmark, results_dir, quality):
    benchmark.pedantic(evaluate, args=("C",), rounds=1, iterations=1)
    lines = [
        f"{'set':>3} {'|err| histogram':>16} {'|err| uniform':>14} "
        f"{'|err| pages':>12}"
    ]
    for name, (hist, unif, pages) in quality.items():
        lines.append(f"{name:>3} {hist:>16.1f} {unif:>14.1f} {pages:>12.2f}")
    save_result(results_dir, "statistics_quality.txt", "\n".join(lines))


def test_histogram_beats_uniform_on_skew(quality):
    for name in ("C", "D"):
        hist, unif, _ = quality[name]
        assert hist < unif / 2, name


def test_page_estimates_tight(quality):
    for name, (_, _, pages) in quality.items():
        assert pages < 5.0, name
