"""Section 2, issue 3: "How are insertions and deletions handled?  The
partitioning and the partition index should adapt gracefully as the
number and distribution of points change."

The zkd B+-tree inherits the B-tree's dynamic behaviour.  These benches
stress it:

* heavy insert/delete churn keeps query cost and occupancy healthy;
* a *distribution shift* (uniform points deleted, clustered points
  inserted) leaves no residue: cost converges to that of a tree built
  on the new distribution directly — adaptation the fixed grid
  directory cannot match.
"""

import random
import statistics


from conftest import save_result

from repro.baselines.gridfile import FixedGridIndex
from repro.core.geometry import Box, Grid
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import clustered_dataset, uniform_dataset
from repro.workloads.queries import query_workload

GRID = Grid(ndims=2, depth=8)


def mean_query_pages(tree, specs):
    return statistics.fmean(
        tree.range_query(s.box).pages_accessed for s in specs
    )


def test_churn_keeps_structure_healthy(benchmark, results_dir):
    """50 % of the points replaced, five times over: page count and
    query cost stay within a small band of the fresh-build baseline."""
    dataset = uniform_dataset(GRID, 4000, seed=0)
    specs = query_workload(
        GRID, volumes=(0.02,), aspects=(1.0, 8.0), locations=5, seed=1
    )

    def churn():
        rng = random.Random(2)
        tree = ZkdTree(GRID, page_capacity=20)
        live = list(dataset.points)
        tree.insert_many(live)
        history = []
        for round_index in range(5):
            rng.shuffle(live)
            cut = len(live) // 2
            for point in live[:cut]:
                assert tree.delete(point)
            fresh = [
                (rng.randrange(GRID.side), rng.randrange(GRID.side))
                for _ in range(cut)
            ]
            tree.insert_many(fresh)
            live = live[cut:] + fresh
            history.append(
                (round_index, tree.npages, mean_query_pages(tree, specs))
            )
        tree.tree.check_invariants()
        return live, history

    live, history = benchmark.pedantic(churn, rounds=1, iterations=1)

    fresh_tree = ZkdTree(GRID, page_capacity=20)
    fresh_tree.insert_many(live)
    fresh_cost = mean_query_pages(fresh_tree, specs)

    lines = [f"{'round':>6} {'npages':>7} {'pages/query':>12}"]
    for round_index, npages, cost in history:
        lines.append(f"{round_index:>6} {npages:>7} {cost:>12.1f}")
    lines.append(
        f"fresh build on final points: {fresh_tree.npages} pages, "
        f"{fresh_cost:.1f} pages/query"
    )
    save_result(results_dir, "dynamic_churn.txt", "\n".join(lines))

    final_cost = history[-1][2]
    assert final_cost <= fresh_cost * 1.6  # no pathological decay
    # Occupancy stays above one third (B-tree minimum fill is a half,
    # minus in-flight slack).
    assert 4000 / history[-1][1] >= 20 / 3


def test_distribution_shift_adapts(benchmark, results_dir):
    """Replace a uniform dataset with a clustered one in place; the
    adapted tree must match a fresh clustered build, while the fixed
    grid directory (sized for uniform data) overflows."""
    uniform = uniform_dataset(GRID, 5000, seed=3)
    clustered = clustered_dataset(GRID, nclusters=50, per_cluster=100, seed=4)
    specs = query_workload(
        GRID, volumes=(0.02,), aspects=(1.0,), locations=8, seed=5
    )

    def shift():
        tree = ZkdTree(GRID, page_capacity=20)
        tree.insert_many(uniform.points)
        for point in uniform.points:
            assert tree.delete(point)
        tree.insert_many(clustered.points)
        tree.tree.check_invariants()
        return tree

    shifted = benchmark.pedantic(shift, rounds=1, iterations=1)
    fresh = ZkdTree(GRID, page_capacity=20)
    fresh.insert_many(clustered.points)

    shifted_cost = mean_query_pages(shifted, specs)
    fresh_cost = mean_query_pages(fresh, specs)

    grid_index = FixedGridIndex(GRID, cells_per_axis=16, page_capacity=20)
    grid_index.insert_many(uniform.points)
    for point in uniform.points:
        assert grid_index.delete(point)
    grid_index.insert_many(clustered.points)
    grid_cost = statistics.fmean(
        grid_index.range_query(s.box).pages_accessed for s in specs
    )

    save_result(
        results_dir,
        "dynamic_distribution_shift.txt",
        f"{'structure':>22} {'pages/query':>12}\n"
        f"{'zkd shifted in place':>22} {shifted_cost:>12.1f}\n"
        f"{'zkd fresh build':>22} {fresh_cost:>12.1f}\n"
        f"{'fixed grid (shifted)':>22} {grid_cost:>12.1f}",
    )
    # Graceful adaptation: in-place shift within 50 % of a fresh build.
    assert shifted_cost <= fresh_cost * 1.5


def test_tiny_buffer_churn_correctness():
    """Failure-injection-adjacent: a 2-frame buffer forces constant
    eviction during structure-modifying operations; contents must stay
    exact."""
    rng = random.Random(6)
    tree = ZkdTree(GRID, page_capacity=8, buffer_frames=2)
    model = set()
    for step in range(3000):
        if rng.random() < 0.6 or not model:
            p = (rng.randrange(GRID.side), rng.randrange(GRID.side))
            if p not in model:  # keep the model a set for simplicity
                tree.insert(p)
                model.add(p)
        else:
            p = rng.choice(sorted(model))
            assert tree.delete(p)
            model.remove(p)
    tree.tree.check_invariants()
    assert set(tree.points()) == model
    box = Box(((40, 90), (10, 200)))
    expected = sorted(
        (p for p in model if box.contains_point(p)),
        key=lambda p: GRID.zvalue(p).bits,
    )
    assert list(tree.range_query(box).matches) == expected
