"""Section 5.2: preservation of proximity and the block/page structure.

* z-distance distributions for spatial neighbours at growing offsets —
  "proximity in space in any direction usually corresponds to proximity
  in z order; the greater the discrepancy, the less likely it is";
* probability that neighbours share a fixed-size page;
* the pages-per-block bound (6 in 2-d) checked exhaustively on
  block-aligned neighbourhoods.
"""

import random


from conftest import save_result

from repro.core.geometry import Box, Grid
from repro.core.proximity import (
    neighbour_page_probability,
    page_cover_count,
    proximity_profile,
)

GRID = Grid(ndims=2, depth=9)  # 512 x 512


def test_proximity_profiles(benchmark, results_dir):
    def sweep():
        rng = random.Random(0)
        return [
            proximity_profile(GRID, (offset, 0), samples=2000, rng=rng)
            for offset in (1, 2, 4, 8, 16, 32)
        ]

    profiles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'offset':>7} {'median|dz|':>11} {'p90':>10} {'max':>10}"
    ]
    for p in profiles:
        lines.append(
            f"{p.offset[0]:>7} {p.median:>11.0f} {p.quantile_90:>10.0f} "
            f"{p.maximum:>10}"
        )
    save_result(results_dir, "proximity_profiles.txt", "\n".join(lines))
    medians = [p.median for p in profiles]
    assert medians == sorted(medians)  # farther in space, farther in z
    # Tail thinness: p90 well under the maximum at every offset.
    assert all(p.quantile_90 * 2 <= p.maximum for p in profiles)


def test_same_page_probability(benchmark, results_dir):
    def sweep():
        rng = random.Random(1)
        out = []
        for page_codes in (64, 256, 1024):
            out.append(
                (
                    page_codes,
                    neighbour_page_probability(
                        GRID, (1, 0), page_codes, samples=2000, rng=rng
                    ),
                    neighbour_page_probability(
                        GRID, (0, 1), page_codes, samples=2000, rng=rng
                    ),
                )
            )
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'page_codes':>10} {'P(same|dx=1)':>13} {'P(same|dy=1)':>13}"]
    for codes, px, py in rows:
        lines.append(f"{codes:>10} {px:>13.3f} {py:>13.3f}")
    save_result(results_dir, "proximity_same_page.txt", "\n".join(lines))
    # Larger pages keep neighbours together more often.
    xs = [px for _, px, _ in rows]
    assert xs == sorted(xs)
    # Far above the random-pair baseline.
    assert rows[0][1] > 10 * (64 / GRID.npixels)


def test_pages_per_block_bound(benchmark, results_dir):
    """Exhaustively check the 2-d bound: a block-shaped window overlaps
    at most 6 fixed-size pages, wherever it sits."""
    grid = Grid(2, 6)
    page_codes = 64  # page = 64 consecutive codes; block = 8x8 pixels

    def worst_case():
        worst = 0
        for x in range(grid.side - 8):
            for y in range(grid.side - 8):
                box = Box(((x, x + 7), (y, y + 7)))
                worst = max(worst, page_cover_count(grid, box, page_codes))
        return worst

    worst = benchmark.pedantic(worst_case, rounds=1, iterations=1)
    save_result(
        results_dir,
        "proximity_block_bound.txt",
        f"worst pages overlapped by an 8x8 window (page=64 codes): {worst}\n"
        "paper's bound for 2-d: 6",
    )
    assert worst <= 6
