"""Future work delivered: "Experiments in higher dimensions ... are
still needed" (end of Section 5.3.2).

Repeats the page-access experiment in 3-d and 4-d: range queries still
cost O(vN) pages, partial-match queries follow O(N^(1-t/k)), and
"longer and narrower" still loses to cubes — the analysis is
dimension-generic, as Section 3.3 promises ("Algorithms based on z
order work without modification in all dimensions").
"""

import random
import statistics

import pytest

from conftest import save_result

from repro.core.analysis import predicted_partial_match_pages
from repro.core.geometry import Box, Grid
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import uniform_dataset
from repro.workloads.queries import partial_match_workload, query_shape


def uniform_tree(grid, npoints, seed=0):
    dataset = uniform_dataset(grid, npoints, seed)
    tree = ZkdTree(grid, page_capacity=20)
    tree.bulk_load(dataset.points)
    return dataset, tree


def mean_pages_for_shape(grid, tree, sizes, locations, rng):
    pages = []
    for _ in range(locations):
        corner = tuple(
            rng.randrange(grid.side - s + 1) for s in sizes
        )
        box = Box.from_corner_and_size(corner, sizes)
        pages.append(tree.range_query(box).pages_accessed)
    return statistics.fmean(pages)


@pytest.mark.parametrize("ndims,depth", [(3, 5), (4, 4)])
def test_range_pages_grow_with_volume(benchmark, results_dir, ndims, depth):
    grid = Grid(ndims, depth)

    def run():
        _, tree = uniform_tree(grid, 5000)
        rng = random.Random(1)
        rows = []
        for volume in (0.01, 0.04, 0.16):
            sizes = query_shape(grid, volume, 1.0)
            rows.append(
                (volume, mean_pages_for_shape(grid, tree, sizes, 5, rng))
            )
        return tree.npages, rows

    npages, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{ndims}-d, N = {npages} pages", f"{'volume':>7} {'pages':>7}"]
    for volume, pages in rows:
        lines.append(f"{volume:>7.2f} {pages:>7.1f}")
    save_result(
        results_dir, f"higher_dims_range_{ndims}d.txt", "\n".join(lines)
    )
    page_counts = [pages for _, pages in rows]
    assert page_counts == sorted(page_counts)
    # 16x the volume should cost clearly more than 2x the pages.
    assert page_counts[-1] > 2 * page_counts[0]


def test_partial_match_exponent_3d(benchmark, results_dir):
    """O(N^(1-t/k)) in 3-d: t=2 much cheaper than t=1."""
    grid = Grid(3, 5)

    def run():
        _, tree = uniform_tree(grid, 8000)
        out = {}
        for axes in ([0], [0, 1]):
            boxes = partial_match_workload(grid, axes, count=10, seed=2)
            out[len(axes)] = statistics.fmean(
                tree.range_query(b).pages_accessed for b in boxes
            )
        return tree.npages, out

    npages, observed = benchmark.pedantic(run, rounds=1, iterations=1)
    pred = {
        t: predicted_partial_match_pages(npages, 3, t) for t in (1, 2)
    }
    save_result(
        results_dir,
        "higher_dims_partial_match.txt",
        f"3-d, N = {npages} pages\n"
        f"t=1: observed {observed[1]:.1f}, predicted O({pred[1]:.1f})\n"
        f"t=2: observed {observed[2]:.1f}, predicted O({pred[2]:.1f})",
    )
    assert observed[2] < observed[1]
    assert observed[1] <= 4 * pred[1]
    assert observed[2] <= 4 * pred[2]


def test_shape_effect_3d(results_dir):
    """Cube vs slab vs needle at equal volume in 3-d."""
    grid = Grid(3, 5)
    _, tree = uniform_tree(grid, 5000, seed=3)
    rng = random.Random(4)
    volume_pixels = int(0.02 * grid.npixels)
    shapes = {
        "cube": (10, 10, 10),
        "slab": (32, 32, 1),
        "needle": (32, 4, 8),
    }
    rows = {}
    for name, sizes in shapes.items():
        rows[name] = mean_pages_for_shape(grid, tree, sizes, 8, rng)
    lines = [f"{'shape':>7} {'sizes':>13} {'pages':>7}"]
    for name, sizes in shapes.items():
        lines.append(f"{name:>7} {str(sizes):>13} {rows[name]:>7.1f}")
    save_result(results_dir, "higher_dims_shape.txt", "\n".join(lines))
    assert rows["cube"] <= rows["slab"]


def test_bulk_load_vs_incremental(benchmark, results_dir):
    """Loading ablation: bottom-up packing vs one-at-a-time inserts."""
    import time

    grid = Grid(2, 8)
    dataset = uniform_dataset(grid, 5000, seed=5)

    def incremental():
        tree = ZkdTree(grid, page_capacity=20)
        tree.insert_many(dataset.points)
        return tree

    def bulk():
        tree = ZkdTree(grid, page_capacity=20)
        tree.bulk_load(dataset.points)
        return tree

    start = time.perf_counter()
    inc_tree = incremental()
    inc_time = time.perf_counter() - start
    start = time.perf_counter()
    bulk_tree = bulk()
    bulk_time = time.perf_counter() - start

    box = Box(((30, 120), (40, 140)))
    assert (
        inc_tree.range_query(box).matches
        == bulk_tree.range_query(box).matches
    )
    inc_pages = inc_tree.range_query(box).pages_accessed
    bulk_pages = bulk_tree.range_query(box).pages_accessed
    save_result(
        results_dir,
        "ablation_bulk_load.txt",
        f"{'load':>11} {'seconds':>8} {'npages':>7} {'pages/query':>12}\n"
        f"{'incremental':>11} {inc_time:>8.3f} {inc_tree.npages:>7} "
        f"{inc_pages:>12}\n"
        f"{'bulk':>11} {bulk_time:>8.3f} {bulk_tree.npages:>7} "
        f"{bulk_pages:>12}",
    )
    assert bulk_tree.npages <= inc_tree.npages
    assert bulk_pages <= inc_pages

    benchmark.pedantic(bulk, rounds=1, iterations=1)
