"""The abstract's headline: "performance ... comparable to the kd tree".

Identical workloads over the zkd B+-tree, the bucket kd tree, a fixed
grid directory and a heap scan; every structure uses 20-point pages.
The comparison driver also differential-tests the result sets.
"""


import pytest

from conftest import save_result

from repro.core.geometry import Grid
from repro.experiments.comparison import compare_structures, format_comparison
from repro.workloads.datasets import (
    PAPER_NPOINTS,
    PAPER_PAGE_CAPACITY,
    make_dataset,
)
from repro.workloads.queries import query_workload

GRID = Grid(ndims=2, depth=8)


def run_comparison(name):
    dataset = make_dataset(name, GRID, PAPER_NPOINTS, seed=0)
    specs = query_workload(GRID, locations=3, seed=1)
    return compare_structures(dataset, specs, PAPER_PAGE_CAPACITY)


@pytest.fixture(scope="module")
def comparisons():
    return {name: run_comparison(name) for name in ("U", "C", "D")}


@pytest.mark.parametrize("name", ["U", "C", "D"])
def test_comparison_runs(benchmark, results_dir, name):
    rows = benchmark.pedantic(
        run_comparison, args=(name,), rounds=1, iterations=1
    )
    save_result(
        results_dir, f"comparison_{name}.txt", format_comparison(rows)
    )


def test_zkd_within_constant_factor_of_kdtree(comparisons):
    """'Comparable to the kd tree': mean page accesses within 2.5x on
    every dataset."""
    for name, rows in comparisons.items():
        by_name = {r.structure: r for r in rows}
        ratio = (
            by_name["zkd-btree"].mean_pages / by_name["kd-tree"].mean_pages
        )
        assert ratio < 2.5, (name, ratio)


def test_both_trees_beat_the_scan(comparisons):
    for name, rows in comparisons.items():
        by_name = {r.structure: r for r in rows}
        assert (
            by_name["zkd-btree"].mean_pages < by_name["heap-scan"].mean_pages
        ), name
        assert (
            by_name["kd-tree"].mean_pages < by_name["heap-scan"].mean_pages
        ), name


def test_zkd_comparable_to_grid_on_skew(comparisons):
    """On the diagonal dataset the zkd tree stays within a modest
    factor of the fixed grid's page count.  (A *statically sized* grid
    can even edge ahead here because its empty cells cost nothing; the
    structural advantages of the z-order approach — no directory, and
    graceful adaptation when the distribution changes — are measured in
    bench_gridfile_comparison.py and bench_dynamic_maintenance.py.)"""
    by_name = {r.structure: r for r in comparisons["D"]}
    ratio = by_name["zkd-btree"].mean_pages / by_name["grid-file"].mean_pages
    assert ratio < 1.6


def test_query_latency_zkd(benchmark):
    """Wall-clock per range query on the paper's setup (for the record;
    the paper's metric is page accesses, not time)."""
    from repro.experiments.harness import build_tree
    from repro.core.geometry import Box

    dataset = make_dataset("U", GRID, PAPER_NPOINTS, seed=0)
    tree = build_tree(dataset, PAPER_PAGE_CAPACITY)
    box = Box(((40, 90), (60, 110)))

    result = benchmark(lambda: tree.range_query(box))
    assert result.nmatches > 0
