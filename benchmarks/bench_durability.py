"""Durability overhead: what do checksums and the WAL cost on disk?

Times a fixed-seed disk-backed workload — bulk load then a range-query
sweep — against :class:`~repro.storage.diskstore.FilePageStore` in three
configurations:

* ``raw``        — ``checksums=False, wal=False`` (the baseline)
* ``checksums``  — per-page CRC32 verification, no WAL
* ``wal``        — checksums plus the redo-only write-ahead log

Every configuration must return the same matches.  The acceptance
number is the *checksum* query overhead: CRC32 over a 4 KiB page is
cheap relative to the page parse, so verified reads must stay within
5% of the raw baseline (asserted on full runs; smoke runs report
only, since tiny workloads put the delta inside timer noise).  The WAL
load overhead is reported, not gated — journalled commits legitimately
write every page image twice.

Runs two ways:

* as a pytest bench, writing ``benchmarks/results/durability.txt``::

      PYTHONPATH=src python -m pytest benchmarks/bench_durability.py -q

* as a standalone script for CI smoke runs::

      PYTHONPATH=src python benchmarks/bench_durability.py --smoke
"""

import argparse
import os
import sys
import tempfile
import time

from repro.core.geometry import Grid
from repro.storage.diskstore import FilePageStore
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import make_dataset
from repro.workloads.queries import query_workload

DEPTH = 10
NPOINTS = 40_000
SEED = 0
PAGE_CAPACITY = 64
CHECKSUM_QUERY_CEILING = 0.05  # ≤5% on the verified-read path

CONFIGS = (
    ("raw", {"checksums": False, "wal": False}),
    ("checksums", {"checksums": True, "wal": False}),
    ("wal", {"checksums": True, "wal": True}),
)


def _build_workload(depth=DEPTH, npoints=NPOINTS, seed=SEED):
    grid = Grid(ndims=2, depth=depth)
    points = make_dataset("C", grid, npoints, seed=seed).points
    specs = query_workload(
        grid, volumes=(0.01, 0.03), aspects=(1.0, 2.0), locations=5,
        seed=seed + 1,
    )
    return grid, points, [spec.box for spec in specs]


def _load_config(tmpdir, name, opts, grid, points):
    """Build a disk tree for one configuration; returns (tree, load_s)."""
    path = os.path.join(tmpdir, f"{name}.zkd")
    store = FilePageStore(
        path, page_capacity=PAGE_CAPACITY, page_size=4096, **opts
    )
    tree = ZkdTree(grid, page_capacity=PAGE_CAPACITY, store=store)
    t0 = time.perf_counter()
    tree.insert_many(points)
    tree.buffer.flush()
    return tree, time.perf_counter() - t0


def _sweep(tree, boxes):
    """One cold query sweep: drop the buffer so every pass re-reads —
    and, with checksums on, re-verifies — pages from disk."""
    for page_id in list(tree.buffer._frames):
        tree.buffer.invalidate(page_id)
    t0 = time.perf_counter()
    matches = sum(tree.range_query(box).nmatches for box in boxes)
    return time.perf_counter() - t0, matches


def run(depth=DEPTH, npoints=NPOINTS, repeats=7, seed=SEED, verbose=True):
    grid, points, boxes = _build_workload(depth, npoints, seed)
    rows = []
    with tempfile.TemporaryDirectory() as tmpdir:
        trees, loads = {}, {}
        try:
            for name, opts in CONFIGS:
                trees[name], loads[name] = _load_config(
                    tmpdir, name, opts, grid, points
                )
            # Interleave the sweeps round-robin so slow drift in the
            # host (thermal, cache, background load) hits every
            # configuration equally instead of biasing whichever ran
            # last; min-of-repeats then cancels the noise.
            best = {name: float("inf") for name, _ in CONFIGS}
            match_counts = {}
            for _ in range(repeats):
                for name, _opts in CONFIGS:
                    elapsed, matches = _sweep(trees[name], boxes)
                    best[name] = min(best[name], elapsed)
                    match_counts[name] = matches
        finally:
            for tree in trees.values():
                tree.store.close()
        base_name = CONFIGS[0][0]
        base_load = loads[base_name]
        base_query = best[base_name]
        base_matches = match_counts[base_name]
        for name, _opts in CONFIGS:
            assert match_counts[name] == base_matches, (
                f"{name}: {match_counts[name]} matches, "
                f"raw baseline {base_matches}"
            )
            rows.append(
                {
                    "config": name,
                    "load_s": loads[name],
                    "query_s": best[name],
                    "load_overhead": loads[name] / base_load - 1.0,
                    "query_overhead": best[name] / base_query - 1.0,
                }
            )
    report = format_report(npoints, depth, boxes, rows)
    if verbose:
        print(report)
    return rows, report


def format_report(npoints, depth, boxes, rows):
    lines = [
        "# Durability overhead: disk store load + query sweep by config",
        f"  {npoints:,} pts, depth {depth}, {len(boxes)} boxes, "
        f"4096 B pages",
        "",
    ]
    for r in rows:
        lines.append(
            f"  {r['config']:<9}  load {r['load_s'] * 1e3:>8.1f} ms "
            f"({r['load_overhead']:+6.1%})   "
            f"query {r['query_s'] * 1e3:>8.1f} ms "
            f"({r['query_overhead']:+6.1%})"
        )
    return "\n".join(lines)


def _overhead(rows, config, key):
    for r in rows:
        if r["config"] == config:
            return r[key]
    return float("inf")


# ----------------------------------------------------------------------
# pytest entry point (writes the result artifact)
# ----------------------------------------------------------------------


def test_durability_overhead(results_dir):
    from conftest import save_result

    rows, report = run(verbose=False)
    save_result(results_dir, "durability.txt", report)
    overhead = _overhead(rows, "checksums", "query_overhead")
    assert overhead <= CHECKSUM_QUERY_CEILING, report


# ----------------------------------------------------------------------
# CLI entry point (CI smoke)
# ----------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, identity check only (overhead reported, "
        "not gated — tiny runs sit inside timer noise)",
    )
    parser.add_argument("--points", type=int, default=NPOINTS)
    parser.add_argument("--depth", type=int, default=DEPTH)
    args = parser.parse_args(argv)
    npoints = 6_000 if args.smoke else args.points
    depth = 8 if args.smoke else args.depth
    from gates import gate

    rows, _ = run(depth=depth, npoints=npoints)
    overhead = _overhead(rows, "checksums", "query_overhead")
    if args.smoke:
        return gate(
            "durability",
            [(
                True,
                f"identity held across configurations (checksum query "
                f"overhead {overhead:+.1%}, not gated in smoke)",
            )],
        )
    return gate(
        "durability",
        [(
            overhead <= CHECKSUM_QUERY_CEILING,
            f"checksum query overhead {overhead:+.1%} "
            f"(ceiling {CHECKSUM_QUERY_CEILING:.0%})",
        )],
    )


if __name__ == "__main__":
    sys.exit(main())
