"""Tests for the spatial-join kernel (Section 4)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.decompose import Element, decompose_box
from repro.core.geometry import Box, Grid
from repro.core.spatialjoin import overlapping_pairs, spatial_join

from conftest import random_box


def tagged_box(grid, box, tag):
    return [(Element.of(z, grid), tag) for z in decompose_box(grid, box)]


def brute_force_pairs(grid, boxes_r, boxes_s):
    """Ground truth: object pairs whose boxes share a pixel."""
    out = set()
    for name_r, box_r in boxes_r.items():
        for name_s, box_s in boxes_s.items():
            if box_r.intersects(box_s):
                out.add((name_r, name_s))
    return out


class TestBasicPairs:
    def test_overlapping_boxes_found(self, grid64):
        r = tagged_box(grid64, Box(((0, 20), (0, 20))), "A")
        s = tagged_box(grid64, Box(((10, 30), (10, 30))), "B")
        assert overlapping_pairs(r, s) == {("A", "B")}

    def test_disjoint_boxes_not_found(self, grid64):
        r = tagged_box(grid64, Box(((0, 10), (0, 10))), "A")
        s = tagged_box(grid64, Box(((40, 50), (40, 50))), "B")
        assert overlapping_pairs(r, s) == set()

    def test_touching_boxes_found(self, grid64):
        # Sharing a pixel column counts as overlap (inclusive bounds).
        r = tagged_box(grid64, Box(((0, 10), (0, 10))), "A")
        s = tagged_box(grid64, Box(((10, 20), (0, 10))), "B")
        assert overlapping_pairs(r, s) == {("A", "B")}

    def test_identical_elements_pair_once_per_tuple(self, grid64):
        box = Box(((0, 15), (0, 15)))
        r = tagged_box(grid64, box, "A")
        s = tagged_box(grid64, box, "B")
        pairs = list(spatial_join(r, s))
        # One identical element on each side: exactly one containment
        # pair per element, not two.
        assert len(pairs) == len(r)

    def test_empty_inputs(self, grid64):
        r = tagged_box(grid64, Box(((0, 5), (0, 5))), "A")
        assert list(spatial_join(r, [])) == []
        assert list(spatial_join([], r)) == []
        assert list(spatial_join([], [])) == []


class TestJoinSemantics:
    def test_pairs_are_containment_related(self, grid64, rng):
        r = tagged_box(grid64, random_box(rng, grid64), "A")
        s = tagged_box(grid64, random_box(rng, grid64), "B")
        for _, _, er, es in spatial_join(r, s):
            assert er.zvalue.is_related_to(es.zvalue)

    def test_multiple_objects_per_side(self, grid64):
        r = tagged_box(grid64, Box(((0, 20), (0, 20))), "A1") + tagged_box(
            grid64, Box(((40, 60), (40, 60))), "A2"
        )
        s = (
            tagged_box(grid64, Box(((10, 30), (10, 30))), "B1")
            + tagged_box(grid64, Box(((50, 63), (50, 63))), "B2")
            + tagged_box(grid64, Box(((0, 63), (31, 32))), "B3")
        )
        # B3 is the thin horizontal band y in [31, 32]; it misses both
        # A1 (y <= 20) and A2 (y >= 40).
        assert overlapping_pairs(r, s) == {("A1", "B1"), ("A2", "B2")}

    def test_unsorted_input_accepted(self, grid64, rng):
        r = tagged_box(grid64, Box(((0, 20), (0, 20))), "A")
        s = tagged_box(grid64, Box(((10, 30), (10, 30))), "B")
        rng.shuffle(r)
        rng.shuffle(s)
        assert overlapping_pairs(r, s) == {("A", "B")}

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_scenes_match_brute_force(self, seed):
        grid = Grid(2, 5)
        rng = random.Random(seed)
        boxes_r = {
            f"r{i}": random_box(rng, grid) for i in range(rng.randint(1, 5))
        }
        boxes_s = {
            f"s{i}": random_box(rng, grid) for i in range(rng.randint(1, 5))
        }
        r = [
            pair
            for name, box in boxes_r.items()
            for pair in tagged_box(grid, box, name)
        ]
        s = [
            pair
            for name, box in boxes_s.items()
            for pair in tagged_box(grid, box, name)
        ]
        assert overlapping_pairs(r, s) == brute_force_pairs(
            grid, boxes_r, boxes_s
        )

    def test_self_join_finds_self_overlaps(self, grid64):
        r = tagged_box(grid64, Box(((0, 20), (0, 20))), "A") + tagged_box(
            grid64, Box(((10, 30), (10, 30))), "B"
        )
        pairs = overlapping_pairs(r, r)
        assert ("A", "B") in pairs or ("B", "A") in pairs
        assert ("A", "A") in pairs  # every element pairs with itself

    def test_nested_objects(self, grid64):
        outer = tagged_box(grid64, Box(((0, 31), (0, 31))), "outer")
        inner = tagged_box(grid64, Box(((8, 15), (8, 15))), "inner")
        assert overlapping_pairs(outer, inner) == {("outer", "inner")}

    def test_3d(self, grid3d):
        r = [
            (Element.of(z, grid3d), "A")
            for z in decompose_box(grid3d, Box(((0, 7), (0, 7), (0, 7))))
        ]
        s = [
            (Element.of(z, grid3d), "B")
            for z in decompose_box(grid3d, Box(((4, 11), (4, 11), (4, 11))))
        ]
        assert overlapping_pairs(r, s) == {("A", "B")}
