"""Differential property tests: the fast z kernels vs the reference.

The contract of :mod:`repro.core.fastz` is *bit-identity* with the
one-bit-at-a-time reference of :mod:`repro.core.interleave` — same
codes, same coordinates, same errors, for every dimensionality and
depth the system uses.  These tests enforce it with seeded random
sweeps (plain ``random``, no extra dependencies) plus exhaustive small
cases and the edge values (all-zero and max coordinates) where
bit-twiddling bugs live.

The quick sweep runs in tier-1; the heavy sweep (more dims × depths ×
samples, exhaustive small grids) is marked ``slow`` and is meant for
nightly runs: ``PYTHONPATH=src python -m pytest -q -m slow``.
"""

import random

import pytest

from repro.core import fastz
from repro.core.decompose import (
    BoxElementCursor,
    CoverMode,
    Element,
    decompose_box,
)
from repro.core.geometry import Box, Grid
from repro.core.interleave import deinterleave, interleave, zrank

from conftest import random_box


def random_point(rng: random.Random, ndims: int, depth: int):
    side = 1 << depth
    return tuple(rng.randrange(side) for _ in range(ndims))


def sample_points(rng: random.Random, ndims: int, depth: int, n: int):
    """n random points plus the corner/edge cases."""
    side = 1 << depth
    pts = [random_point(rng, ndims, depth) for _ in range(n)]
    pts.append(tuple([0] * ndims))                      # all-zero
    pts.append(tuple([side - 1] * ndims))               # all-max
    pts.append(tuple((side - 1 if i % 2 else 0) for i in range(ndims)))
    return pts


# ----------------------------------------------------------------------
# Scalar kernels
# ----------------------------------------------------------------------


@pytest.mark.parametrize("ndims", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("depth", [1, 2, 3, 6, 8, 11, 16])
def test_interleave_fast_matches_reference(ndims, depth):
    rng = random.Random(1000 * ndims + depth)
    for point in sample_points(rng, ndims, depth, 25):
        assert fastz.interleave_fast(point, depth) == interleave(
            point, depth
        )


@pytest.mark.parametrize("ndims", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("depth", [1, 2, 3, 6, 8, 11, 16])
def test_deinterleave_fast_matches_reference(ndims, depth):
    rng = random.Random(2000 * ndims + depth)
    total = ndims * depth
    codes = [rng.randrange(1 << total) for _ in range(25)]
    codes += [0, (1 << total) - 1]
    for code in codes:
        assert fastz.deinterleave_fast(code, ndims, depth) == deinterleave(
            code, ndims, depth
        )


@pytest.mark.parametrize("ndims", [1, 2, 3, 4, 5])
def test_roundtrip_and_zrank(ndims):
    rng = random.Random(30 + ndims)
    for depth in range(1, 17):
        for point in sample_points(rng, ndims, depth, 5):
            code = fastz.interleave_fast(point, depth)
            assert fastz.deinterleave_fast(code, ndims, depth) == point
            assert fastz.zrank_fast(point, depth) == zrank(point, depth)


def test_depth_zero_is_origin_only():
    assert fastz.interleave_fast((0, 0, 0), 0) == interleave((0, 0, 0), 0)
    assert fastz.deinterleave_fast(0, 3, 0) == deinterleave(0, 3, 0)
    assert fastz.interleave_many([(0, 0)], 0) == [0]
    assert fastz.deinterleave_many([0], 2, 0) == [(0, 0)]


def test_spread_compact_are_inverses():
    rng = random.Random(99)
    for ndims in (2, 3, 4):
        for depth in (1, 5, 8, 13, 16):
            for _ in range(20):
                v = rng.randrange(1 << depth)
                spread = fastz.spread_bits(v, ndims, depth)
                assert fastz.compact_bits(spread, ndims, depth) == v


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------


@pytest.mark.parametrize("ndims", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("depth", [1, 2, 3, 6, 8, 11, 16])
def test_batch_matches_scalar_reference(ndims, depth):
    rng = random.Random(3000 * ndims + depth)
    pts = sample_points(rng, ndims, depth, 40)
    expected = [interleave(p, depth) for p in pts]
    assert fastz.interleave_many(pts, depth) == expected
    assert fastz.interleave_many(pts, depth, ndims) == expected
    assert fastz.zranks(pts, depth) == expected
    assert fastz.deinterleave_many(expected, ndims, depth) == pts


def test_batch_empty_and_generator_inputs():
    assert fastz.interleave_many([], 4) == []
    assert fastz.deinterleave_many(iter([]), 2, 4) == []
    assert fastz.interleave_many(iter([(1, 2), (3, 0)]), 2) == [
        interleave((1, 2), 2),
        interleave((3, 0), 2),
    ]
    assert fastz.deinterleave_many(range(16), 2, 2) == [
        deinterleave(c, 2, 2) for c in range(16)
    ]


@pytest.mark.parametrize(
    "bad_batch",
    [
        [(1, 2), (3,)],              # ragged arity
        [(1, 2), (-1, 0)],           # negative coordinate
        [(1, 2), (8, 0)],            # out of grid
        [(1.5, 2)],                  # non-integer
        [(1, 2), (1, 2, 3)],         # too many coordinates
    ],
)
def test_batch_rejects_malformed_points(bad_batch):
    with pytest.raises(ValueError):
        fastz.interleave_many(bad_batch, 3)


def test_batch_rejects_malformed_codes():
    with pytest.raises(ValueError):
        fastz.deinterleave_many([5, 64], 2, 3)    # 64 >= 2**6
    with pytest.raises(ValueError):
        fastz.deinterleave_many([5, -1], 2, 3)
    with pytest.raises(ValueError):
        fastz.deinterleave_many([5, "x"], 2, 3)


def test_scalar_fast_rejects_what_reference_rejects():
    for args in [((9,), 3), ((-1, 0), 3), ((1.0, 2), 3), ((), 3)]:
        with pytest.raises(ValueError):
            interleave(*args)
        with pytest.raises(ValueError):
            fastz.interleave_fast(*args)
    with pytest.raises(ValueError):
        fastz.deinterleave_fast(64, 2, 3)
    with pytest.raises(ValueError):
        fastz.deinterleave_fast(1, 0, 3)


# ----------------------------------------------------------------------
# Cached decomposition
# ----------------------------------------------------------------------


def test_decompose_box_cached_matches_uncached(grid64, rng):
    for _ in range(30):
        box = random_box(rng, grid64)
        assert list(fastz.decompose_box_cached(grid64, box)) == (
            decompose_box(grid64, box)
        )
    # Repeat lookups are hits, not recomputations.
    box = random_box(rng, grid64)
    fastz.decompose_box_cached(grid64, box)
    before = fastz.decompose_box_cache_info().hits
    fastz.decompose_box_cached(grid64, box)
    assert fastz.decompose_box_cache_info().hits == before + 1


def test_decompose_box_cached_max_depth_and_cover(grid64, figure_box):
    for max_depth in (None, 0, 3, 7):
        for cover in (CoverMode.OUTER, CoverMode.INNER):
            assert list(
                fastz.decompose_box_cached(
                    grid64, figure_box, max_depth, cover
                )
            ) == decompose_box(grid64, figure_box, max_depth, cover)


def test_cached_cursor_streams_same_elements(grid64, rng):
    for _ in range(20):
        box = random_box(rng, grid64)
        assert list(fastz.CachedBoxElementCursor(grid64, box)) == list(
            BoxElementCursor(grid64, box)
        )


def test_cached_cursor_seek_semantics(grid8, figure_box):
    reference = BoxElementCursor(grid8, figure_box)
    cached = fastz.CachedBoxElementCursor(grid8, figure_box)
    for z in range(grid8.npixels):
        assert cached.seek(z) == reference.seek(z)
    # Out-of-space box degenerates to an empty stream in both.
    outside = Box(((100, 120), (100, 120)))
    assert fastz.CachedBoxElementCursor(grid8, outside).current is None
    assert BoxElementCursor(grid8, outside).current is None


def test_elements_many_matches_element_of(grid64, figure_box):
    zvalues = decompose_box(grid64, figure_box)
    assert list(fastz.elements_many(grid64, zvalues)) == [
        Element.of(z, grid64) for z in zvalues
    ]
    too_long = decompose_box(grid64, figure_box)[0]
    small = Grid(ndims=2, depth=1)
    with pytest.raises(ValueError):
        fastz.elements_many(small, [too_long.concat(too_long)])


# ----------------------------------------------------------------------
# Nightly sweeps (deselected from tier-1 by the `slow` marker)
# ----------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("ndims", [1, 2, 3, 4, 5])
def test_slow_exhaustive_small_grids(ndims):
    """Every code of every grid up to 4096 pixels, both directions."""
    for depth in range(1, 17):
        total = ndims * depth
        if total > 12:
            break
        codes = list(range(1 << total))
        points = fastz.deinterleave_many(codes, ndims, depth)
        for code, point in zip(codes, points):
            assert point == deinterleave(code, ndims, depth)
        assert fastz.interleave_many(points, depth) == codes


@pytest.mark.slow
@pytest.mark.parametrize("ndims", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("depth", list(range(1, 17)))
def test_slow_dense_random_sweep(ndims, depth):
    rng = random.Random(7_000_000 + 100 * ndims + depth)
    pts = sample_points(rng, ndims, depth, 400)
    expected = [interleave(p, depth) for p in pts]
    assert fastz.interleave_many(pts, depth) == expected
    assert [fastz.interleave_fast(p, depth) for p in pts] == expected
    assert fastz.deinterleave_many(expected, ndims, depth) == pts
    assert [
        fastz.deinterleave_fast(c, ndims, depth) for c in expected
    ] == pts


@pytest.mark.slow
def test_slow_cached_decomposition_sweep():
    rng = random.Random(0xFA57)
    for ndims, depth in [(1, 8), (2, 6), (3, 4), (4, 3)]:
        grid = Grid(ndims=ndims, depth=depth)
        for _ in range(60):
            box = random_box(rng, grid)
            assert list(
                fastz.decompose_box_cached(grid, box)
            ) == decompose_box(grid, box)
            assert list(
                fastz.CachedBoxElementCursor(grid, box)
            ) == list(BoxElementCursor(grid, box))
