"""Run the doctests embedded in the public API's docstrings."""

import doctest
import importlib

import pytest

# Resolved via importlib: ``repro.core.interleave`` as an attribute is
# shadowed by the re-exported *function* of the same name.
MODULES = [
    importlib.import_module(name)
    for name in (
        "repro",
        "repro.core.interleave",
        "repro.db.database",
        "repro.db.expr",
        "repro.db.query",
    )
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
