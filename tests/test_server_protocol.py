"""Protocol hardening: every malformed frame gets a typed answer and
the connection survives — byte soup, truncated JSON, non-object
payloads, oversized frames, unknown ops — plus the fault-site registry
checks (`FaultInjector.verify`) that make an unregistered injection a
loud CI failure instead of a silent no-op.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.geometry import Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.faults import FaultInjector, registered_sites, site_kind
from repro.server import QueryService, serve
from repro.server.protocol import (
    MAX_FRAME,
    FrameError,
    ProtocolError,
    decode_frame,
    encode_frame,
    parse_deadline,
    validate_request,
)

GRID = Grid(ndims=2, depth=6)


def _build_db(npoints=150):
    from repro.workloads.datasets import make_dataset

    db = SpatialDatabase(GRID, page_capacity=16, concurrency=True)
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    points = make_dataset("C", GRID, npoints, seed=0).points
    db.insert_many(
        "points", [(f"p{i}", x, y) for i, (x, y) in enumerate(points)]
    )
    db.create_index("points_xy", "points", ("x", "y"))
    return db


# ----------------------------------------------------------------------
# Frame-level taxonomy (unit)
# ----------------------------------------------------------------------


def test_envelope_failures_are_frame_errors():
    for line in (
        b"\x00\xffgarbage",
        b"{not json",
        b'"just a string"',
        b"[1, 2, 3]",
        b"42",
        b"null",
    ):
        with pytest.raises(FrameError):
            decode_frame(line)
    with pytest.raises(FrameError):
        decode_frame(b"x" * (MAX_FRAME + 1))
    with pytest.raises(FrameError):
        validate_request({"op": "no_such_op"})
    with pytest.raises(FrameError):
        validate_request({"op": "ping", "id": [1, 2]})
    # Well-formed envelopes pass through unchanged.
    assert validate_request({"op": "ping", "id": 3})["id"] == 3
    assert decode_frame(encode_frame({"op": "ping"})) == {"op": "ping"}


def test_operand_failures_stay_plain_protocol_errors():
    """A known op with bad operands is `bad_request`, not an envelope
    failure — the split decides the wire error type."""
    bad = parse_deadline  # operand-level parser
    for spec in (True, "soon", -1, 0, float("nan"), float("inf")):
        with pytest.raises(ProtocolError) as excinfo:
            bad({"deadline_ms": spec})
        assert not isinstance(excinfo.value, FrameError)
    assert parse_deadline({}) is None
    assert parse_deadline({"deadline_ms": 250}) == pytest.approx(0.25)


# ----------------------------------------------------------------------
# Over the wire: the connection survives every hostile frame
# ----------------------------------------------------------------------


def test_hostile_frames_answered_typed_connection_survives():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        try:
            reader, writer = await asyncio.open_connection(
                *server.address, limit=MAX_FRAME
            )
            try:

                async def exchange(raw: bytes):
                    writer.write(raw)
                    await writer.drain()
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=5.0
                    )
                    return json.loads(line)

                # Byte soup, truncated JSON, non-object: all answered.
                for raw in (
                    b"\x00\xff not json\n",
                    b'{"op": "range"\n',
                    b"[1, 2, 3]\n",
                ):
                    response = await exchange(raw)
                    assert response["ok"] is False
                    assert response["error"]["type"] == "protocol_error"
                # An unknown op names no operation: protocol_error, and
                # the id still echoes so pipelined clients can match it.
                response = await exchange(
                    b'{"op": "explode", "id": 11}\n'
                )
                assert response["error"]["type"] == "protocol_error"
                assert response["id"] == 11
                # An oversized frame is answered once and discarded;
                # the same connection keeps serving.
                response = await exchange(
                    b"x" * (MAX_FRAME + 64) + b"\n"
                )
                assert response["error"]["type"] == "protocol_error"
                assert "exceeds" in response["error"]["message"]
                # The very next frame on the connection works.
                response = await exchange(b'{"op": "ping", "id": 5}\n')
                assert response["ok"] is True
                assert response["id"] == 5
                assert service.stats["server.errors"] >= 5
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            await server.close()

    asyncio.run(run())


# ----------------------------------------------------------------------
# Fault-site registry enforcement
# ----------------------------------------------------------------------


def test_server_sites_are_registered():
    sites = registered_sites()
    for name, kind in (
        ("server.frame_read", "read"),
        ("server.frame_write", "write"),
        ("server.dispatch", "point"),
    ):
        assert name in sites
        assert site_kind(name) == kind


def test_verify_rejects_unregistered_site():
    injector = FaultInjector(seed=1)
    injector.rule("server.frame_reed", "error")  # typo'd site
    with pytest.raises(ValueError) as excinfo:
        injector.verify()
    message = str(excinfo.value)
    assert "server.frame_reed" in message
    assert "unregistered" in message


def test_verify_rejects_illegal_kind_for_site_class():
    injector = FaultInjector(seed=1)
    injector.rule("server.dispatch", "torn_write")  # point site
    injector.rule("server.frame_read", "torn_write")  # read site
    with pytest.raises(ValueError) as excinfo:
        injector.verify()
    message = str(excinfo.value)
    assert message.count("illegal") == 2
    assert "point site" in message
    assert "read site" in message


def test_verify_accepts_legal_schedule():
    injector = FaultInjector(seed=1)
    injector.rule("server.frame_read", "short_read")
    injector.rule("server.frame_write", "torn_write")
    injector.rule("server.dispatch", "error", times=-1)
    injector.verify()  # no raise
