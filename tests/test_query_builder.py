"""Tests for the fluent Query builder."""

import pytest

from repro.core.geometry import Box, Grid
from repro.db import INTEGER, OID, Schema, SpatialDatabase, col
from repro.db.query import Query

from conftest import random_points


@pytest.fixture
def db(rng):
    database = SpatialDatabase(Grid(2, 6))
    database.create_table(
        "cities",
        Schema.of(
            ("name@", OID), ("x", INTEGER), ("y", INTEGER), ("pop", INTEGER)
        ),
    )
    points = random_points(rng, database.grid, 120)
    database.insert_many(
        "cities",
        [
            (f"c{i}", x, y, (i * 37) % 1000)
            for i, (x, y) in enumerate(points)
        ],
    )
    database.create_index("cities_xy", "cities", ("x", "y"))
    return database


class TestChaining:
    def test_docstring_scenario(self):
        database = SpatialDatabase(Grid(2, 6))
        database.create_table(
            "cities",
            Schema.of(
                ("name@", OID),
                ("x", INTEGER),
                ("y", INTEGER),
                ("pop", INTEGER),
            ),
        )
        database.insert_many(
            "cities",
            [
                ("rome", 10, 20, 900),
                ("oslo", 11, 21, 600),
                ("faro", 50, 50, 60),
            ],
        )
        rows = (
            Query(database, "cities")
            .within(("x", "y"), Box(((0, 30), (0, 30))))
            .where(col("pop") >= 500)
            .select("name@", "pop")
            .order_by("pop", descending=True)
            .run()
            .rows
        )
        assert rows == [("rome", 900), ("oslo", 600)]

    def test_window_only(self, db):
        box = Box(((0, 31), (0, 31)))
        rows = Query(db, "cities").within(("x", "y"), box).run().rows
        expected = [
            row for row in db.table("cities") if box.contains_point(row[1:3])
        ]
        assert sorted(rows) == sorted(expected)

    def test_no_window_scans(self, db):
        assert Query(db, "cities").count() == 120

    def test_predicates_stack(self, db):
        out = (
            Query(db, "cities")
            .where(col("pop") > 300)
            .where(col("pop") < 700)
            .run()
        )
        assert all(300 < row[3] < 700 for row in out)

    def test_projection_and_distinct(self, db):
        out = Query(db, "cities").select("pop").distinct().run()
        assert out.schema.names == ["pop"]
        values = [row[0] for row in out]
        assert len(values) == len(set(values))

    def test_order_and_limit(self, db):
        out = (
            Query(db, "cities")
            .order_by("pop", descending=True)
            .limit(5)
            .run()
        )
        pops = [row[3] for row in out]
        assert pops == sorted(pops, reverse=True)
        assert len(out) == 5

    def test_count(self, db):
        box = Box(((0, 31), (0, 31)))
        assert Query(db, "cities").within(("x", "y"), box).count() == len(
            Query(db, "cities").within(("x", "y"), box).run()
        )


class TestGuards:
    def test_double_window_rejected(self, db):
        q = Query(db, "cities").within(("x", "y"), Box(((0, 1), (0, 1))))
        with pytest.raises(ValueError):
            q.within(("x", "y"), Box(((0, 1), (0, 1))))

    def test_double_select_rejected(self, db):
        q = Query(db, "cities").select("pop")
        with pytest.raises(ValueError):
            q.select("x")

    def test_double_order_rejected(self, db):
        q = Query(db, "cities").order_by("pop")
        with pytest.raises(ValueError):
            q.order_by("x")

    def test_double_limit_rejected(self, db):
        q = Query(db, "cities").limit(1)
        with pytest.raises(ValueError):
            q.limit(2)


class TestExplain:
    def test_explain_with_window(self, db):
        text = (
            Query(db, "cities")
            .within(("x", "y"), Box(((0, 7), (0, 7))))
            .where(col("pop") > 0)
            .select("name@")
            .limit(3)
            .explain()
        )
        assert "RangeQuery" in text
        assert "filter: 1 predicate(s)" in text
        assert "project: name@" in text
        assert "limit: 3" in text

    def test_explain_without_window(self, db):
        text = Query(db, "cities").explain()
        assert "full table scan" in text
