"""Stateful property testing of the zkd tree against a multiset model.

Random interleavings of insert / delete / range query / partial match /
membership, checked after every step against a plain list of points.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.geometry import Box, Grid
from repro.storage.prefix_btree import ZkdTree

GRID = Grid(2, 5)  # 32 x 32
COORD = st.integers(0, 31)
POINT = st.tuples(COORD, COORD)


class ZkdMachine(RuleBasedStateMachine):
    @initialize(capacity=st.sampled_from([4, 8, 20]))
    def setup(self, capacity):
        self.tree = ZkdTree(GRID, page_capacity=capacity, buffer_frames=3)
        self.model = []

    @rule(point=POINT)
    def insert(self, point):
        self.tree.insert(point)
        self.model.append(point)

    @rule(point=POINT)
    def delete(self, point):
        removed = self.tree.delete(point)
        if point in self.model:
            assert removed
            self.model.remove(point)
        else:
            assert not removed

    @rule(point=POINT)
    def membership(self, point):
        assert (point in self.tree) == (point in self.model)

    @rule(a=POINT, b=POINT)
    def range_query(self, a, b):
        box = Box(
            (
                (min(a[0], b[0]), max(a[0], b[0])),
                (min(a[1], b[1]), max(a[1], b[1])),
            )
        )
        expected = sorted(
            (p for p in self.model if box.contains_point(p)),
            key=lambda p: GRID.zvalue(p).bits,
        )
        assert list(self.tree.range_query(box).matches) == expected

    @rule(x=COORD)
    def partial_match(self, x):
        expected = sorted(
            (p for p in self.model if p[0] == x),
            key=lambda p: GRID.zvalue(p).bits,
        )
        assert list(self.tree.partial_match_query((x, None)).matches) == (
            expected
        )

    @invariant()
    def size_matches(self):
        if hasattr(self, "tree"):
            assert len(self.tree) == len(self.model)

    @invariant()
    def structure_valid(self):
        if hasattr(self, "tree"):
            self.tree.tree.check_invariants()


ZkdMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestZkdStateful = ZkdMachine.TestCase
