"""Unit tests for the failpoint framework (:mod:`repro.faults`).

The crash matrix and executor sweeps build on these primitives, so the
primitives themselves get direct coverage: site registry, rule
matching (`at` / `times` / `where` / `probability`), each fault kind's
write/read semantics, determinism under a fixed seed, and pickling
(process-pool workers receive the coordinator's injector).
"""

import pickle

import pytest

from repro.faults import (
    KINDS,
    CrashPoint,
    FaultError,
    FaultInjector,
    parse_rule,
    register_site,
    registered_sites,
    site_kind,
)

# The storage/shard modules register their sites at import time; the
# registry tests assert against them.
import repro.shard.executor  # noqa: F401
import repro.storage.buffer  # noqa: F401
import repro.storage.diskstore  # noqa: F401


class TestRegistry:
    def test_instrumented_modules_register_their_sites(self):
        sites = registered_sites()
        for expected in (
            "wal.append",
            "wal.commit",
            "wal.checkpoint",
            "diskstore.page_write",
            "diskstore.page_read",
            "diskstore.header_write",
            "diskstore.free_write",
            "buffer.writeback",
            "shard.worker",
        ):
            assert expected in sites

    def test_register_is_idempotent(self):
        assert register_site("wal.append", "write") == "wal.append"

    def test_conflicting_kind_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_site("wal.append", "point")

    def test_unknown_site_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown site kind"):
            register_site("bogus.site", "sideways")

    def test_kind_filter(self):
        assert "diskstore.page_read" in registered_sites("read")
        assert "diskstore.page_read" not in registered_sites("write")
        assert site_kind("wal.commit") == "point"


class TestRuleMatching:
    def test_fires_on_nth_hit_once(self):
        inj = FaultInjector()
        inj.rule("p.site", "error", at=3)
        inj.hit("p.site")
        inj.hit("p.site")
        with pytest.raises(FaultError):
            inj.hit("p.site")
        inj.hit("p.site")  # times=1: spent
        assert inj.hits("p.site") == 4
        assert len(inj.fired) == 1
        assert inj.fired[0].site == "p.site"
        assert inj.fired[0].hit == 3

    def test_times_bounds_firings(self):
        inj = FaultInjector()
        inj.rule("p.site", "error", at=1, times=2)
        for _ in range(2):
            with pytest.raises(FaultError):
                inj.hit("p.site")
        inj.hit("p.site")
        assert len(inj.fired) == 2

    def test_times_forever(self):
        inj = FaultInjector()
        inj.rule("p.site", "error", times=-1)
        for _ in range(5):
            with pytest.raises(FaultError):
                inj.hit("p.site")

    def test_where_filters_context(self):
        inj = FaultInjector()
        inj.rule("p.site", "error", where={"shard": 2})
        inj.hit("p.site", shard=0)
        inj.hit("p.site", shard=1)
        with pytest.raises(FaultError):
            inj.hit("p.site", shard=2)

    def test_where_counts_at_against_matching_hits_only(self):
        inj = FaultInjector()
        inj.rule("p.site", "error", at=2, where={"shard": 1})
        inj.hit("p.site", shard=1)
        inj.hit("p.site", shard=0)  # does not advance the rule
        inj.hit("p.site", shard=0)
        with pytest.raises(FaultError):
            inj.hit("p.site", shard=1)

    def test_probability_zero_never_fires(self):
        inj = FaultInjector(seed=11)
        inj.rule("p.site", "error", times=-1, probability=0.0)
        for _ in range(20):
            inj.hit("p.site")
        assert inj.fired == []

    def test_crash_is_not_an_exception(self):
        inj = FaultInjector()
        inj.rule("p.site", "crash")
        with pytest.raises(CrashPoint):
            try:
                inj.hit("p.site")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("CrashPoint must not be catchable as Exception")

    def test_clear(self):
        inj = FaultInjector()
        inj.rule("a", "error")
        inj.rule("b", "error")
        inj.clear("a")
        inj.hit("a")
        assert len(inj.rules()) == 1
        inj.clear()
        inj.hit("b")
        assert inj.rules() == []


class TestWriteSemantics:
    def _sink(self):
        written = []
        return written, written.append

    def test_no_rule_passes_through(self):
        inj = FaultInjector()
        written, sink = self._sink()
        inj.do_write("w.site", sink, b"abcdef")
        assert written == [b"abcdef"]

    def test_error_fires_before_the_write(self):
        inj = FaultInjector()
        inj.rule("w.site", "error")
        written, sink = self._sink()
        with pytest.raises(FaultError):
            inj.do_write("w.site", sink, b"abcdef")
        assert written == []

    def test_torn_write_leaves_a_proper_prefix(self):
        inj = FaultInjector(seed=3)
        inj.rule("w.site", "torn_write")
        written, sink = self._sink()
        data = bytes(range(64))
        with pytest.raises(CrashPoint):
            inj.do_write("w.site", sink, data)
        assert len(written) == 1
        assert 1 <= len(written[0]) < len(data)
        assert data.startswith(written[0])

    def test_bit_flip_changes_exactly_one_bit(self):
        inj = FaultInjector(seed=5)
        inj.rule("w.site", "bit_flip")
        written, sink = self._sink()
        data = bytes(64)
        inj.do_write("w.site", sink, data)
        diff = [a ^ b for a, b in zip(written[0], data)]
        changed = [d for d in diff if d]
        assert len(changed) == 1
        assert bin(changed[0]).count("1") == 1

    def test_short_read_is_a_write_kind_error(self):
        inj = FaultInjector()
        inj.rule("w.site", "short_read")
        with pytest.raises(ValueError, match="not valid at write site"):
            inj.do_write("w.site", lambda b: None, b"xy")


class TestReadSemantics:
    def test_no_rule_passes_through(self):
        inj = FaultInjector()
        assert inj.filter_read("r.site", b"abc") == b"abc"

    def test_short_read_truncates(self):
        inj = FaultInjector(seed=9)
        inj.rule("r.site", "short_read")
        data = bytes(range(32))
        out = inj.filter_read("r.site", data)
        assert len(out) < len(data)
        assert data.startswith(out)

    def test_bit_flip_mutates(self):
        inj = FaultInjector(seed=9)
        inj.rule("r.site", "bit_flip")
        data = bytes(32)
        out = inj.filter_read("r.site", data)
        assert out != data and len(out) == len(data)

    def test_error_raises(self):
        inj = FaultInjector()
        inj.rule("r.site", "error")
        with pytest.raises(FaultError):
            inj.filter_read("r.site", b"abc")


class TestDeterminism:
    def test_same_seed_same_tear(self):
        tears = []
        for _ in range(2):
            inj = FaultInjector(seed=42)
            inj.rule("w.site", "torn_write")
            written = []
            with pytest.raises(CrashPoint):
                inj.do_write("w.site", written.append, bytes(range(200)))
            tears.append(written[0])
        assert tears[0] == tears[1]

    def test_different_seed_different_stream(self):
        outs = []
        for seed in (1, 2):
            inj = FaultInjector(seed=seed)
            inj.rule("r.site", "short_read", times=-1)
            outs.append(
                tuple(
                    len(inj.filter_read("r.site", bytes(100)))
                    for _ in range(8)
                )
            )
        assert outs[0] != outs[1]


class TestPickling:
    def test_round_trip_keeps_rules_drops_fired(self):
        inj = FaultInjector(seed=7)
        inj.rule("p.site", "error", at=1, times=2)
        with pytest.raises(FaultError):
            inj.hit("p.site")
        clone = pickle.loads(pickle.dumps(inj))
        assert clone.seed == 7
        assert clone.fired == []
        # Rule state (fired counts) travels: one firing remains.
        with pytest.raises(FaultError):
            clone.hit("p.site")
        clone.hit("p.site")


class TestParseRule:
    def test_minimal(self):
        assert parse_rule("shard.worker:crash") == {
            "site": "shard.worker",
            "kind": "crash",
        }

    def test_full(self):
        assert parse_rule("diskstore.page_write:torn_write:3:-1") == {
            "site": "diskstore.page_write",
            "kind": "torn_write",
            "at": 3,
            "times": -1,
        }

    def test_empty_segment_keeps_default(self):
        # "every hit" without pinning the first: site:kind::-1
        assert parse_rule("shard.worker:crash::-1") == {
            "site": "shard.worker",
            "kind": "crash",
            "times": -1,
        }

    @pytest.mark.parametrize(
        "bad", ["", "siteonly", "site:badkind", "a:error:1:2:3", ":error"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_rule(bad)

    def test_kinds_are_closed(self):
        for kind in KINDS:
            parse_rule(f"x.y:{kind}")
