"""Tests for the bucket kd tree baseline [BENT75]."""


import pytest

from repro.baselines.kdtree import KdTree
from repro.core.geometry import Box
from repro.core.rangesearch import brute_force_search

from conftest import random_box, random_points


def loaded(grid, points, capacity=20):
    tree = KdTree(grid, page_capacity=capacity)
    tree.insert_many(points)
    return tree


class TestMaintenance:
    def test_insert_count(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 100))
        assert len(tree) == 100

    def test_insert_validates(self, grid64):
        tree = KdTree(grid64)
        with pytest.raises(ValueError):
            tree.insert((64, 0))

    def test_capacity_minimum(self, grid64):
        with pytest.raises(ValueError):
            KdTree(grid64, page_capacity=1)

    def test_delete(self, grid64):
        tree = KdTree(grid64)
        tree.insert((3, 5))
        assert tree.delete((3, 5))
        assert not tree.delete((3, 5))
        assert len(tree) == 0

    def test_delete_after_splits(self, grid64, rng):
        points = random_points(rng, grid64, 100)
        tree = loaded(grid64, points, capacity=8)
        for p in points[:50]:
            assert tree.delete(tuple(p))
        assert len(tree) == 50

    def test_splits_create_pages(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 200), capacity=10)
        assert tree.npages >= 200 // 10
        assert tree.height >= 3

    def test_leaf_sizes_bounded(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 300), capacity=10)
        assert all(size <= 10 for size in tree.leaf_sizes())

    def test_duplicate_heavy_input(self, grid64):
        tree = KdTree(grid64, page_capacity=4)
        for _ in range(30):
            tree.insert((5, 5))
        assert len(tree) == 30
        result = tree.range_query(Box(((5, 5), (5, 5))))
        assert result.nmatches == 30


class TestQueries:
    def test_matches_brute_force(self, grid64, rng):
        points = random_points(rng, grid64, 400)
        tree = loaded(grid64, points)
        for _ in range(15):
            box = random_box(rng, grid64)
            result = tree.range_query(box)
            truth = brute_force_search(grid64, points, box)
            assert list(result.matches) == truth

    def test_query_outside_grid(self, grid64):
        tree = loaded(grid64, [(1, 1)])
        result = tree.range_query(Box(((100, 120), (100, 120))))
        assert result.matches == ()

    def test_small_query_prunes(self, grid64, rng):
        points = random_points(rng, grid64, 500)
        tree = loaded(grid64, points, capacity=10)
        result = tree.range_query(Box(((10, 12), (10, 12))))
        assert result.pages_accessed < tree.npages / 2

    def test_partial_match(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        tree = loaded(grid64, points)
        result = tree.partial_match_query((17, None))
        expected = sorted(
            (p for p in map(tuple, points) if p[0] == 17),
            key=lambda p: grid64.zvalue(p).bits,
        )
        assert list(result.matches) == expected

    def test_3d(self, grid3d, rng):
        points = random_points(rng, grid3d, 300)
        tree = loaded(grid3d, points, capacity=8)
        box = Box(((2, 9), (1, 12), (5, 14)))
        assert list(tree.range_query(box).matches) == brute_force_search(
            grid3d, points, box
        )

    def test_efficiency_bounds(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        tree = loaded(grid64, points)
        result = tree.range_query(Box(((0, 31), (0, 31))))
        assert 0.0 <= result.efficiency <= 1.0
