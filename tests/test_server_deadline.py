"""Deadline propagation: saturating budgets, cooperative scan aborts,
admission shedding, and the no-peer-poisoning batch invariant.

The unit half exercises :mod:`repro.core.deadline` on fake clocks; the
service half drives ``deadline_ms`` end to end through admission, the
batcher and the scatter path, asserting that an expired request frees
its slot, answers a typed ``deadline`` rejection, and never fails the
patient members of its batch.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.deadline import (
    MAX_BUDGET,
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.server import (
    AdmissionController,
    DeadlineExpired,
    QueryService,
)
from repro.shard.executor import ResiliencePolicy, SerialExecutor

GRID = Grid(ndims=2, depth=6)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _build_db(npoints=400):
    from repro.workloads.datasets import make_dataset

    db = SpatialDatabase(GRID, page_capacity=16, concurrency=True)
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    points = make_dataset("C", GRID, npoints, seed=0).points
    db.insert_many(
        "points", [(f"p{i}", x, y) for i, (x, y) in enumerate(points)]
    )
    db.create_index("points_xy", "points", ("x", "y"))
    return db


# ----------------------------------------------------------------------
# Deadline arithmetic
# ----------------------------------------------------------------------


def test_deadline_basic_lifecycle_on_fake_clock():
    clock = FakeClock()
    d = Deadline(1.0, clock=clock)
    assert d.remaining() == 1.0
    assert not d.expired()
    clock.now = 0.75
    assert d.remaining() == pytest.approx(0.25)
    clock.now = 1.0
    assert d.expired()
    assert d.remaining() == 0.0
    with pytest.raises(DeadlineExceeded) as excinfo:
        d.check("unit.site")
    assert excinfo.value.site == "unit.site"
    clock.now = 99.0
    assert d.remaining() == 0.0  # floors, never negative


def test_deadline_saturates_hostile_budgets():
    clock = FakeClock()
    for budget in (-5.0, 0.0, float("nan"), -float("inf")):
        d = Deadline(budget, clock=clock)
        assert d.budget == 0.0
        assert d.expired()
    d = Deadline(float("inf"), clock=clock)
    assert d.budget == MAX_BUDGET
    assert not d.expired()
    assert d.remaining() == MAX_BUDGET


def test_deadline_scope_nests_and_restores():
    assert current_deadline() is None
    check_deadline("unarmed")  # no-op, never raises
    clock = FakeClock()
    outer = Deadline(10.0, clock=clock)
    inner = Deadline(1.0, clock=clock)
    with deadline_scope(outer):
        assert current_deadline() is outer
        with deadline_scope(inner):
            assert current_deadline() is inner
            with deadline_scope(None):
                assert current_deadline() is None
                check_deadline("disarmed inside scope")
            assert current_deadline() is inner
        assert current_deadline() is outer
        clock.now = 11.0
        with pytest.raises(DeadlineExceeded):
            check_deadline("outer expired")
    assert current_deadline() is None


def test_scan_intervals_aborts_cooperatively():
    """An expired scope stops the interval scan instead of finishing
    the full pass (and an unarmed scan is unaffected)."""
    from repro.core.rangesearch import (
        SortedPointCursor,
        build_point_sequence,
        scan_intervals,
    )

    records = build_point_sequence(
        GRID, [(x, y) for x in range(40) for y in range(40)]
    )
    intervals = [(0, records[-1].z)]
    with deadline_scope(Deadline(0.0, clock=FakeClock(0.0))):
        with pytest.raises(DeadlineExceeded) as excinfo:
            scan_intervals(SortedPointCursor(records), intervals)
    assert excinfo.value.site == "scan_intervals"
    out = scan_intervals(SortedPointCursor(records), intervals)
    assert sum(len(m) for m in out) == len(records)


def test_serial_scatter_honours_active_deadline():
    executor = SerialExecutor()

    class OneShardStore:
        def shard_ids(self):
            return [0]

    with deadline_scope(Deadline(0.0, clock=FakeClock(0.0))):
        with pytest.raises(DeadlineExceeded):
            executor.map_shards_resilient(
                OneShardStore(), [(0, "range_query", (), {})]
            )


# ----------------------------------------------------------------------
# Admission under a budget
# ----------------------------------------------------------------------


def test_admission_rejects_pre_expired_deadline():
    async def run():
        ctl = AdmissionController(max_inflight=4)
        clock = FakeClock()
        dead = Deadline(0.0, clock=clock)
        with pytest.raises(DeadlineExpired) as excinfo:
            await ctl.acquire("c", dead)
        assert excinfo.value.reason == "deadline"
        assert ctl.inflight == 0
        assert ctl.held_by("c") == 0
        assert ctl.stats["server.rejected.deadline"] == 1

    asyncio.run(run())


def test_admission_queue_wait_bounded_by_deadline():
    """Saturated server + tight client budget: the queued request is
    cut loose when *its* budget (shorter than the policy timeout)
    expires, with the ``deadline`` reason — and leaves no ghost
    entry."""

    async def run():
        ctl = AdmissionController(
            max_inflight=1,
            queue_limit=4,
            policy=ResiliencePolicy(
                max_retries=0, backoff_base=0.01,
                backoff_factor=2.0, timeout=30.0,
            ),
        )
        await ctl.acquire("holder")
        t0 = time.perf_counter()
        with pytest.raises(DeadlineExpired):
            await ctl.acquire("eager", Deadline(0.05))
        assert time.perf_counter() - t0 < 5.0  # not the policy's 30s
        assert ctl.queue_depth == 0
        assert ctl.held_by("eager") == 0
        ctl.release("holder")
        assert ctl.inflight == 0

    asyncio.run(run())


# ----------------------------------------------------------------------
# End to end through the service
# ----------------------------------------------------------------------


def test_deadline_ms_rejection_frees_slot_and_counts():
    async def run():
        db = _build_db()
        service = QueryService(db, request_timeout=5.0)
        real_execute = service._execute_batch

        def slow_execute(key, requests):
            time.sleep(0.3)
            return real_execute(key, requests)

        service.batcher._execute = slow_execute
        client = service.connect()
        try:
            request = {
                "op": "range",
                "table": "points",
                "cols": ["x", "y"],
                "box": [[0, 30], [0, 30]],
                "deadline_ms": 40,
                "id": 7,
            }
            response = await service.handle_request(client, request)
            assert response.get("ok") is False
            assert response["rejected"]["reason"] == "deadline"
            assert response["id"] == 7
            assert service.admission.inflight == 0
            assert service.stats["server.deadline.armed"] == 1
            assert service.stats["server.deadline.expired"] == 1
            # An invalid budget is a bad operand, not a deadline event.
            bad = await service.handle_request(
                client, dict(request, deadline_ms=-3, id=8)
            )
            assert bad["error"]["type"] == "bad_request"
            # After the worker drains, a budgeted request that *fits*
            # succeeds and arms the counter without expiring.
            await asyncio.sleep(0.35)
            service.batcher._execute = real_execute
            response = await service.handle_request(
                client, dict(request, deadline_ms=4000, id=9)
            )
            assert response.get("ok") is True
            assert service.stats["server.deadline.armed"] == 2
            assert service.stats["server.deadline.expired"] == 1
        finally:
            service.disconnect(client)
            service.close()

    asyncio.run(run())


def test_expired_member_does_not_poison_batch_peers():
    """Two requests share one batch; the impatient one is rejected with
    ``deadline`` while the patient one gets byte-identical rows."""

    async def run():
        db = _build_db()
        service = QueryService(
            db, max_inflight=8, request_timeout=5.0, batching=True
        )
        real_execute = service._execute_batch

        def slow_execute(key, requests):
            time.sleep(0.25)
            return real_execute(key, requests)

        service.batcher._execute = slow_execute
        impatient = service.connect()
        patient = service.connect()
        try:
            box = [[0, 30], [0, 30]]
            base = {
                "op": "range",
                "table": "points",
                "cols": ["x", "y"],
                "box": box,
            }
            results = await asyncio.gather(
                service.handle_request(
                    impatient, dict(base, deadline_ms=50, id=1)
                ),
                service.handle_request(patient, dict(base, id=2)),
            )
            rejected, served = results
            assert rejected["rejected"]["reason"] == "deadline"
            assert served.get("ok") is True
            expected = db.range_query(
                "points", ("x", "y"), Box(((0, 30), (0, 30)))
            ).rows
            assert [tuple(r) for r in served["rows"]] == expected
            assert service.admission.inflight == 0
        finally:
            service.disconnect(impatient)
            service.disconnect(patient)
            service.close()
            db.snapshots.reclaim()
            leaks = db.snapshots.leak_stats()
            assert all(v == 0 for v in leaks.values()), leaks

    asyncio.run(run())
