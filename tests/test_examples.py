"""The example scripts must run clean — they are the documented entry
points.  (The full-size ``reproduce_experiments.py`` is exercised by the
benchmark suite instead; it takes a minute.)"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "cartography_overlay.py",
    "cad_interference.py",
    "range_query_dbms.py",
    "temporal_intervals.py",
    "persistent_sessions.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} produced no output"


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(FAST_EXAMPLES) <= present
    assert "reproduce_experiments.py" in present
