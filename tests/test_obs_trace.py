"""Unit tests for the observability core: spans, traces, the gate."""

import json

import pytest

from repro import obs
from repro.obs import GateReport, QueryTrace, Span, compare_counters
from repro.obs.explain import format_trace
from repro.obs.trace import current


class TestSpan:
    def test_counters_accumulate(self):
        sp = Span("s")
        sp.add("rows")
        sp.add("rows", 4)
        sp.add_counters({"rows": 5, "pages": 2})
        assert sp.counters == {"rows": 10, "pages": 2}

    def test_attrs_overwrite(self):
        sp = Span("s")
        sp.set("box", "a")
        sp.set("box", "b")
        assert sp.attrs["box"] == "b"

    def test_merge_from(self):
        a = Span("a")
        a.add("rows", 3)
        a.set("k", 1)
        a.elapsed_s = 0.5
        b = Span("b")
        b.add("rows", 2)
        b.add("pages", 7)
        b.set("k", 2)
        b.elapsed_s = 0.25
        b.child("inner")
        a.merge_from(b)
        assert a.counters == {"rows": 5, "pages": 7}
        assert a.attrs["k"] == 2  # other's attrs win
        assert a.elapsed_s == pytest.approx(0.75)
        assert [c.name for c in a.children] == ["inner"]

    def test_total_counters_sums_subtree(self):
        root = Span("root")
        root.add("rows", 1)
        child = root.child("child")
        child.add("rows", 2)
        child.child("grandchild").add("pages", 4)
        assert root.total_counters() == {"rows": 3, "pages": 4}

    def test_find_preorder(self):
        root = Span("root")
        first = root.child("x")
        root.child("y").child("x")
        assert root.find("x") is first
        assert root.find("missing") is None

    def test_walk_visits_all(self):
        root = Span("root")
        root.child("a").child("b")
        root.child("c")
        assert [s.name for s in root.walk()] == ["root", "a", "b", "c"]


class TestQueryTrace:
    def test_nesting(self):
        t = QueryTrace("q")
        with t.span("outer"):
            t.add("n", 1)
            with t.span("inner") as inner:
                inner.add("n", 10)
        assert [c.name for c in t.root.children] == ["outer"]
        outer = t.root.children[0]
        assert outer.counters == {"n": 1}
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].counters == {"n": 10}

    def test_stack_restored_on_error(self):
        t = QueryTrace("q")
        with pytest.raises(RuntimeError):
            with t.span("failing"):
                raise RuntimeError("boom")
        assert t.active_span is t.root

    def test_span_times(self):
        t = QueryTrace("q")
        with t:
            with t.span("timed"):
                pass
        assert t.root.elapsed_s >= t.root.children[0].elapsed_s >= 0.0

    def test_json_round_trip(self):
        t = QueryTrace("q")
        with t.span("child") as sp:
            sp.add("rows", 3)
            sp.set("est_rows", 2.5)
        text = t.to_json()
        restored = QueryTrace.from_json(text)
        assert restored.root.name == "q"
        assert restored.total_counters() == t.total_counters()
        assert restored.root.children[0].attrs == {"est_rows": 2.5}
        # and the text is valid, sorted JSON
        assert json.loads(text)["name"] == "q"


class TestModuleHelpers:
    def test_disabled_is_noop(self):
        assert current() is None
        obs.add("ignored")  # must not raise
        with obs.span("ignored") as sp:
            assert sp is None
        with obs.trace("off", enabled=False) as t:
            assert t is None
            assert current() is None

    def test_trace_installs_and_restores(self):
        assert current() is None
        with obs.trace("on") as t:
            assert current() is t
            obs.add("hits", 2)
            with obs.span("inner") as sp:
                assert sp is not None
        assert current() is None
        assert t.root.counters == {"hits": 2}
        assert t.root.children[0].name == "inner"

    def test_nested_traces_stack(self):
        with obs.trace("outer") as outer:
            with obs.trace("inner") as inner:
                assert current() is inner
            assert current() is outer
        assert current() is None


class TestExplainRendering:
    def test_estimated_vs_actual(self):
        t = QueryTrace("q")
        with t.span("plan.index-scan") as sp:
            sp.set("est_rows", 10.0)
            sp.set("est_pages", 3.0)
            sp.add("rows_out", 8)
            sp.child("zkd").add("pages_accessed", 4)
        text = format_trace(t)
        assert "rows: estimated=10.0 actual=8" in text
        assert "pages: estimated=3.0 actual=4" in text

    def test_unmatched_estimate_renders_question_mark(self):
        t = QueryTrace("q")
        with t.span("plan") as sp:
            sp.set("est_rows", 1.0)
        assert "rows: estimated=1.0 actual=?" in format_trace(t)


class TestCounterGate:
    def test_match_passes(self):
        report = compare_counters({"a": 1, "b": 2}, {"a": 1, "b": 2})
        assert report.ok
        assert "PASS" in report.summary()

    def test_increase_fails(self):
        report = compare_counters({"a": 3}, {"a": 1})
        assert not report.ok
        assert report.regressions == ["a: 1 -> 3"]
        assert "FAIL" in report.summary()

    def test_decrease_is_improvement(self):
        report = compare_counters({"a": 1}, {"a": 3})
        assert report.ok
        assert report.improvements == ["a: 3 -> 1"]

    def test_key_drift_fails_both_ways(self):
        added = compare_counters({"a": 1, "new": 5}, {"a": 1})
        assert not added.ok and added.added == ["new=5"]
        removed = compare_counters({"a": 1}, {"a": 1, "old": 5})
        assert not removed.ok and removed.removed == ["old=5"]

    def test_report_default_is_ok(self):
        assert GateReport().ok
