"""Unit tests for the observability core: spans, traces, the gate."""

import json

import pytest

from repro import obs
from repro.obs import GateReport, QueryTrace, Span, compare_counters
from repro.obs.explain import format_trace
from repro.obs.trace import current


class TestSpan:
    def test_counters_accumulate(self):
        sp = Span("s")
        sp.add("rows")
        sp.add("rows", 4)
        sp.add_counters({"rows": 5, "pages": 2})
        assert sp.counters == {"rows": 10, "pages": 2}

    def test_attrs_overwrite(self):
        sp = Span("s")
        sp.set("box", "a")
        sp.set("box", "b")
        assert sp.attrs["box"] == "b"

    def test_merge_from(self):
        a = Span("a")
        a.add("rows", 3)
        a.set("k", 1)
        a.elapsed_s = 0.5
        b = Span("b")
        b.add("rows", 2)
        b.add("pages", 7)
        b.set("k", 2)
        b.elapsed_s = 0.25
        b.child("inner")
        a.merge_from(b)
        assert a.counters == {"rows": 5, "pages": 7}
        assert a.attrs["k"] == 2  # other's attrs win
        assert a.elapsed_s == pytest.approx(0.75)
        assert [c.name for c in a.children] == ["inner"]

    def test_total_counters_sums_subtree(self):
        root = Span("root")
        root.add("rows", 1)
        child = root.child("child")
        child.add("rows", 2)
        child.child("grandchild").add("pages", 4)
        assert root.total_counters() == {"rows": 3, "pages": 4}

    def test_find_preorder(self):
        root = Span("root")
        first = root.child("x")
        root.child("y").child("x")
        assert root.find("x") is first
        assert root.find("missing") is None

    def test_walk_visits_all(self):
        root = Span("root")
        root.child("a").child("b")
        root.child("c")
        assert [s.name for s in root.walk()] == ["root", "a", "b", "c"]


class TestQueryTrace:
    def test_nesting(self):
        t = QueryTrace("q")
        with t.span("outer"):
            t.add("n", 1)
            with t.span("inner") as inner:
                inner.add("n", 10)
        assert [c.name for c in t.root.children] == ["outer"]
        outer = t.root.children[0]
        assert outer.counters == {"n": 1}
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].counters == {"n": 10}

    def test_stack_restored_on_error(self):
        t = QueryTrace("q")
        with pytest.raises(RuntimeError):
            with t.span("failing"):
                raise RuntimeError("boom")
        assert t.active_span is t.root

    def test_span_times(self):
        t = QueryTrace("q")
        with t:
            with t.span("timed"):
                pass
        assert t.root.elapsed_s >= t.root.children[0].elapsed_s >= 0.0

    def test_json_round_trip(self):
        t = QueryTrace("q")
        with t.span("child") as sp:
            sp.add("rows", 3)
            sp.set("est_rows", 2.5)
        text = t.to_json()
        restored = QueryTrace.from_json(text)
        assert restored.root.name == "q"
        assert restored.total_counters() == t.total_counters()
        assert restored.root.children[0].attrs == {"est_rows": 2.5}
        # and the text is valid, sorted JSON
        assert json.loads(text)["name"] == "q"


class TestModuleHelpers:
    def test_disabled_is_noop(self):
        assert current() is None
        obs.add("ignored")  # must not raise
        with obs.span("ignored") as sp:
            assert sp is None
        with obs.trace("off", enabled=False) as t:
            assert t is None
            assert current() is None

    def test_trace_installs_and_restores(self):
        assert current() is None
        with obs.trace("on") as t:
            assert current() is t
            obs.add("hits", 2)
            with obs.span("inner") as sp:
                assert sp is not None
        assert current() is None
        assert t.root.counters == {"hits": 2}
        assert t.root.children[0].name == "inner"

    def test_nested_traces_stack(self):
        with obs.trace("outer") as outer:
            with obs.trace("inner") as inner:
                assert current() is inner
            assert current() is outer
        assert current() is None


class TestExplainRendering:
    def test_estimated_vs_actual(self):
        t = QueryTrace("q")
        with t.span("plan.index-scan") as sp:
            sp.set("est_rows", 10.0)
            sp.set("est_pages", 3.0)
            sp.add("rows_out", 8)
            sp.child("zkd").add("pages_accessed", 4)
        text = format_trace(t)
        assert "rows: estimated=10.0 actual=8" in text
        assert "pages: estimated=3.0 actual=4" in text

    def test_unmatched_estimate_renders_question_mark(self):
        t = QueryTrace("q")
        with t.span("plan") as sp:
            sp.set("est_rows", 1.0)
        assert "rows: estimated=1.0 actual=?" in format_trace(t)


class TestCacheTracing:
    """EXPLAIN ANALYZE rendering and counter invariance for the
    semantic result cache."""

    def _build(self, cache=True, shards=1, executor="serial"):
        import random

        from repro.core.geometry import Box, Grid
        from repro.db.database import SpatialDatabase
        from repro.db.schema import Schema
        from repro.db.types import INTEGER, OID

        grid = Grid(ndims=2, depth=6)
        db = SpatialDatabase(grid, page_capacity=8, cache=cache)
        db.create_table(
            "t", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        rng = random.Random(5)
        db.insert_many(
            "t",
            [
                (f"p{i}", rng.randrange(grid.side), rng.randrange(grid.side))
                for i in range(300)
            ],
        )
        db.create_index(
            "t_xy", "t", ("x", "y"), shards=shards, executor=executor
        )
        return db, Box(((0, 15), (0, 15)))

    def _traced_query(self, db, box):
        with obs.trace("q") as t:
            db.range_query("t", ("x", "y"), box)
        return t

    def test_miss_then_hit_then_partial_render(self):
        from repro.core.geometry import Box

        db, box = self._build()
        cold = format_trace(self._traced_query(db, box))
        assert "cache.lookup" in cold
        assert "outcome=miss" in cold
        assert "cache.miss=1" in cold

        warm = format_trace(self._traced_query(db, box))
        assert "outcome=hit" in warm
        assert "cache.hit=1" in warm
        # Per-entry leaves render compactly, shard-style.
        assert "cache.entry[0]  points_served=" in warm
        assert "z=[" in warm and "epoch=" in warm

        partial = format_trace(
            self._traced_query(db, Box(((0, 23), (0, 15))))
        )
        assert "outcome=partial" in partial
        assert "cache.partial=1" in partial
        assert "cache.residual_elements=" in partial

    def test_plan_span_marks_cached_scans(self):
        db, box = self._build()
        text = format_trace(self._traced_query(db, box))
        assert "plan.index-scan" in text
        assert "cached=True" in text

    def test_uncached_traces_are_cache_free(self):
        """With no cache attached neither the ``cached`` attr nor any
        ``cache.*`` counter appears — the committed counter baseline
        stays byte-identical for cache-off runs."""
        db, box = self._build(cache=False)
        t = self._traced_query(db, box)
        assert "cached" not in t.root.walk().__next__().attrs
        for span in t.root.walk():
            assert "cached" not in span.attrs
            assert not any(k.startswith("cache.") for k in span.counters)
        assert "cache" not in format_trace(t)

    def test_cache_counters_executor_invariant(self):
        """Sharded scatter–gather under the cache publishes identical
        counters whether shards run serially or on threads."""
        totals = {}
        for kind in ("serial", "thread"):
            db, box = self._build(shards=4, executor=kind)
            from repro.core.geometry import Box

            boxes = [box, box, Box(((0, 23), (0, 15)))]  # miss, hit, partial
            acc = {}
            for b in boxes:
                for key, value in self._traced_query(
                    db, b
                ).total_counters().items():
                    acc[key] = acc.get(key, 0) + value
            totals[kind] = acc
        assert totals["serial"] == totals["thread"]
        assert totals["serial"].get("cache.hit") == 1  # non-vacuous

    def test_interval_scans_publish_no_counters(self):
        """The residual interval scan is untraced at every layer: the
        cache.lookup span owns the partial outcome, and executor/thread
        counters must not leak from inside the store."""
        db, box = self._build(shards=2)
        self._traced_query(db, box)  # admit
        from repro.core.geometry import Box

        t = self._traced_query(db, Box(((0, 23), (0, 15))))  # partial
        lookup = t.root.find("cache.lookup")
        assert lookup is not None
        assert lookup.attrs["outcome"] == "partial"
        # No storage spans nested under the lookup: the residual ran
        # through the untraced interval path.
        assert all(
            child.name.startswith("cache.entry[")
            for child in lookup.children
        )


class TestCounterGate:
    def test_match_passes(self):
        report = compare_counters({"a": 1, "b": 2}, {"a": 1, "b": 2})
        assert report.ok
        assert "PASS" in report.summary()

    def test_increase_fails(self):
        report = compare_counters({"a": 3}, {"a": 1})
        assert not report.ok
        assert report.regressions == ["a: 1 -> 3"]
        assert "FAIL" in report.summary()

    def test_decrease_is_improvement(self):
        report = compare_counters({"a": 1}, {"a": 3})
        assert report.ok
        assert report.improvements == ["a: 3 -> 1"]

    def test_key_drift_fails_both_ways(self):
        added = compare_counters({"a": 1, "new": 5}, {"a": 1})
        assert not added.ok and added.added == ["new=5"]
        removed = compare_counters({"a": 1}, {"a": 1, "old": 5})
        assert not removed.ok and removed.removed == ["old=5"]

    def test_report_default_is_ok(self):
        assert GateReport().ok
