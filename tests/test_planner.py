"""Tests for the cost-based range-query planner."""

import pytest

from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.planner import estimate_selectivity, plan_range_query
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID

from conftest import random_points


def make_db(rng, n=1000, with_index=True):
    db = SpatialDatabase(Grid(2, 7), page_capacity=20)
    db.create_table(
        "t", Schema.of(("i@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    db.insert_many(
        "t",
        [
            (f"r{i}", x, y)
            for i, (x, y) in enumerate(random_points(rng, db.grid, n))
        ],
    )
    if with_index:
        db.create_index("t_xy", "t", ("x", "y"))
    return db


class TestSelectivity:
    def test_whole_space(self):
        grid = Grid(2, 6)
        assert estimate_selectivity(grid.whole_space(), grid) == 1.0

    def test_single_pixel(self):
        grid = Grid(2, 6)
        assert estimate_selectivity(Box(((3, 3), (4, 4))), grid) == pytest.approx(
            1 / 4096
        )

    def test_clipped(self):
        grid = Grid(2, 6)
        spill = Box(((32, 95), (0, 63)))  # half in, half out
        assert estimate_selectivity(spill, grid) == pytest.approx(0.5)

    def test_fully_outside(self):
        grid = Grid(2, 6)
        assert estimate_selectivity(Box(((70, 80), (70, 80))), grid) == 0.0


class TestPlanChoice:
    def test_small_query_uses_index(self, rng):
        db = make_db(rng)
        plan = plan_range_query(db, "t", ("x", "y"), Box(((5, 10), (5, 10))))
        assert plan.method == "index-scan"
        assert plan.estimated_pages < plan.alternative_pages

    def test_huge_query_uses_scan(self, rng):
        db = make_db(rng)
        plan = plan_range_query(db, "t", ("x", "y"), db.grid.whole_space())
        assert plan.method == "table-scan"

    def test_no_index_falls_back(self, rng):
        db = make_db(rng, with_index=False)
        plan = plan_range_query(db, "t", ("x", "y"), Box(((5, 10), (5, 10))))
        assert plan.method == "table-scan"
        assert plan.alternative_pages == float("inf")

    def test_all_methods_agree(self, rng):
        db = make_db(rng)
        for box in (
            Box(((5, 10), (5, 10))),
            Box(((0, 127), (0, 127))),
            Box(((30, 90), (40, 100))),
        ):
            via_index = sorted(
                db._range_query_via_index(
                    db._index_for("t", ("x", "y")), "t", box
                ).rows
            )
            via_scan = sorted(
                db._range_query_via_scan("t", ("x", "y"), box).rows
            )
            via_plan = sorted(
                db._range_query_via_plan("t", ("x", "y"), box).rows
            )
            assert via_index == via_scan == via_plan

    def test_empty_box_region(self, rng):
        db = make_db(rng)
        plan = plan_range_query(
            db, "t", ("x", "y"), Box(((200, 210), (200, 210)))
        )
        assert plan.selectivity == 0.0
        assert plan.execute().rows == []


class TestExplain:
    def test_explain_mentions_both_options(self, rng):
        db = make_db(rng)
        text = db.explain_range_query("t", ("x", "y"), Box(((5, 10), (5, 10))))
        assert "index-scan" in text and "table-scan" in text
        assert "selectivity" in text

    def test_range_query_uses_planner(self, rng):
        db = make_db(rng)
        # Behavioral check: results identical regardless of plan.
        box = Box(((0, 127), (0, 100)))
        got = sorted((x, y) for _, x, y in db.range_query("t", ("x", "y"), box).rows)
        want = sorted(
            (x, y) for _, x, y in db.table("t") if box.contains_point((x, y))
        )
        assert got == want
