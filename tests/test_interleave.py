"""Tests for bit interleaving (shuffle/unshuffle on integers)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.interleave import (
    bit_at,
    deinterleave,
    interleave,
    set_bit,
    zrank,
)


class TestBitAt:
    def test_msb_first(self):
        assert bit_at(0b100, 0, 3) == 1
        assert bit_at(0b100, 1, 3) == 0
        assert bit_at(0b100, 2, 3) == 0

    def test_all_bits(self):
        value = 0b1011
        assert [bit_at(value, i, 4) for i in range(4)] == [1, 0, 1, 1]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            bit_at(0, 4, 4)
        with pytest.raises(IndexError):
            bit_at(0, -1, 4)


class TestSetBit:
    def test_set_and_clear(self):
        assert set_bit(0b000, 0, 3, 1) == 0b100
        assert set_bit(0b111, 0, 3, 0) == 0b011
        assert set_bit(0b000, 2, 3, 1) == 0b001

    def test_idempotent(self):
        assert set_bit(0b101, 0, 3, 1) == 0b101

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            set_bit(0, 3, 3, 1)


class TestInterleave:
    def test_paper_figure4_example(self):
        # Figure 4: [3, 5] -> (011, 101) -> 011011 = 27.
        assert interleave((3, 5), 3) == 27

    def test_zrank_alias(self):
        assert zrank((3, 5), 3) == 27

    def test_origin_is_zero(self):
        assert interleave((0, 0), 4) == 0
        assert interleave((0, 0, 0), 5) == 0

    def test_maximum(self):
        assert interleave((7, 7), 3) == 63

    def test_x_is_most_significant(self):
        # x0 is the first interleaved bit: x=4 (100) beats y=7 (111)
        # in a depth-3 grid.
        assert interleave((4, 0), 3) > interleave((3, 7), 3)

    def test_one_dimension_is_identity(self):
        for v in range(16):
            assert interleave((v,), 4) == v

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            interleave((8, 0), 3)
        with pytest.raises(ValueError):
            interleave((-1, 0), 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            interleave((), 3)

    def test_rejects_negative_depth_clearly(self):
        # Used to surface as an opaque "negative shift count" from deep
        # inside; now a clear ValueError up front.
        with pytest.raises(ValueError, match="depth"):
            interleave((0,), -1)
        with pytest.raises(ValueError, match="depth"):
            deinterleave(0, 2, -1)

    def test_rejects_non_integer_coordinates(self):
        # A float used to blow up half-way through with a TypeError (or
        # silently truncate in other code paths); it must be a clear
        # ValueError before any bit is produced.
        with pytest.raises(ValueError, match="not an integer"):
            interleave((1.5, 2), 3)
        with pytest.raises(ValueError, match="not an integer"):
            interleave((2.0, 1), 3)
        with pytest.raises(ValueError, match="not an integer"):
            interleave(("3", 1), 3)
        with pytest.raises(ValueError, match="not an integer"):
            deinterleave(2.0, 2, 3)

    def test_exhaustive_bijection_2d(self):
        codes = {interleave((x, y), 3) for x in range(8) for y in range(8)}
        assert codes == set(range(64))

    def test_exhaustive_bijection_3d(self):
        codes = {
            interleave((x, y, z), 2)
            for x in range(4)
            for y in range(4)
            for z in range(4)
        }
        assert codes == set(range(64))


class TestDeinterleave:
    def test_paper_example(self):
        assert deinterleave(27, 2, 3) == (3, 5)

    def test_rejects_bad_code(self):
        with pytest.raises(ValueError):
            deinterleave(64, 2, 3)
        with pytest.raises(ValueError):
            deinterleave(-1, 2, 3)

    def test_rejects_bad_ndims(self):
        with pytest.raises(ValueError):
            deinterleave(0, 0, 3)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=8),
        st.data(),
    )
    def test_roundtrip(self, ndims, depth, data):
        coords = tuple(
            data.draw(st.integers(min_value=0, max_value=(1 << depth) - 1))
            for _ in range(ndims)
        )
        assert deinterleave(interleave(coords, depth), ndims, depth) == coords

    @given(st.integers(min_value=0, max_value=4095))
    def test_roundtrip_from_code(self, code):
        assert interleave(deinterleave(code, 3, 4), 4) == code


class TestOrderProperties:
    def test_quadrant_order(self):
        # The four depth-1 quadrants follow the N shape: (0,0), (0,1),
        # (1,0), (1,1) when ordered by z code (x bit first).
        order = sorted(
            ((x, y) for x in range(2) for y in range(2)),
            key=lambda p: interleave(p, 1),
        )
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    @given(
        st.tuples(
            st.integers(min_value=0, max_value=127),
            st.integers(min_value=0, max_value=127),
        )
    )
    def test_scaling_preserves_order_structure(self, point):
        # Doubling both coordinates shifts the code two bits up.
        x, y = point
        assert interleave((2 * x, 2 * y), 8) == interleave((x, y), 7) << 2
