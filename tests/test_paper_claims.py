"""End-to-end checks of the paper's specific claims, at test scale.

Each test names the claim and the section it comes from.  The full-size
reproductions (5000 points, the complete shape x volume grid) live in
``benchmarks/``; these are smaller versions that must still show the
qualitative effect.
"""

import pytest

from repro.core.analysis import (
    coarsen_size,
    coarsening_tradeoff,
    element_count_2d,
    predicted_partial_match_pages,
)
from repro.core.geometry import Box, Grid
from repro.experiments.harness import (
    check_findings,
    run_ucd_experiment,
)
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import make_dataset
from repro.workloads.queries import partial_match_workload

GRID = Grid(2, 8)  # 256 x 256
SETUP = dict(npoints=2000, page_capacity=20, locations=4)


@pytest.fixture(scope="module")
def ucd_rows():
    out = {}
    for name in ("U", "C", "D"):
        _, rows = run_ucd_experiment(
            GRID,
            name,
            npoints=SETUP["npoints"],
            page_capacity=SETUP["page_capacity"],
            volumes=(0.01, 0.02, 0.04, 0.08),
            aspects=(1.0, 2.0, 0.5, 8.0, 0.125),
            locations=SETUP["locations"],
            seed=0,
        )
        out[name] = rows
    return out


class TestSection531:
    def test_range_pages_scale_with_volume(self, ucd_rows):
        """Claim: range queries access O(vN) pages."""
        findings = check_findings(ucd_rows["U"])
        assert findings.pages_grow_with_volume

    def test_partial_match_exponent(self):
        """Claim: partial match accesses O(N^(1-t/k)) pages.  With one
        of two axes fixed, doubling N should grow pages ~sqrt(2)x."""
        results = {}
        for npoints in (1000, 4000):
            ds = make_dataset("U", GRID, npoints, seed=1)
            tree = ZkdTree(GRID, page_capacity=20)
            tree.insert_many(ds.points)
            boxes = partial_match_workload(GRID, [0], count=8, seed=2)
            pages = [tree.range_query(b).pages_accessed for b in boxes]
            results[npoints] = (sum(pages) / len(pages), tree.npages)
        (pages_small, n_small), (pages_big, n_big) = (
            results[1000],
            results[4000],
        )
        observed_ratio = pages_big / pages_small
        predicted_ratio = predicted_partial_match_pages(
            n_big, 2, 1
        ) / predicted_partial_match_pages(n_small, 2, 1)
        # Same order of growth: within 2x of the predicted ratio.
        assert observed_ratio < predicted_ratio * 2


class TestSection532Findings:
    def test_finding1_trends_in_all_experiments(self, ucd_rows):
        """Finding 1: 'The general trends predicted by the analysis
        were observed in all experiments.'"""
        for name in ("U", "C", "D"):
            findings = check_findings(ucd_rows[name])
            assert findings.pages_grow_with_volume, name
            assert findings.narrow_costs_more_than_square, name

    def test_finding2_prediction_mostly_upper_bound(self, ucd_rows):
        """Finding 2: 'Except for a few data points, the predicted
        results provided an upper bound.'  U should be closest to the
        analysis."""
        u = check_findings(ucd_rows["U"])
        assert u.prediction_upper_bound_fraction >= 0.5

    def test_finding2_u_closest_to_prediction(self, ucd_rows):
        """'The results for experiment U were closest to the predicted
        results' — measured as mean |observed - predicted| / predicted."""

        def deviation(rows):
            return sum(
                abs(r.mean_pages - r.predicted_pages) / r.predicted_pages
                for r in rows
            ) / len(rows)

        assert deviation(ucd_rows["U"]) <= deviation(ucd_rows["D"])

    def test_finding3_efficiency_grows_with_volume(self, ucd_rows):
        """Finding 3: 'Query efficiency increased with query volume.'"""
        findings = check_findings(ucd_rows["U"])
        assert findings.efficiency_grows_with_volume

    def test_finding4_best_shapes_square_or_tall(self, ucd_rows):
        """Finding 4: 'the greatest efficiency would be achieved by
        queries which are square or twice as tall as they are wide.'"""
        findings = check_findings(ucd_rows["U"])
        assert set(findings.best_aspects) <= {1.0, 0.5, 2.0}
        assert 1.0 in findings.best_aspects or 0.5 in findings.best_aspects


class TestSection51:
    def test_cyclicity(self):
        """Claim: E(U, V) = E(2U, 2V)."""
        for u, v in [(13, 9), (100, 37), (255, 254)]:
            assert element_count_2d(u, v, 9) == element_count_2d(
                2 * u, 2 * v, 10
            )

    def test_coarsening_example(self):
        """Claim: the boundary-expansion construction (U = 01101101,
        m = 4 -> U' = 01110000) cuts elements with small area error."""
        assert coarsen_size(0b01101101, 4) == 0b01110000
        t = coarsening_tradeoff((0b01101101, 0b01011011), depth=8, m=4)
        assert t.element_reduction > 0.5
        assert t.volume_error < 0.25

    def test_surface_not_volume(self):
        """Claim: E(U, V) is dominated by the border, i.e. grows with
        the perimeter, not the area.  Doubling the area via doubling
        one side grows E far slower than 2x the border growth."""
        depth = 10
        base = element_count_2d(101, 101, depth)
        double_area = element_count_2d(202, 101, depth)
        # Area doubles; element count grows by roughly the border
        # increase (well under 4x).
        assert double_area < 4 * base


class TestSection4:
    def test_lru_claim(self):
        """Claim: 'The LRU buffering strategy will work well because of
        our reliance on merging ... each page is accessed at most once.'
        A range-query merge re-reads no leaf page."""
        ds = make_dataset("U", GRID, 2000, seed=3)
        tree = ZkdTree(GRID, page_capacity=20, buffer_frames=4)
        tree.insert_many(ds.points)
        tree.tree.reset_access_log()
        tree.range_query(Box(((30, 120), (40, 140))))
        accesses = tree.tree.leaf_accesses
        # Each page appears in a single consecutive run (no returns).
        runs = 1 + sum(
            1 for a, b in zip(accesses, accesses[1:]) if a != b
        )
        assert runs == len(set(accesses))
