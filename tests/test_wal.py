"""Unit tests for the write-ahead log (:mod:`repro.storage.wal`).

These exercise the log file directly — framing, commit-ordered replay,
torn-tail discard, BEGIN isolation of aborted transactions — while the
store-level recovery behaviour (replaying onto a real page file) lives
in test_durability.py and the crash matrix.
"""

import os
import struct

import pytest

from repro.storage.wal import (
    WAL_FREE,
    WAL_HEADER,
    WAL_PAGE,
    WriteAheadLog,
)


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(str(tmp_path / "t.wal"))
    yield log
    log.close()


def _replay_all(log, stats=None):
    return [list(txn) for txn in log.replay(stats)]


class TestAppendReplay:
    def test_empty_log_replays_nothing(self, wal):
        assert _replay_all(wal) == []

    def test_committed_txn_round_trips(self, wal):
        wal.begin()
        wal.append_page(3, b"page-three")
        wal.append_free(7)
        wal.append_header(9)
        wal.commit()
        txns = _replay_all(wal)
        assert txns == [
            [
                (WAL_PAGE, 3, b"page-three"),
                (WAL_FREE, 7, b""),
                (WAL_HEADER, 0, struct.pack("<I", 9)),
            ]
        ]

    def test_txns_replay_in_commit_order(self, wal):
        for i in range(3):
            wal.begin()
            wal.append_page(i, bytes([i]) * 4)
            wal.commit()
        txns = _replay_all(wal)
        assert [txn[0][1] for txn in txns] == [0, 1, 2]

    def test_replay_is_repeatable(self, wal):
        wal.begin()
        wal.append_page(1, b"x")
        wal.commit()
        assert _replay_all(wal) == _replay_all(wal)

    def test_stats_accumulate(self, wal):
        wal.begin()
        wal.append_page(1, b"x")
        wal.commit()
        wal.begin()
        wal.append_page(2, b"y")  # never committed
        stats = {}
        _replay_all(wal, stats)
        assert stats["txns_committed"] == 1
        assert stats["records_discarded"] == 1
        assert stats["records_scanned"] >= 4


class TestTornTail:
    def test_uncommitted_tail_discarded(self, wal):
        wal.begin()
        wal.append_page(1, b"committed")
        wal.commit()
        wal.begin()
        wal.append_page(2, b"in flight")
        txns = _replay_all(wal)
        assert len(txns) == 1
        assert txns[0][0][2] == b"committed"

    def test_truncated_record_stops_replay(self, wal, tmp_path):
        wal.begin()
        wal.append_page(1, b"first")
        wal.commit()
        wal.begin()
        wal.append_page(2, b"second")
        wal.commit()
        size = wal.tell()
        wal.truncate_to(size - 3)  # tear the final commit record
        txns = _replay_all(wal)
        assert len(txns) == 1

    def test_corrupt_crc_stops_replay(self, wal):
        wal.begin()
        wal.append_page(1, b"first")
        wal.commit()
        mark = wal.tell()
        wal.begin()
        wal.append_page(2, b"second")
        wal.commit()
        # Flip a byte inside the second transaction's records.
        with open(wal.path, "r+b") as f:
            f.seek(mark + 6)
            byte = f.read(1)
            f.seek(mark + 6)
            f.write(bytes([byte[0] ^ 0xFF]))
        txns = _replay_all(wal)
        assert len(txns) == 1

    def test_foreign_file_replays_nothing(self, tmp_path):
        path = tmp_path / "junk.wal"
        path.write_bytes(b"not a wal at all, truly")
        log = WriteAheadLog(str(path))
        try:
            assert _replay_all(log) == []
        finally:
            log.close()


class TestBeginIsolation:
    def test_aborted_records_cannot_leak_into_next_commit(self, wal):
        # An aborted transaction whose truncation failed leaves orphan
        # records; the next BEGIN must fence them off.
        wal.begin()
        wal.append_page(1, b"aborted")
        wal.begin()
        wal.append_page(2, b"real")
        wal.commit()
        txns = _replay_all(wal)
        assert txns == [[(WAL_PAGE, 2, b"real")]]


class TestMaintenance:
    def test_truncate_to_drops_the_tail(self, wal):
        wal.begin()
        wal.append_page(1, b"keep")
        wal.commit()
        mark = wal.tell()
        wal.begin()
        wal.append_page(2, b"drop")
        wal.truncate_to(mark)
        assert wal.tell() == mark
        assert len(_replay_all(wal)) == 1

    def test_truncate_never_removes_the_magic(self, wal):
        wal.truncate_to(0)
        assert os.path.getsize(wal.path) > 0
        assert _replay_all(wal) == []

    def test_reset_spends_the_log(self, wal):
        wal.begin()
        wal.append_page(1, b"x")
        wal.commit()
        wal.reset()
        assert _replay_all(wal) == []
        # And the file is usable again.
        wal.begin()
        wal.append_page(2, b"y")
        wal.commit()
        assert len(_replay_all(wal)) == 1

    def test_reopen_existing_log(self, tmp_path):
        path = str(tmp_path / "r.wal")
        log = WriteAheadLog(path)
        log.begin()
        log.append_page(1, b"x")
        log.commit()
        log.close()
        again = WriteAheadLog(path)
        try:
            assert len(_replay_all(again)) == 1
        finally:
            again.close()
