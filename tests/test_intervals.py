"""Tests for the z-interval set algebra (the 1-d reduction)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.decompose import Element, decompose_box
from repro.core.geometry import Box
from repro.core.intervals import (
    IntervalSet,
    elements_to_intervals,
    interval_to_elements,
    intervals_to_elements,
)

runs = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 63)).map(
        lambda t: (min(t), max(t))
    ),
    max_size=6,
)


def model(iset: IntervalSet) -> set:
    out = set()
    for lo, hi in iset:
        out |= set(range(lo, hi + 1))
    return out


class TestNormalization:
    def test_sorts_and_coalesces(self):
        s = IntervalSet([(5, 9), (0, 3), (4, 4)])
        assert s.runs == ((0, 9),)

    def test_adjacent_merge(self):
        assert IntervalSet([(0, 1), (2, 3)]).runs == ((0, 3),)

    def test_gap_preserved(self):
        assert IntervalSet([(0, 1), (3, 4)]).runs == ((0, 1), (3, 4))

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            IntervalSet([(3, 2)])

    def test_empty_set(self):
        s = IntervalSet()
        assert not s
        assert s.cardinality() == 0

    @given(runs)
    def test_canonical_runs(self, rs):
        s = IntervalSet(rs)
        for (alo, ahi), (blo, bhi) in zip(s.runs, s.runs[1:]):
            assert ahi + 1 < blo  # disjoint and non-adjacent


class TestMembershipAndCardinality:
    def test_contains(self):
        s = IntervalSet([(2, 5), (10, 10)])
        assert 2 in s and 5 in s and 10 in s
        assert 1 not in s and 6 not in s and 11 not in s

    def test_cardinality(self):
        assert IntervalSet([(2, 5), (10, 10)]).cardinality() == 5

    @given(runs, st.integers(0, 63))
    def test_contains_matches_model(self, rs, x):
        s = IntervalSet(rs)
        assert (x in s) == (x in model(s))


class TestBooleanOps:
    @given(runs, runs)
    def test_union_model(self, a, b):
        sa, sb = IntervalSet(a), IntervalSet(b)
        assert model(sa | sb) == model(sa) | model(sb)

    @given(runs, runs)
    def test_intersection_model(self, a, b):
        sa, sb = IntervalSet(a), IntervalSet(b)
        assert model(sa & sb) == model(sa) & model(sb)

    @given(runs, runs)
    def test_difference_model(self, a, b):
        sa, sb = IntervalSet(a), IntervalSet(b)
        assert model(sa - sb) == model(sa) - model(sb)

    @given(runs, runs)
    def test_symmetric_difference_model(self, a, b):
        sa, sb = IntervalSet(a), IntervalSet(b)
        assert model(sa ^ sb) == model(sa) ^ model(sb)

    @given(runs)
    def test_complement_model(self, a):
        s = IntervalSet(a)
        assert model(s.complement(63)) == set(range(64)) - model(s)

    @given(runs, runs)
    def test_overlaps_model(self, a, b):
        sa, sb = IntervalSet(a), IntervalSet(b)
        assert sa.overlaps(sb) == bool(model(sa) & model(sb))

    @given(runs, runs)
    def test_contains_set_model(self, a, b):
        sa, sb = IntervalSet(a), IntervalSet(b)
        assert sa.contains_set(sb) == (model(sb) <= model(sa))

    def test_equality_and_hash(self):
        assert IntervalSet([(0, 1), (2, 3)]) == IntervalSet([(0, 3)])
        assert hash(IntervalSet([(0, 3)])) == hash(IntervalSet([(0, 1), (2, 3)]))


class TestElementConversions:
    def test_elements_to_intervals_coalesces(self, grid8):
        box = grid8.whole_space()
        elements = [Element.of(z, grid8) for z in decompose_box(grid8, box)]
        assert elements_to_intervals(elements).runs == ((0, 63),)

    def test_interval_to_elements_tiles_exactly(self, grid8):
        for lo in range(0, 64, 7):
            for hi in range(lo, 64, 5):
                elements = interval_to_elements(lo, hi, grid8)
                covered = []
                for e in elements:
                    covered.extend(range(e.zlo, e.zhi + 1))
                assert covered == list(range(lo, hi + 1)), (lo, hi)

    def test_interval_elements_are_dyadic_and_sorted(self, grid8):
        elements = interval_to_elements(3, 37, grid8)
        assert [e.zlo for e in elements] == sorted(e.zlo for e in elements)
        for e in elements:
            size = e.zhi - e.zlo + 1
            assert size & (size - 1) == 0
            assert e.zlo % size == 0

    def test_interval_to_elements_is_compact(self, grid8):
        # At most 2*total_bits elements per interval.
        for lo in range(64):
            for hi in range(lo, 64):
                n = len(interval_to_elements(lo, hi, grid8))
                assert n <= 2 * grid8.total_bits

    def test_rejects_bad_interval(self, grid8):
        with pytest.raises(ValueError):
            interval_to_elements(5, 4, grid8)
        with pytest.raises(ValueError):
            interval_to_elements(0, 64, grid8)

    def test_roundtrip_box_decomposition(self, grid8):
        box = Box(((1, 6), (2, 5)))
        elements = [Element.of(z, grid8) for z in decompose_box(grid8, box)]
        intervals = elements_to_intervals(elements)
        back = intervals_to_elements(intervals, grid8)
        assert elements_to_intervals(back) == intervals
        # Canonical form never has more elements than the original.
        assert len(back) <= len(elements)
