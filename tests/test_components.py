"""Tests for connected-component labelling on element sequences."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.components import UnionFind, label_components
from repro.core.decompose import Element, decompose_box
from repro.core.geometry import Box, Grid
from repro.core.intervals import intervals_to_elements, IntervalSet


def elements_of_boxes(grid, boxes):
    out = []
    for box in boxes:
        out.extend(Element.of(z, grid) for z in decompose_box(grid, box))
    return out


def elements_of_pixels(grid, pixels):
    """Disjoint single-pixel elements (canonicalized via intervals)."""
    intervals = IntervalSet(
        (grid.zvalue(p).bits, grid.zvalue(p).bits) for p in pixels
    )
    return intervals_to_elements(intervals, grid)


def flood_fill_count(grid, pixels):
    """Ground truth: 4-connectivity flood fill over the pixel set."""
    pixels = set(pixels)
    seen = set()
    count = 0
    sizes = []
    for start in sorted(pixels):
        if start in seen:
            continue
        count += 1
        stack = [start]
        seen.add(start)
        size = 0
        while stack:
            p = stack.pop()
            size += 1
            for axis in range(grid.ndims):
                for delta in (-1, 1):
                    q = tuple(
                        c + (delta if i == axis else 0)
                        for i, c in enumerate(p)
                    )
                    if q in pixels and q not in seen:
                        seen.add(q)
                        stack.append(q)
        sizes.append(size)
    return count, sorted(sizes)


class TestUnionFind:
    def test_basic(self):
        uf = UnionFind(5)
        assert uf.nsets == 5
        assert uf.union(0, 1)
        assert not uf.union(0, 1)
        assert uf.same(0, 1)
        assert not uf.same(0, 2)
        assert uf.nsets == 4

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert uf.same(0, 3)
        assert uf.nsets == 1


class TestLabelComponents:
    def test_two_separate_squares(self, grid64):
        elements = elements_of_boxes(
            grid64, [Box(((0, 3), (0, 3))), Box(((10, 13), (10, 13)))]
        )
        cc = label_components(grid64, elements)
        assert cc.ncomponents == 2
        assert sorted(cc.areas().values()) == [16, 16]

    def test_touching_squares_merge(self, grid64):
        elements = elements_of_boxes(
            grid64, [Box(((0, 3), (0, 3))), Box(((4, 7), (0, 3)))]
        )
        cc = label_components(grid64, elements)
        assert cc.ncomponents == 1
        assert list(cc.areas().values()) == [32]

    def test_diagonal_contact_does_not_merge(self, grid64):
        # 4-connectivity: corner contact is not adjacency.
        elements = elements_of_pixels(grid64, [(0, 0), (1, 1)])
        cc = label_components(grid64, elements)
        assert cc.ncomponents == 2

    def test_l_shape_single_component(self, grid64):
        elements = elements_of_boxes(
            grid64, [Box(((0, 7), (0, 1))), Box(((0, 1), (2, 7)))]
        )
        cc = label_components(grid64, elements)
        assert cc.ncomponents == 1

    def test_empty_input(self, grid64):
        cc = label_components(grid64, [])
        assert cc.ncomponents == 0
        assert cc.areas() == {}

    def test_rejects_overlapping_elements(self, grid64):
        box = Box(((0, 3), (0, 3)))
        elements = elements_of_boxes(grid64, [box]) * 2
        with pytest.raises(ValueError):
            label_components(grid64, elements)

    def test_component_of_point(self, grid64):
        elements = elements_of_boxes(
            grid64, [Box(((0, 3), (0, 3))), Box(((10, 13), (10, 13)))]
        )
        cc = label_components(grid64, elements)
        a = cc.component_of_point((1, 1))
        b = cc.component_of_point((11, 11))
        assert a is not None and b is not None and a != b
        assert cc.component_of_point((30, 30)) is None

    def test_members(self, grid64):
        elements = elements_of_boxes(grid64, [Box(((0, 3), (0, 3)))])
        cc = label_components(grid64, elements)
        label = cc.component_of_point((0, 0))
        assert sum(e.npixels for e in cc.members(label)) == 16

    def test_labels_dense_and_stable(self, grid64):
        elements = elements_of_boxes(
            grid64,
            [
                Box(((0, 1), (0, 1))),
                Box(((10, 11), (10, 11))),
                Box(((30, 31), (30, 31))),
            ],
        )
        cc = label_components(grid64, elements)
        assert set(cc.labels) == {0, 1, 2}

    def test_ring_is_one_component(self):
        grid = Grid(2, 4)
        ring = [
            (x, y)
            for x in range(2, 10)
            for y in range(2, 10)
            if x in (2, 9) or y in (2, 9)
        ]
        cc = label_components(grid, elements_of_pixels(grid, ring))
        assert cc.ncomponents == 1

    def test_checkerboard_all_isolated(self):
        grid = Grid(2, 3)
        pixels = [(x, y) for x in range(8) for y in range(8) if (x + y) % 2 == 0]
        cc = label_components(grid, elements_of_pixels(grid, pixels))
        assert cc.ncomponents == len(pixels)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10**6))
    def test_matches_flood_fill(self, seed):
        grid = Grid(2, 4)
        rng = random.Random(seed)
        pixels = {
            (rng.randrange(16), rng.randrange(16))
            for _ in range(rng.randint(0, 60))
        }
        cc = label_components(grid, elements_of_pixels(grid, pixels))
        expected_count, expected_sizes = flood_fill_count(grid, pixels)
        assert cc.ncomponents == expected_count
        assert sorted(cc.areas().values()) == expected_sizes

    def test_3d_adjacency(self, grid3d):
        elements = elements_of_boxes(
            grid3d,
            [
                Box(((0, 1), (0, 1), (0, 1))),
                Box(((2, 3), (0, 1), (0, 1))),  # face-adjacent on x
                Box(((8, 9), (8, 9), (8, 9))),  # far away
            ],
        )
        cc = label_components(grid3d, elements)
        assert cc.ncomponents == 2

    def test_mixed_element_sizes(self, grid64):
        # A large element adjacent to single pixels merges with them.
        elements = elements_of_boxes(grid64, [Box(((0, 7), (0, 7)))])
        elements += elements_of_pixels(grid64, [(8, 0), (9, 0)])
        cc = label_components(grid64, elements)
        assert cc.ncomponents == 1
        assert list(cc.areas().values()) == [66]
