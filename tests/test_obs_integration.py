"""Integration tests: traced execution against the Section-5 cost model.

The trace's measured counters must line up with (a) what the query
actually returned, (b) the analytical page bound of Section 5.3.1, and
(c) the histogram estimates the planner prints next to them.
"""

import pytest

from repro import obs
from repro.core.analysis import predicted_range_pages
from repro.core.geometry import Box, Grid
from repro.db import INTEGER, OID, Schema, SpatialDatabase
from repro.db.query import Query
from repro.db.statistics import estimate_pages
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import make_dataset

GRID = Grid(ndims=2, depth=7)


@pytest.fixture()
def db():
    database = SpatialDatabase(GRID, page_capacity=20)
    database.create_table(
        "pts", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    dataset = make_dataset("U", GRID, 2000, seed=11)
    database.insert_many(
        "pts", [(f"p{i}", x, y) for i, (x, y) in enumerate(dataset.points)]
    )
    database.create_index("pts_xy", "pts", ("x", "y"))
    return database


def _window(fraction=4):
    side = GRID.side
    return Box(((0, side // fraction), (0, side // fraction)))


class TestTracedRangeQuery:
    def test_actual_rows_match_relation(self, db):
        out, trace = (
            Query(db, "pts").within(("x", "y"), _window()).run_traced()
        )
        plan_span = trace.find("plan.index-scan") or trace.find(
            "plan.table-scan"
        )
        assert plan_span is not None
        assert plan_span.counters["rows_out"] == len(out)
        assert plan_span.total_counters()["rows_reported"] == len(out)

    def test_results_identical_with_and_without_trace(self, db):
        box = _window()
        plain = Query(db, "pts").within(("x", "y"), box).run()
        traced, _ = Query(db, "pts").within(("x", "y"), box).run_traced()
        assert sorted(plain.rows) == sorted(traced.rows)

    def test_measured_pages_within_section5_bound(self, db):
        """O(vN): the measured page count stays under the analytical
        block-counting bound of Section 5.3.1."""
        box = _window()
        _, trace = Query(db, "pts").within(("x", "y"), box).run_traced()
        zkd = trace.find("zkd.range_query")
        assert zkd is not None
        measured = zkd.counters["pages_accessed"]
        tree = db.catalog.indexes_on("pts")[0].tree
        sizes = [hi - lo + 1 for lo, hi in box.ranges]
        bound = predicted_range_pages(
            sizes, GRID.side, tree.npages, GRID.ndims
        )
        assert measured <= bound

    def test_measured_pages_within_2x_of_histogram_estimate(self, db):
        box = _window()
        _, trace = Query(db, "pts").within(("x", "y"), box).run_traced()
        zkd = trace.find("zkd.range_query")
        measured = zkd.counters["pages_accessed"]
        tree = db.catalog.indexes_on("pts")[0].tree
        estimated = estimate_pages(tree, box)
        assert estimated / 2 <= max(measured, 1) <= max(2 * estimated, 2)

    def test_explain_analyze_text(self, db):
        text = (
            Query(db, "pts").within(("x", "y"), _window()).explain_analyze()
        )
        assert "estimated=" in text and "actual=" in text
        assert "zkd.range_query" in text
        assert "rangesearch" in text

    def test_trace_json_round_trip(self, db):
        _, trace = (
            Query(db, "pts").within(("x", "y"), _window()).run_traced()
        )
        restored = obs.QueryTrace.from_json(trace.to_json())
        assert restored.total_counters() == trace.total_counters()


class TestBufferIsolation:
    def test_stats_reset_between_queries(self):
        """Each range_query reports its own buffer delta, so a query's
        hit rate reflects that query alone (the bench_planner leak:
        hits from query N-1 inflating query N's rate).  The live
        counters accumulate — queries snapshot and diff them instead of
        zeroing, so concurrent sessions never clobber each other."""
        tree = ZkdTree(GRID, page_capacity=10, buffer_frames=4)
        dataset = make_dataset("U", GRID, 800, seed=3)
        tree.insert_many(dataset.points)
        big = Box(((0, GRID.side - 1), (0, GRID.side - 1)))
        tiny = Box(((0, 2), (0, 2)))
        base = tree.buffer.stats()
        first = tree.range_query(big)
        second = tree.range_query(tiny)
        # the tiny query's stats can't still carry the big query's misses
        assert sum(first.buffer_stats.values()) > 0
        total_second = (
            second.buffer_stats["hits"] + second.buffer_stats["misses"]
        )
        assert total_second <= first.buffer_stats["misses"]
        # and the live counters are exactly base + the per-query deltas
        assert tree.buffer.stats()["hits"] == (
            base["hits"]
            + first.buffer_stats["hits"]
            + second.buffer_stats["hits"]
        )
        assert tree.buffer.stats()["misses"] == (
            base["misses"]
            + first.buffer_stats["misses"]
            + second.buffer_stats["misses"]
        )

    def test_hit_rate_is_per_query(self):
        tree = ZkdTree(GRID, page_capacity=10, buffer_frames=64)
        dataset = make_dataset("U", GRID, 800, seed=4)
        tree.insert_many(dataset.points)
        box = Box(((0, 40), (0, 40)))
        cold = tree.range_query(box)
        warm = tree.range_query(box)  # same pages, now resident
        assert warm.buffer_stats["hit_rate"] >= cold.buffer_stats["hit_rate"]
        assert warm.buffer_stats["misses"] <= cold.buffer_stats["misses"]


class TestTracedSpatialJoin:
    def test_join_counters(self):
        import random

        from repro.db import SPATIAL_OBJECT
        from repro.db.relation import Relation
        from repro.db.spatial import overlap_query
        from repro.db.types import SpatialObject

        rng = random.Random(5)

        def objects(name, prefix):
            rel = Relation(
                name, Schema.of(("id@", OID), ("geom", SPATIAL_OBJECT))
            )
            for i in range(12):
                x = rng.randrange(GRID.side - 10)
                y = rng.randrange(GRID.side - 10)
                rel.insert((
                    f"{prefix}{i}",
                    SpatialObject.from_box(
                        f"{prefix}{i}", Box(((x, x + 9), (y, y + 9)))
                    ),
                ))
            return rel

        p, q = objects("P", "p"), objects("Q", "q")
        with obs.trace("join") as trace:
            result = overlap_query(
                p, q, "geom", "id@", grid=GRID, max_depth=4
            )
        sweep = trace.find("spatialjoin.sweep")
        assert sweep is not None
        # the sweep nests under the operator span
        assert trace.find("op.spatial_join").find("spatialjoin.sweep")
        counters = sweep.counters
        assert counters["pairs_emitted"] >= len(result)
        assert counters["r_elements"] > 0 and counters["s_elements"] > 0
        # distinct projection appears downstream of the join
        assert trace.find("op.distinct") is not None
