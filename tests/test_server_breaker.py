"""Circuit breaking and overload control: the state machine on a fake
clock, honest retry-after math, escalation, and the end-to-end path
where a failing dispatch backend trips the breaker, sheds with the
typed ``breaker`` reason, and surfaces in ``/stats``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.geometry import Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.faults import FaultInjector
from repro.server import QueryService
from repro.server.breaker import (
    BreakerOpen,
    CircuitBreaker,
    HealthWindow,
    OverloadController,
)
from repro.shard.executor import ResiliencePolicy

GRID = Grid(ndims=2, depth=6)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _build_db(npoints=300):
    from repro.workloads.datasets import make_dataset

    db = SpatialDatabase(GRID, page_capacity=16, concurrency=True)
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    points = make_dataset("C", GRID, npoints, seed=0).points
    db.insert_many(
        "points", [(f"p{i}", x, y) for i, (x, y) in enumerate(points)]
    )
    db.create_index("points_xy", "points", ("x", "y"))
    return db


# ----------------------------------------------------------------------
# HealthWindow
# ----------------------------------------------------------------------


def test_health_window_rolls_and_scores():
    window = HealthWindow(size=4)
    assert window.error_rate == 0.0
    assert window.mean_latency == 0.0
    for latency in (0.1, 0.2, 0.3, 0.4):
        window.record(True, latency)
    assert window.samples == 4
    assert window.mean_latency == pytest.approx(0.25)
    window.record(False, 1.0)  # rolls the 0.1 sample out
    assert window.samples == 4
    assert window.error_rate == pytest.approx(0.25)
    assert window.mean_latency == pytest.approx((0.2 + 0.3 + 0.4 + 1.0) / 4)
    window.reset()
    assert window.samples == 0


# ----------------------------------------------------------------------
# CircuitBreaker state machine
# ----------------------------------------------------------------------


def test_breaker_trips_probes_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(
        "idx",
        min_samples=4,
        failure_threshold=0.5,
        reset_timeout=1.0,
        half_open_probes=2,
        clock=clock,
    )
    assert breaker.state == "closed"
    # Below min_samples nothing trips, however bad the rate.
    breaker.record(False, 0.1)
    breaker.record(False, 0.1)
    assert breaker.state == "closed"
    breaker.record(True, 0.1)
    breaker.record(False, 0.1)  # 3/4 failures >= 0.5 at min_samples
    assert breaker.state == "open"
    assert breaker.counters_["breaker.opened"] == 1
    assert not breaker.allow()  # timer not lapsed
    clock.now = 1.5
    assert breaker.allow()  # flips to half_open, probe 1
    assert breaker.state == "half_open"
    assert breaker.allow()  # probe 2
    assert not breaker.allow()  # probes bounded
    breaker.record(True, 0.05)  # one probe success closes
    assert breaker.state == "closed"
    assert breaker.consecutive_opens == 0
    assert breaker.counters_["breaker.closed"] == 1
    assert breaker.counters_["breaker.probes"] == 2


def test_breaker_reopens_on_probe_failure():
    clock = FakeClock()
    breaker = CircuitBreaker(
        "idx", min_samples=2, reset_timeout=1.0, clock=clock
    )
    breaker.record(False, 0.1)
    breaker.record(False, 0.1)
    assert breaker.state == "open"
    clock.now = 1.1
    assert breaker.allow()
    breaker.record(False, 0.1)  # probe fails: straight back to open
    assert breaker.state == "open"
    assert breaker.consecutive_opens == 2
    assert breaker.counters_["breaker.reopened"] == 1
    assert not breaker.allow()  # timer restarted at the re-open


# ----------------------------------------------------------------------
# OverloadController
# ----------------------------------------------------------------------


def test_controller_sheds_with_honest_retry_after():
    clock = FakeClock()
    policy = ResiliencePolicy(
        max_retries=2, backoff_base=0.05, backoff_factor=2.0, timeout=1.0
    )
    ctl = OverloadController(
        policy=policy,
        max_inflight=4,
        min_samples=2,
        reset_timeout=10.0,
        clock=clock,
        max_retry_after=5.0,
    )
    ctl.check("idx")  # closed: passes
    # 0.5s mean latency, then trip it.
    ctl.record("idx", False, 0.5)
    ctl.record("idx", False, 0.5)
    with pytest.raises(BreakerOpen) as excinfo:
        ctl.check("idx", queue_depth=7)
    assert excinfo.value.reason == "breaker"
    # Freshly tripped: nothing serves before reset_timeout, so the
    # hint is the full cooldown — the drain-estimate cap must not
    # shrink it below the time the client would provably waste.
    assert excinfo.value.retry_after == pytest.approx(10.0)
    assert ctl.stats["breaker.shed"] == 1
    # Partway through the cooldown the hint tracks what remains.
    clock.now += 4.0
    with pytest.raises(BreakerOpen) as excinfo:
        ctl.check("idx", queue_depth=0)
    assert excinfo.value.retry_after == pytest.approx(6.0)
    # With measured latency in a live window the hint scales with the
    # backlog: (depth+1) * worst_mean / max_inflight.
    ctl.record("other", True, 2.0)
    assert ctl.retry_after(queue_depth=7) == pytest.approx(
        min(8 * 2.0 / 4, 5.0)
    )
    assert ctl.retry_after(queue_depth=0) >= policy.backoff(1)
    counters = ctl.counters()
    assert counters["breaker.state.idx"] == 1
    assert counters["breaker.state.other"] == 0
    assert counters["breaker.open_now"] == 1
    assert ctl.open_now() == ["idx"]


def test_controller_escalates_repeated_trips():
    clock = FakeClock()
    calls = []
    ctl = OverloadController(
        min_samples=2,
        reset_timeout=1.0,
        escalate_after=2,
        escalate=lambda key, opens: calls.append((key, opens)),
        clock=clock,
    )
    ctl.record("idx", False, 0.1)
    ctl.record("idx", False, 0.1)  # first open: below escalate_after
    assert calls == []
    clock.now = 1.1
    assert ctl.breaker("idx").allow()
    ctl.record("idx", False, 0.1)  # probe fails -> second open
    assert calls == [("idx", 2)]
    clock.now = 2.2
    assert ctl.breaker("idx").allow()
    ctl.record("idx", False, 0.1)  # third open
    assert calls == [("idx", 2), ("idx", 3)]
    assert ctl.stats["breaker.escalations"] == 2
    # A broken escalation callback is swallowed, not fatal.
    ctl2 = OverloadController(
        min_samples=1,
        escalate_after=1,
        escalate=lambda key, opens: 1 / 0,
        clock=clock,
    )
    ctl2.record("idx", False, 0.1)
    assert ctl2.breaker("idx").state == "open"


# ----------------------------------------------------------------------
# End to end: a sick dispatch backend
# ----------------------------------------------------------------------


def test_dispatch_faults_trip_breaker_and_shed_typed():
    async def run():
        db = _build_db()
        faults = FaultInjector(seed=3)
        # Every dispatch hit fails: the backend is definitively sick.
        faults.rule("server.dispatch", "error", at=1, times=-1)
        faults.verify()
        service = QueryService(
            db,
            request_timeout=5.0,
            faults=faults,
            breaker_options={
                "min_samples": 2,
                "failure_threshold": 0.5,
                "reset_timeout": 60.0,
            },
        )
        client = service.connect()
        try:
            request = {
                "op": "range",
                "table": "points",
                "cols": ["x", "y"],
                "box": [[0, 20], [0, 20]],
            }
            # First failures surface as internal errors and feed the
            # health window...
            for _ in range(2):
                response = await service.handle_request(client, request)
                assert response["error"]["type"] == "internal"
            # ...then the circuit opens and requests shed instantly
            # with the typed reason (no worker time spent).
            response = await service.handle_request(client, request)
            assert response.get("ok") is False
            assert response["rejected"]["reason"] == "breaker"
            assert response["rejected"]["retry_after"] > 0.0
            stats = service.stats_snapshot()
            assert stats["breaker"]["breaker.opened"] == 1
            assert stats["breaker"]["breaker.state.points_xy"] == 1
            assert stats["breaker"]["breaker.shed"] == 1
            assert service.admission.inflight == 0
            # The SERVER trace section carries the same counters.
            rendered = service.trace_section().root
            assert rendered.counters.get("breaker.opened") == 1
        finally:
            service.disconnect(client)
            service.close()

    asyncio.run(run())


def test_breaker_recovery_after_backend_heals():
    async def run():
        db = _build_db()
        faults = FaultInjector(seed=5)
        faults.rule("server.dispatch", "error", at=1, times=2)
        clock = FakeClock()
        service = QueryService(
            db,
            request_timeout=5.0,
            faults=faults,
            clock=clock,
            breaker_options={
                "min_samples": 2,
                "reset_timeout": 1.0,
            },
        )
        client = service.connect()
        try:
            request = {
                "op": "range",
                "table": "points",
                "cols": ["x", "y"],
                "box": [[0, 20], [0, 20]],
            }
            for _ in range(2):
                response = await service.handle_request(client, request)
                assert response["error"]["type"] == "internal"
            assert service.overload.breaker("points_xy").state == "open"
            # Reset timer lapses on the fake clock; the rule is spent,
            # so the probe succeeds and the circuit closes.
            clock.now = 1.5
            response = await service.handle_request(client, request)
            assert response.get("ok") is True
            assert service.overload.breaker("points_xy").state == "closed"
            stats = service.stats_snapshot()
            assert stats["breaker"]["breaker.closed"] == 1
            assert stats["breaker"]["breaker.open_now"] == 0
        finally:
            service.disconnect(client)
            service.close()

    asyncio.run(run())


def test_breaker_disabled_stays_out_of_the_path():
    """breaker=False keeps the whole subsystem out of the path (and
    out of /stats)."""

    async def run():
        db = _build_db(npoints=50)
        service = QueryService(db, breaker=False)
        client = service.connect()
        try:
            response = await service.handle_request(
                client,
                {
                    "op": "range",
                    "table": "points",
                    "cols": ["x", "y"],
                    "box": [[0, 20], [0, 20]],
                },
            )
            assert response.get("ok") is True
            assert service.overload is None
            assert "breaker" not in service.stats_snapshot()
        finally:
            service.disconnect(client)
            service.close()

    asyncio.run(run())
