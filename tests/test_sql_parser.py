"""Tokenizer and parser unit tests: grammar coverage, typed errors
with source positions, and canonical rendering."""

import pytest

from repro.sql import ParseError, parse, render, tokenize
from repro.sql import ast as A


class TestLexer:
    def test_kinds(self):
        toks = tokenize("SELECT id@, x FROM t WHERE x >= 1.5 AND s = 'a''b'")
        kinds = [t.kind for t in toks]
        assert kinds[0] == "kw" and toks[0].text == "SELECT"
        assert ("ident", "id@") == (toks[1].kind, toks[1].text)
        assert any(t.kind == "float" and t.text == "1.5" for t in toks)
        assert any(t.kind == "string" and t.text == "a'b" for t in toks)
        assert kinds[-1] == "eof"

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].is_kw("SELECT")
        assert tokenize("SeLeCt")[0].is_kw("SELECT")

    def test_positions_point_into_source(self):
        source = "SELECT  xyz"
        tok = tokenize(source)[1]
        assert source[tok.pos:tok.pos + 3] == "xyz"

    def test_unknown_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("SELECT $ FROM t")
        assert info.value.pos == 7

    def test_non_string_input(self):
        with pytest.raises(ParseError):
            tokenize(42)

    def test_float_needs_digit_after_dot(self):
        # "1." lexes as the integer 1 then the "." operator.
        toks = tokenize("1.")
        assert (toks[0].kind, toks[1].text) == ("int", ".")


class TestParser:
    def test_minimal_select(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.select.columns is None
        assert stmt.select.table == "t"
        assert stmt.mode is None

    def test_full_clause_set(self):
        stmt = parse(
            "SELECT DISTINCT a, b FROM t "
            "WHERE BOX(0, 4, 0, 4) CONTAINS POINT(x, y) "
            "AND a BETWEEN 1 AND 2 ORDER BY a, b DESC LIMIT 7"
        )
        select = stmt.select
        assert select.distinct
        assert [c.name for c in select.columns] == ["a", "b"]
        assert isinstance(select.where, A.And)
        assert select.order.columns[0].name == "a"
        assert select.order.descending
        assert select.limit == 7

    def test_join_on_overlaps(self):
        stmt = parse(
            "SELECT * FROM p JOIN q ON OVERLAPS(p.geom, q.geom)"
        )
        join = stmt.select.join
        assert join.table == "q"
        assert join.on.left.table == "p"
        assert join.on.right.name == "geom"

    def test_explain_modes(self):
        assert parse("EXPLAIN SELECT * FROM t").mode == "explain"
        assert parse("EXPLAIN ANALYZE SELECT * FROM t").mode == "analyze"

    def test_precedence_or_and_not(self):
        stmt = parse("SELECT * FROM t WHERE a = 1 OR NOT b = 2 AND c = 3")
        where = stmt.select.where
        assert isinstance(where, A.Or)
        assert isinstance(where.right, A.And)
        assert isinstance(where.right.left, A.Not)

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT * FROM t WHERE a + b * 2 = 7")
        cmp = stmt.select.where
        assert isinstance(cmp.left, A.Arith) and cmp.left.op == "+"
        assert isinstance(cmp.left.right, A.Arith)
        assert cmp.left.right.op == "*"

    def test_box_bounds_pair_up(self):
        stmt = parse(
            "SELECT * FROM t WHERE BOX(0, 4, 2, 6) CONTAINS POINT(x, y)"
        )
        box = stmt.select.where.box
        assert box.ranges == ((0, 4), (2, 6))

    def test_box_rejects_inverted_range(self):
        with pytest.raises(ParseError, match="lo"):
            parse("SELECT * FROM t WHERE BOX(4, 0) CONTAINS POINT(x)")

    def test_box_rejects_odd_bounds(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t WHERE BOX(0, 4, 2) CONTAINS POINT(x)")

    def test_negative_bounds_and_literals(self):
        stmt = parse("SELECT * FROM t WHERE x > -3")
        assert isinstance(stmt.select.where.right, A.Neg)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError, match="unexpected"):
            parse("SELECT * FROM t garbage")

    def test_error_carries_position(self):
        source = "SELECT a FROM"
        with pytest.raises(ParseError) as info:
            parse(source)
        line, col = info.value.line_col(source)
        assert (line, col) == (1, 14)

    def test_annotate_draws_caret(self):
        source = "SELECT a FROM t WHERE"
        with pytest.raises(ParseError) as info:
            parse(source)
        annotated = info.value.annotate(source)
        lines = annotated.splitlines()
        assert lines[0] == source
        assert lines[1].endswith("^")
        assert "parse error at line 1" in lines[2]

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t LIMIT 2.5")


class TestRender:
    CASES = [
        "SELECT * FROM t",
        "SELECT DISTINCT a, b FROM t ORDER BY b DESC LIMIT 3",
        "SELECT a FROM t WHERE BOX(0, 4, 0, 4) CONTAINS POINT(x, y) "
        "AND a BETWEEN 1 AND 2",
        "SELECT * FROM p JOIN q ON OVERLAPS(p.geom, q.geom) "
        "WHERE p.w > 1 AND q.w > 2",
        "SELECT a FROM t WHERE (a = 1 OR b = 2) AND NOT c = 3",
        "EXPLAIN ANALYZE SELECT a FROM t WHERE a + b * 2 > -1.5",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_parse_render_fixpoint(self, source):
        stmt = parse(source)
        text = render(stmt.select)
        if stmt.mode == "explain":
            text = "EXPLAIN " + text
        elif stmt.mode == "analyze":
            text = "EXPLAIN ANALYZE " + text
        assert parse(text) == stmt
        reparsed = parse(text)
        again = render(reparsed.select)
        assert again == render(stmt.select)

    def test_render_drops_redundant_parens(self):
        stmt = parse("SELECT * FROM t WHERE ((a = 1)) AND (b = 2)")
        assert render(stmt.select) == (
            "SELECT * FROM t WHERE a = 1 AND b = 2"
        )

    def test_render_keeps_needed_parens(self):
        stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert "(" in render(stmt.select)
        assert parse(render(stmt.select)) == stmt
