"""Failure injection at the storage boundary.

The structures above the page store must surface I/O failures cleanly
(no silent corruption, no swallowed errors) and keep working once the
fault clears — reads are pure, so a failed query is safely retryable.
"""


import pytest

from repro.core.geometry import Box
from repro.core.rangesearch import brute_force_search
from repro.storage.page import Page, PageStore
from repro.storage.buffer import BufferManager
from repro.storage.prefix_btree import ZkdTree

from conftest import random_box, random_points


class FlakyStore(PageStore):
    """A PageStore that fails reads/writes on command."""

    def __init__(self, page_capacity: int) -> None:
        super().__init__(page_capacity)
        self.fail_reads_after: int = -1  # -1 = never
        self.fail_writes_after: int = -1
        self._read_calls = 0
        self._write_calls = 0

    def read(self, page_id: int) -> Page:
        self._read_calls += 1
        if 0 <= self.fail_reads_after < self._read_calls:
            raise IOError(f"injected read failure on page {page_id}")
        return super().read(page_id)

    def write(self, page: Page) -> None:
        self._write_calls += 1
        if 0 <= self.fail_writes_after < self._write_calls:
            raise IOError(f"injected write failure on page {page.page_id}")
        super().write(page)


def flaky_tree(grid, points, capacity=8, frames=2):
    store = FlakyStore(capacity)
    tree = ZkdTree(grid, page_capacity=capacity, buffer_frames=frames, store=store)
    tree.insert_many(points)
    return store, tree


class TestReadFailures:
    def test_query_surfaces_io_error(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        store, tree = flaky_tree(grid64, points)
        box = Box(((0, 40), (0, 40)))
        tree.range_query(box)  # warms nothing (tiny buffer)
        store.fail_reads_after = store._read_calls + 3
        with pytest.raises(IOError):
            # Enough queries to exceed the failure threshold.
            for _ in range(20):
                tree.range_query(box)

    def test_query_retry_succeeds_after_fault_clears(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        store, tree = flaky_tree(grid64, points)
        box = random_box(rng, grid64)
        expected = brute_force_search(grid64, points, box)
        store.fail_reads_after = store._read_calls  # fail immediately
        with pytest.raises(IOError):
            tree.range_query(box)
        store.fail_reads_after = -1  # fault clears
        result = tree.range_query(box)
        assert list(result.matches) == expected
        tree.tree.check_invariants()

    def test_membership_after_failed_query(self, grid64, rng):
        points = random_points(rng, grid64, 200)
        store, tree = flaky_tree(grid64, points + [(1, 1)])
        store.fail_reads_after = store._read_calls
        with pytest.raises(IOError):
            tree.range_query(grid64.whole_space())
        store.fail_reads_after = -1
        assert (1, 1) in tree


class TestWriteFailures:
    def test_insert_surfaces_write_back_error(self, grid64, rng):
        # With a tiny buffer, inserts force dirty evictions (writes);
        # an injected write failure must escape, not vanish.
        points = random_points(rng, grid64, 50)
        store, tree = flaky_tree(grid64, points, frames=2)
        store.fail_writes_after = store._write_calls
        with pytest.raises(IOError):
            for point in random_points(rng, grid64, 200):
                tree.insert(point)

    def test_flush_surfaces_write_error(self, grid64, rng):
        points = random_points(rng, grid64, 100)
        store, tree = flaky_tree(grid64, points, frames=16)
        # Dirty pages are sitting in the buffer; fail the flush.
        store.fail_writes_after = store._write_calls
        tree.insert((0, 0))
        with pytest.raises(IOError):
            tree.buffer.flush()


class TestDiskOverflowThroughTree:
    def test_oversized_payload_rejected_cleanly(self, tmp_path, grid64):
        from repro.storage.btree import BPlusTree
        from repro.storage.diskstore import FilePageStore, PageOverflowError

        store = FilePageStore(
            str(tmp_path / "tiny.zkd"), page_capacity=8, page_size=256
        )
        tree = BPlusTree(store, BufferManager(store, 2), total_bits=16)
        # Each record is small enough individually; a full page of them
        # exceeds the 256-byte page and must fail loudly at write-back.
        with pytest.raises(PageOverflowError):
            for i in range(64):
                tree.insert(i, "payload-" * 8 + str(i))
                tree.buffer.flush()
        store.close()
