"""Unit tests for :mod:`repro.shard.partition`.

The satellite contract up front: a z value equal to a cut point must
route to exactly one shard, and the degenerate configurations (one
shard, shards that own no data, heavily skewed samples) must behave.
"""

import random

import pytest

from repro.core.geometry import Grid
from repro.db.statistics import ZHistogram
from repro.shard.partition import ZRangePartitioner
from repro.storage.prefix_btree import ZkdTree

from conftest import random_points


# ----------------------------------------------------------------------
# Routing and the cut-point edge case
# ----------------------------------------------------------------------


def test_route_cut_point_goes_to_exactly_one_shard():
    part = ZRangePartitioner(4, (4, 8))
    # A z equal to a cut belongs to the shard *starting* there.
    assert part.route(4) == 1
    assert part.route(8) == 2
    # And the pixel just below still belongs to the previous shard.
    assert part.route(3) == 0
    assert part.route(7) == 1


def test_route_covers_whole_space_exactly_once():
    part = ZRangePartitioner(6, (10, 17, 40))
    counts = [0] * part.nshards
    for z in range(64):
        counts[part.route(z)] += 1
    # Every z routed once; shard sizes match the owned intervals.
    assert sum(counts) == 64
    assert counts == [hi - lo + 1 for lo, hi in part.intervals()]


def test_route_rejects_out_of_space_codes():
    part = ZRangePartitioner(4, (8,))
    with pytest.raises(ValueError):
        part.route(-1)
    with pytest.raises(ValueError):
        part.route(16)
    with pytest.raises(ValueError):
        part.route_many([0, 16])


def test_single_shard_degenerate():
    part = ZRangePartitioner(8)
    assert part.nshards == 1
    assert part.intervals() == [(0, 255)]
    assert part.route(0) == 0
    assert part.route(255) == 0
    assert part.prune([(3, 9), (100, 200)]) == [0]
    equi = ZRangePartitioner.equi_width(8, 1)
    assert equi.cuts == ()


def test_empty_shard_owns_interval_but_gets_no_codes():
    # Cuts at 1 and 2: shard 1 owns the single pixel [1, 1].
    part = ZRangePartitioner(4, (1, 2))
    assert part.interval(1) == (1, 1)
    assert part.route(1) == 1
    # A query interval missing pixel 1 never dispatches shard 1.
    assert part.prune([(2, 9)]) == [2]
    assert part.prune([(0, 0), (5, 6)]) == [0, 2]


def test_route_many_matches_route():
    part = ZRangePartitioner(10, (100, 500, 900))
    rng = random.Random(7)
    codes = [rng.randrange(1 << 10) for _ in range(200)]
    assert part.route_many(codes) == [part.route(z) for z in codes]


# ----------------------------------------------------------------------
# Construction and validation
# ----------------------------------------------------------------------


def test_constructor_validates_cuts():
    with pytest.raises(ValueError):
        ZRangePartitioner(4, (0,))  # cut at 0 leaves an empty shard 0
    with pytest.raises(ValueError):
        ZRangePartitioner(4, (16,))  # cut at end of space
    with pytest.raises(ValueError):
        ZRangePartitioner(4, (5, 5))  # not strictly increasing
    with pytest.raises(ValueError):
        ZRangePartitioner(4, (8, 4))  # decreasing
    with pytest.raises(ValueError):
        ZRangePartitioner(-1)


def test_equi_width_cuts_are_aligned_element_boundaries():
    # Power-of-two shard counts cut exactly at depth-log2(n) boundaries.
    part = ZRangePartitioner.equi_width(12, 4)
    assert part.cuts == (1024, 2048, 3072)
    # Non-power-of-two counts stay distinct and aligned.
    part3 = ZRangePartitioner.equi_width(12, 3)
    align = 1 << (12 - 2)
    assert len(part3.cuts) == 2
    for cut in part3.cuts:
        assert cut % align == 0


@pytest.mark.parametrize("nshards", [1, 2, 3, 4, 5, 7, 8, 16])
def test_equi_width_always_yields_requested_shards(nshards):
    part = ZRangePartitioner.equi_width(16, nshards)
    assert part.nshards == nshards
    # Intervals tile the space.
    intervals = part.intervals()
    assert intervals[0][0] == 0
    assert intervals[-1][1] == (1 << 16) - 1
    for (_, hi), (lo, _) in zip(intervals, intervals[1:]):
        assert lo == hi + 1


def test_equi_width_validates():
    with pytest.raises(ValueError):
        ZRangePartitioner.equi_width(8, 0)
    with pytest.raises(ValueError):
        ZRangePartitioner.equi_width(2, 5)  # more shards than pixels


def test_from_codes_balances_and_collapses_duplicates():
    rng = random.Random(11)
    codes = [rng.randrange(1 << 12) for _ in range(1000)]
    part = ZRangePartitioner.from_codes(codes, 12, 4)
    sizes = [0] * part.nshards
    for z in codes:
        sizes[part.route(z)] += 1
    assert part.nshards == 4
    assert max(sizes) < 2 * min(sizes)  # roughly balanced
    # Massive skew: every code identical -> quantiles collapse.
    skewed = ZRangePartitioner.from_codes([42] * 100, 12, 4)
    assert skewed.nshards <= 2
    # Empty sample falls back to equi-width.
    empty = ZRangePartitioner.from_codes([], 12, 4)
    assert empty.cuts == ZRangePartitioner.equi_width(12, 4).cuts


def test_from_histogram_balances_skewed_tree(grid64):
    rng = random.Random(13)
    # Cluster everything in one corner: equi-width would starve 3 of
    # 4 shards; the histogram cuts follow the data.
    pts = [
        (rng.randrange(16), rng.randrange(16))
        for _ in range(400)
    ]
    tree = ZkdTree(grid64)
    tree.bulk_load(pts)
    part = ZRangePartitioner.from_histogram(ZHistogram.of_tree(tree), 4)
    sizes = [0] * part.nshards
    for p in set(pts):
        sizes[part.route(grid64.zvalue(p).bits)] += 1
    assert part.nshards >= 2
    assert min(sizes) > 0


def test_histogram_balanced_entry_point(grid64, rng):
    pts = random_points(rng, grid64, 300)
    tree = ZkdTree(grid64)
    tree.bulk_load(pts)
    part = ZRangePartitioner.histogram_balanced(tree, 3)
    assert part.total_bits == grid64.total_bits
    assert 1 <= part.nshards <= 3


def test_from_histogram_empty_tree_falls_back(grid64):
    tree = ZkdTree(grid64)
    part = ZRangePartitioner.from_histogram(ZHistogram.of_tree(tree), 4)
    assert part.cuts == ZRangePartitioner.equi_width(
        grid64.total_bits, 4
    ).cuts


# ----------------------------------------------------------------------
# Pruning
# ----------------------------------------------------------------------


def _brute_force_prune(part, intervals):
    hit = []
    for shard_id, (lo, hi) in enumerate(part.intervals()):
        if any(zlo <= hi and zhi >= lo for zlo, zhi in intervals):
            hit.append(shard_id)
    return hit


def test_prune_matches_brute_force_randomized():
    rng = random.Random(17)
    for _ in range(100):
        total_bits = rng.randrange(4, 14)
        nshards = rng.randrange(1, 9)
        part = ZRangePartitioner.equi_width(total_bits, nshards)
        space = 1 << total_bits
        intervals = []
        cursor = 0
        while cursor < space and len(intervals) < 6:
            lo = cursor + rng.randrange(0, max(1, space // 6))
            if lo >= space:
                break
            hi = min(space - 1, lo + rng.randrange(0, space // 4 + 1))
            intervals.append((lo, hi))
            cursor = hi + 2
        assert part.prune(intervals) == _brute_force_prune(
            part, intervals
        )


def test_prune_empty_and_full():
    part = ZRangePartitioner.equi_width(8, 4)
    assert part.prune([]) == []
    assert part.prune([(0, 255)]) == [0, 1, 2, 3]
    # One interval entirely inside one shard.
    assert part.prune([(70, 80)]) == [1]


def test_interval_validation():
    part = ZRangePartitioner.equi_width(8, 2)
    with pytest.raises(IndexError):
        part.interval(2)
    with pytest.raises(IndexError):
        part.interval(-1)
