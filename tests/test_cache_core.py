"""Unit tests for the z-prefix semantic result cache.

Covers the trie's containment-as-prefix lookups, entry validity over
the epoch interval, admission/eviction budgets, the dirty-log commit
protocol, and the per-store :class:`~repro.core.fastz.DecomposeCache`
(the regression for the process-global ``decompose_box`` LRU).
"""

from __future__ import annotations

import pickle
import random

from repro.cache import QueryResultCache, ZPrefixTrie, cached_range_matches
from repro.cache.result_cache import CacheEntry
from repro.core import fastz
from repro.core.decompose import Element
from repro.core.fastz import DecomposeCache, default_decompose_cache
from repro.core.geometry import Box, Grid
from repro.core.zvalue import ZValue
from repro.storage.prefix_btree import ZkdTree

GRID = Grid(ndims=2, depth=5)
SIDE = GRID.side


def _random_box(rng: random.Random) -> Box:
    x0, x1 = sorted(rng.randrange(SIDE) for _ in range(2))
    y0, y1 = sorted(rng.randrange(SIDE) for _ in range(2))
    return Box(((x0, x1), (y0, y1)))


def _element(bits: str) -> Element:
    return Element.of(ZValue.from_string(bits), GRID)


class TestZPrefixTrie:
    def test_prefix_is_containment(self):
        trie = ZPrefixTrie()
        trie.insert(ZValue.from_string("01"), "coarse")
        # A deeper element with prefix 01 is contained -> covered.
        assert trie.covering(ZValue.from_string("0110"), lambda e: True) == "coarse"
        assert trie.covering(ZValue.from_string("01"), lambda e: True) == "coarse"
        # Sibling prefix is not contained.
        assert trie.covering(ZValue.from_string("0010"), lambda e: True) is None
        # A *shorter* z-value (larger region) is not covered by a
        # longer one: containment is one-directional.
        assert trie.covering(ZValue.from_string("0"), lambda e: True) is None

    def test_accept_filters_entries(self):
        trie = ZPrefixTrie()
        trie.insert(ZValue.from_string("01"), "dead")
        trie.insert(ZValue.from_string("01"), "live")
        got = trie.covering(ZValue.from_string("0111"), lambda e: e != "dead")
        assert got == "live"
        assert trie.covering(ZValue.from_string("0111"), lambda e: False) is None

    def test_shallowest_entry_wins(self):
        trie = ZPrefixTrie()
        trie.insert(ZValue.from_string("0"), "outer")
        trie.insert(ZValue.from_string("0101"), "inner")
        assert trie.covering(ZValue.from_string("010111"), lambda e: True) == "outer"

    def test_remove_prunes_chains(self):
        trie = ZPrefixTrie()
        z = ZValue.from_string("010011")
        trie.insert(z, "x")
        assert len(trie) == 1
        trie.remove(z, "x")
        assert len(trie) == 0
        assert not trie._root.children  # fully pruned
        trie.remove(z, "x")  # absent pair is a no-op
        assert len(trie) == 0

    def test_along_code_walks_containing_regions(self):
        trie = ZPrefixTrie()
        trie.insert(ZValue.from_string("01"), "a")
        trie.insert(ZValue.from_string("0110"), "b")
        trie.insert(ZValue.from_string("00"), "c")
        total = GRID.total_bits
        lo, hi = ZValue.from_string("0110").interval(total)
        inside = list(trie.along_code(lo, total))
        assert inside == ["a", "b"]
        lo2, _ = ZValue.from_string("0010").interval(total)
        assert list(trie.along_code(lo2, total)) == ["c"]


class TestCacheEntry:
    def _entry(self, build_epoch=3):
        # (0, 24) and (1, 25) both interleave into element 0101's
        # z-interval [320, 383] on the depth-5 grid.
        element = _element("0101")
        run = ((0, 24), (1, 25))
        run_z = tuple(GRID.zvalue(p).bits for p in run)
        return CacheEntry(
            Box(((0, 1), (24, 25))), (element,), run, run_z, build_epoch
        )

    def test_valid_interval(self):
        entry = self._entry(build_epoch=3)
        assert not entry.valid_at(2)
        assert entry.valid_at(3)
        assert entry.valid_at(99)
        entry.dead_epoch = 7
        assert entry.valid_at(3) and entry.valid_at(6)
        assert not entry.valid_at(7) and not entry.valid_at(8)

    def test_contains_code_and_slice(self):
        entry = self._entry()
        element = entry.elements[0]
        assert entry.contains_code(element.zlo)
        assert entry.contains_code(element.zhi)
        assert not entry.contains_code(element.zhi + 1)
        assert entry.slice(element.zlo, element.zhi) == entry.run
        assert entry.slice(entry.run_z[1], entry.run_z[1]) == (entry.run[1],)


class TestAdmissionAndEviction:
    def test_budget_points_evicts_lru(self):
        cache = QueryResultCache(GRID, budget_points=4, max_entries=10)
        run1 = ((0, 0), (1, 1), (0, 1))
        def runz(run):
            return tuple(GRID.zvalue(p).bits for p in run)
        e1 = cache.admit(
            Box(((0, 1), (0, 1))), (_element("00"),), run1, runz(run1), 0
        )
        assert e1 is not None and cache.points_cached == 3
        run2 = ((8, 8), (9, 9))
        e2 = cache.admit(
            Box(((8, 9), (8, 9))), (_element("11"),), run2, runz(run2), 0
        )
        assert e2 is not None
        # 5 > 4: the older entry was evicted.
        assert cache.points_cached == 2
        assert cache.entries() == [e2]
        assert cache.stats["cache.evict"] == 1

    def test_oversized_admissions_declined(self):
        cache = QueryResultCache(GRID, budget_points=2)
        run = ((0, 0), (1, 1), (2, 2))
        runz = tuple(GRID.zvalue(p).bits for p in run)
        assert (
            cache.admit(Box(((0, 3), (0, 3))), (_element("0"),), run, runz, 0)
            is None
        )
        cache2 = QueryResultCache(GRID, max_elements_per_entry=1)
        assert (
            cache2.admit(
                Box(((0, 3), (0, 3))),
                (_element("00"), _element("01")),
                (),
                (),
                0,
            )
            is None
        )

    def test_admission_replays_dirty_log(self):
        # A result computed at epoch 1 admitted after an overlapping
        # epoch-3 commit arrives already dead (declined: no reader).
        cache = QueryResultCache(GRID)
        element = _element("00")
        cache.record_commit([element.zlo], epoch=3)
        entry = cache.admit(Box(((0, 7), (0, 7))), (element,), (), (), 1)
        assert entry is None
        # Non-overlapping dirty codes leave the admission live.
        other = _element("11")
        entry = cache.admit(
            Box(((24, 31), (24, 31))), (other,), (), (), 1
        )
        assert entry is not None and entry.dead_epoch is None

    def test_record_commit_marks_overlap_only(self):
        cache = QueryResultCache(GRID)
        inside = cache.admit(
            Box(((0, 7), (0, 7))), (_element("00"),), (), (), 0
        )
        outside = cache.admit(
            Box(((24, 31), (24, 31))), (_element("11"),), (), (), 0
        )
        n = cache.record_commit([_element("00").zlo], epoch=1)
        assert n == 1
        assert inside.dead_epoch == 1
        assert outside.dead_epoch is None
        assert cache.stats["cache.invalidate"] == 1
        # Vacuum dropped the dead entry (nothing pinned).
        assert cache.entries() == [outside]

    def test_internal_clock_without_manager(self):
        cache = QueryResultCache(GRID)
        assert cache.current_epoch == 0
        cache.record_commit([0])
        cache.record_commit([1])
        assert cache.current_epoch == 2


class TestDecomposeCacheRegression:
    """The fastz decomposition LRU must be keyable per store — the old
    process-global ``functools.lru_cache`` leaked state across stores
    and could not be cleared per index."""

    def test_per_store_caches_are_isolated(self):
        a, b = DecomposeCache(), DecomposeCache()
        box = Box(((1, 6), (2, 5)))
        got = a.zvalues(GRID, box)
        assert got == tuple(fastz.decompose_box(GRID, box))
        assert (a.info().misses, b.info().misses) == (1, 0)
        a.zvalues(GRID, box)
        assert a.info().hits == 1
        # Clearing one store's cache leaves the other untouched.
        b.zvalues(GRID, box)
        a.clear()
        assert len(a) == 0 and len(b) == 1
        assert a.info().hits == 0  # counters reset with the entries

    def test_trees_in_one_db_do_not_share_with_default(self):
        from repro.db.database import SpatialDatabase
        from repro.db.schema import Schema
        from repro.db.types import INTEGER, OID

        db = SpatialDatabase(GRID)
        db.create_table(
            "t", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        db.insert("t", ("a", 3, 4))
        entry = db.create_index("t_xy", "t", ("x", "y"))
        own = entry.tree.decompose_cache
        assert own is not default_decompose_cache(GRID)
        default_before = fastz.decompose_box_cache_info().currsize
        db.range_query("t", ("x", "y"), Box(((0, 7), (0, 7))))
        assert len(own) > 0
        # The per-grid default registry did not grow.
        assert fastz.decompose_box_cache_info().currsize == default_before

    def test_drop_index_clears_store_cache(self):
        from repro.db.database import SpatialDatabase
        from repro.db.schema import Schema
        from repro.db.types import INTEGER, OID

        db = SpatialDatabase(GRID, cache=True)
        db.create_table(
            "t", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        db.insert("t", ("a", 3, 4))
        entry = db.create_index("t_xy", "t", ("x", "y"))
        db.range_query("t", ("x", "y"), Box(((0, 7), (0, 7))))
        own = entry.tree.decompose_cache
        assert len(own) > 0 and len(entry.cache) > 0
        db.drop_index("t_xy")
        assert len(own) == 0
        assert len(entry.cache) == 0

    def test_bare_tree_still_uses_default_registry(self):
        # Standalone trees keep sharing the per-grid default cache (the
        # cross-instance reuse test_fastz_oracle relies on).
        tree = ZkdTree(GRID)
        assert tree.decompose_cache is default_decompose_cache(GRID)

    def test_shards_share_one_store_cache(self):
        from repro.shard.store import ShardedSpatialStore

        store = ShardedSpatialStore.build(
            GRID, [(x, x) for x in range(16)], nshards=4
        )
        assert all(
            shard.decompose_cache is store.decompose_cache
            for shard in store.shards
        )
        store.range_query(Box(((0, 7), (0, 7))), use_fast=True)
        # One decomposition, computed once, visible to every shard.
        assert store.decompose_cache.info().currsize > 0

    def test_pickle_drops_lock_keeps_entries(self):
        cache = DecomposeCache()
        cache.zvalues(GRID, Box(((0, 3), (0, 3))))
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == len(cache)
        clone.zvalues(GRID, Box(((0, 3), (0, 3))))
        assert clone.info().hits == cache.info().hits + 1

    def test_thread_safety_under_concurrent_misses(self):
        import threading

        cache = DecomposeCache()
        rng = random.Random(3)
        boxes = [_random_box(rng) for _ in range(24)]
        serial = [tuple(fastz.decompose_box(GRID, b)) for b in boxes]
        results = [[None] * len(boxes) for _ in range(4)]

        def worker(tid):
            for i, box in enumerate(boxes):
                results[tid][i] = cache.zvalues(GRID, box)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for per_thread in results:
            assert [tuple(z) for z in per_thread] == serial


class TestCachedRangeMatches:
    def test_nested_subquery_is_full_hit(self):
        # Containment-as-prefix: any sub-box of a cached region decomposes
        # into elements whose z-values extend cached prefixes.
        rng = random.Random(1)
        tree = ZkdTree(GRID)
        tree.insert_many(
            [(rng.randrange(SIDE), rng.randrange(SIDE)) for _ in range(200)]
        )
        cache = QueryResultCache(GRID)
        parent = Box(((0, 15), (0, 15)))
        cached_range_matches(cache, tree, GRID, parent)
        assert cache.stats["cache.miss"] == 1
        for sub in (
            Box(((0, 7), (0, 7))),
            Box(((4, 11), (2, 13))),
            Box(((15, 15), (0, 15))),
        ):
            got = cached_range_matches(cache, tree, GRID, sub)
            assert got == tree.range_query(sub, use_fast=True).matches
        assert cache.stats["cache.hit"] == 3
        assert cache.stats["cache.partial"] == 0

    def test_partial_hit_serves_residue_from_store(self):
        rng = random.Random(2)
        tree = ZkdTree(GRID)
        tree.insert_many(
            [(rng.randrange(SIDE), rng.randrange(SIDE)) for _ in range(200)]
        )
        cache = QueryResultCache(GRID)
        cached_range_matches(cache, tree, GRID, Box(((0, 7), (0, 7))))
        overlapping = Box(((0, 11), (0, 7)))
        got = cached_range_matches(cache, tree, GRID, overlapping)
        assert got == tree.range_query(overlapping, use_fast=True).matches
        assert cache.stats["cache.partial"] == 1

    def test_empty_box_is_trivial(self):
        cache = QueryResultCache(GRID)
        tree = ZkdTree(GRID)
        out_of_space = Box(((SIDE, SIDE + 4), (0, 3)))
        assert cached_range_matches(cache, tree, GRID, out_of_space) == ()
        assert len(cache) == 0


def test_public_evict_hook():
    cache = QueryResultCache(GRID)
    for i, bits in enumerate(("00", "01", "10")):
        cache.admit(Box(((i, i), (i, i))), (_element(bits),), (), (), 0)
    assert len(cache) == 3
    assert cache.evict(2) == 2
    assert len(cache) == 1
    assert cache.stats["cache.evict"] == 2


def test_pinned_reader_keeps_dead_entry_alive():
    """An entry invalidated at epoch E stays consultable for a session
    pinned in [build, E) and is vacuumed once the pin drops."""

    class FakeSnapshots:
        def __init__(self):
            self.current_epoch = 5
            self.pinned_epochs = (2,)

    snaps = FakeSnapshots()
    cache = QueryResultCache(GRID, snapshots=snaps)
    element = _element("00")
    entry = cache.admit(
        Box(((0, 7), (0, 7))), (element,), ((1, 1),), (GRID.zvalue((1, 1)).bits,), 1
    )
    assert entry is not None
    cache.record_commit([element.zlo], epoch=6)
    assert entry.dead_epoch == 6
    # Still present: the epoch-2 pin may consult it.
    assert cache.entries() == [entry]
    look = cache.lookup((element,), 2)
    assert look.outcome == "hit"
    # Readers at the new epoch never see it.
    assert cache.lookup((element,), 6).outcome == "miss"
    # Pin released -> vacuum reclaims.
    snaps.pinned_epochs = ()
    assert cache.vacuum() == 1
    assert cache.entries() == []
