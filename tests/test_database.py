"""Tests for the SpatialDatabase facade and catalog."""

import pytest

from repro.core.geometry import Box, Grid
from repro.db.catalog import Catalog, IndexEntry
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID, SPATIAL_OBJECT, SpatialObject
from repro.storage.prefix_btree import ZkdTree

from conftest import random_points


def make_db(grid=None):
    db = SpatialDatabase(grid or Grid(2, 6))
    db.create_table(
        "cities", Schema.of(("city@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    return db


class TestCatalog:
    def test_create_and_lookup(self):
        cat = Catalog()
        rel = cat.create_relation("t", Schema.of(("x", INTEGER)))
        assert cat.relation("t") is rel
        assert cat.relation_names() == ["t"]
        assert cat.has_relation("t")

    def test_duplicate_relation_rejected(self):
        cat = Catalog()
        cat.create_relation("t", Schema.of(("x", INTEGER)))
        with pytest.raises(ValueError):
            cat.create_relation("t", Schema.of(("x", INTEGER)))

    def test_missing_relation(self):
        with pytest.raises(KeyError):
            Catalog().relation("nope")

    def test_drop_relation_drops_indexes(self):
        cat = Catalog()
        cat.create_relation(
            "t", Schema.of(("x", INTEGER), ("y", INTEGER))
        )
        tree = ZkdTree(Grid(2, 4))
        cat.register_index(IndexEntry("ix", "t", ("x", "y"), tree))
        cat.drop_relation("t")
        assert not cat.has_relation("t")
        with pytest.raises(KeyError):
            cat.index("ix")

    def test_index_requires_relation(self):
        cat = Catalog()
        tree = ZkdTree(Grid(2, 4))
        with pytest.raises(KeyError):
            cat.register_index(IndexEntry("ix", "absent", ("x", "y"), tree))

    def test_duplicate_index_rejected(self):
        cat = Catalog()
        cat.create_relation("t", Schema.of(("x", INTEGER), ("y", INTEGER)))
        tree = ZkdTree(Grid(2, 4))
        cat.register_index(IndexEntry("ix", "t", ("x", "y"), tree))
        with pytest.raises(ValueError):
            cat.register_index(IndexEntry("ix", "t", ("x", "y"), tree))

    def test_indexes_on(self):
        cat = Catalog()
        cat.create_relation("t", Schema.of(("x", INTEGER), ("y", INTEGER)))
        tree = ZkdTree(Grid(2, 4))
        entry = IndexEntry("ix", "t", ("x", "y"), tree)
        cat.register_index(entry)
        assert cat.indexes_on("t") == [entry]
        assert cat.indexes_on("other") == []

    def test_drop_index(self):
        cat = Catalog()
        cat.create_relation("t", Schema.of(("x", INTEGER), ("y", INTEGER)))
        cat.register_index(IndexEntry("ix", "t", ("x", "y"), ZkdTree(Grid(2, 4))))
        cat.drop_index("ix")
        with pytest.raises(KeyError):
            cat.drop_index("ix")


class TestSpatialDatabase:
    def test_insert_and_range_query_without_index(self, rng):
        db = make_db()
        rows = [
            (f"c{i}", x, y)
            for i, (x, y) in enumerate(random_points(rng, db.grid, 100))
        ]
        db.insert_many("cities", rows)
        box = Box(((10, 30), (20, 50)))
        result = db.range_query("cities", ("x", "y"), box)
        expected = sorted(
            (x, y) for _, x, y in rows if 10 <= x <= 30 and 20 <= y <= 50
        )
        assert sorted((x, y) for _, x, y in result.rows) == expected

    def test_index_accelerated_query_agrees(self, rng):
        db = make_db()
        rows = [
            (f"c{i}", x, y)
            for i, (x, y) in enumerate(random_points(rng, db.grid, 150))
        ]
        db.insert_many("cities", rows)
        box = Box(((5, 45), (10, 60)))
        plan_result = sorted(db.range_query("cities", ("x", "y"), box).rows)
        db.create_index("cities_xy", "cities", ("x", "y"))
        index_result = sorted(db.range_query("cities", ("x", "y"), box).rows)
        assert plan_result == index_result

    def test_index_maintained_on_insert(self):
        db = make_db()
        db.create_index("cities_xy", "cities", ("x", "y"))
        db.insert("cities", ("late", 10, 10))
        result = db.range_query("cities", ("x", "y"), Box(((10, 10), (10, 10))))
        assert result.rows == [("late", 10, 10)]

    def test_range_query_stats_requires_index(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.range_query_stats("cities", ("x", "y"), Box(((0, 1), (0, 1))))

    def test_range_query_stats(self, rng):
        db = make_db()
        rows = [
            (f"c{i}", x, y)
            for i, (x, y) in enumerate(random_points(rng, db.grid, 200))
        ]
        db.insert_many("cities", rows)
        db.create_index("cities_xy", "cities", ("x", "y"))
        stats = db.range_query_stats(
            "cities", ("x", "y"), Box(((0, 31), (0, 31)))
        )
        assert stats.pages_accessed > 0
        assert 0.0 <= stats.efficiency <= 1.0

    def test_index_dimension_check(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.create_index("bad", "cities", ("x",))

    def test_doctest_scenario(self):
        db = SpatialDatabase(Grid(ndims=2, depth=6))
        db.create_table(
            "cities", Schema.of(("city@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        db.insert("cities", ("rome", 10, 20))
        db.create_index("cities_xy", "cities", ("x", "y"))
        result = db.range_query("cities", ("x", "y"), Box(((0, 15), (0, 63))))
        assert result.rows == [("rome", 10, 20)]

    def test_overlap_query_through_facade(self):
        db = SpatialDatabase(Grid(2, 6))
        db.create_table(
            "parcels", Schema.of(("p@", OID), ("shape", SPATIAL_OBJECT))
        )
        db.create_table(
            "zones", Schema.of(("q@", OID), ("shape", SPATIAL_OBJECT))
        )
        db.insert(
            "parcels",
            ("p1", SpatialObject.from_box("p1", Box(((0, 15), (0, 15))))),
        )
        db.insert(
            "zones",
            ("zA", SpatialObject.from_box("zA", Box(((10, 20), (10, 20))))),
        )
        result = db.overlap_query("parcels", "zones", "shape", "p@", "q@")
        assert result.rows == [("p1", "zA")]
