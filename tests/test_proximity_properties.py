"""Property tests for the proximity operators.

Hypothesis-driven invariants over random catalogs:

* **approximation bound** — the approx-mode k-th distance never exceeds
  :func:`approximation_factor` times the true k-th distance (the
  shifted-orderings lemma, checked empirically over random scenes);
* **zone invariant** — any pair within ``eps`` differs by at most one
  zone id for every legal zone height ``h >= eps``;
* **k-NN monotonicity** — the result for ``k`` is a byte-identical
  prefix of the result for ``k + 1`` (the tie-break makes the ranking
  a total order, so growing ``k`` only appends);
* **exactness under mutation** — exact mode equals the oracle on a
  store grown incrementally, not just bulk-loaded.
"""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Grid
from repro.proximity import (
    ZonesIndex,
    approximation_factor,
    knn,
    nested_epsilon_join,
    zone_height_for,
    zones_epsilon_join,
)
from repro.storage.prefix_btree import ZkdTree

seeds = st.integers(0, 10**6)

GRID = Grid(ndims=2, depth=6)


def _scene(seed, n=80):
    rng = random.Random(seed)
    side = GRID.side
    points = set()
    while len(points) < n:
        points.add(tuple(rng.randrange(side) for _ in range(GRID.ndims)))
    center = tuple(rng.randrange(side) for _ in range(GRID.ndims))
    return sorted(points), center, rng


def _kth_distance(points, center, k):
    return sorted(
        math.dist(p, center) for p in points
    )[k - 1]


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_approx_mode_within_proven_factor(seed):
    """approx-mode k-th distance <= factor * exact k-th distance."""
    points, center, rng = _scene(seed)
    tree = ZkdTree(GRID, page_capacity=8)
    tree.bulk_load(points)
    factor = approximation_factor(GRID.ndims)
    for k in (1, 3, 7):
        approx = knn(tree, GRID, center, k, mode="approx")
        got = math.dist(approx[-1], center)
        true = _kth_distance(points, center, k)
        assert got <= factor * true + 1e-9


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_exact_mode_is_exact(seed):
    """exact mode returns the true k nearest regardless of how loose
    the candidate windows were."""
    points, center, rng = _scene(seed)
    tree = ZkdTree(GRID, page_capacity=8)
    tree.bulk_load(points)
    for k in (1, 4, 9):
        got = knn(tree, GRID, center, k)
        want = sorted(
            (
                sum((a - b) ** 2 for a, b in zip(p, center)),
                GRID.zvalue(p).bits,
                p,
            )
            for p in points
        )[:k]
        assert got == [p for _, _, p in want]


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_knn_k_is_prefix_of_k_plus_1(seed):
    points, center, rng = _scene(seed, n=40)
    tree = ZkdTree(GRID, page_capacity=8)
    tree.bulk_load(points)
    previous = []
    for k in range(1, 12):
        current = knn(tree, GRID, center, k)
        assert current[: len(previous)] == previous
        assert len(current) == min(k, len(points))
        previous = current


@settings(max_examples=30, deadline=None)
@given(seeds, st.floats(0.0, 8.0))
def test_zone_invariant_and_join_exactness(seed, eps):
    """Pairs within eps sit in adjacent zones for any h >= eps, and the
    zones join equals the nested loop at every (seed, eps)."""
    rng = random.Random(seed)
    side = GRID.side
    pts_a = [
        tuple(rng.randrange(side) for _ in range(GRID.ndims))
        for _ in range(40)
    ]
    pts_b = [
        tuple(rng.randrange(side) for _ in range(GRID.ndims))
        for _ in range(40)
    ]
    for height in (zone_height_for(eps), zone_height_for(eps) + 3):
        index = ZonesIndex(pts_b, height)
        limit = eps * eps
        for a in pts_a:
            for b in pts_b:
                if sum((x - y) ** 2 for x, y in zip(a, b)) <= limit:
                    assert abs(index.zone_of(a) - index.zone_of(b)) <= 1
        assert zones_epsilon_join(
            pts_a, pts_b, eps, zone_height=height
        ) == nested_epsilon_join(pts_a, pts_b, eps)


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_exactness_survives_incremental_growth(seed):
    """Insert points one batch at a time; the orderings cache must
    track ``mutation_epoch`` and exact mode must stay an oracle."""
    rng = random.Random(seed)
    side = GRID.side
    tree = ZkdTree(GRID, page_capacity=8)
    live = set()
    center = tuple(rng.randrange(side) for _ in range(GRID.ndims))
    for _ in range(4):
        batch = {
            tuple(rng.randrange(side) for _ in range(GRID.ndims))
            for _ in range(15)
        }
        for p in batch - live:
            tree.insert(p)
        live |= batch
        want = sorted(
            (
                sum((a - b) ** 2 for a, b in zip(p, center)),
                GRID.zvalue(p).bits,
                p,
            )
            for p in live
        )[:5]
        assert knn(tree, GRID, center, 5) == [p for _, _, p in want]
