"""Integration tests for the sharded spatial store and its executors.

Everything here checks one of three promises: (1) results are identical
to the single-store path regardless of executor, (2) shards that cannot
contribute are pruned before dispatch, (3) the trace/EXPLAIN surface
reports per-shard actuals the same way under every executor.
"""

import random

import pytest

from repro.core.geometry import Box, Grid
from repro.db import INTEGER, OID, Schema, SpatialDatabase
from repro.db.statistics import estimate_matches, estimate_pages
from repro.obs import format_trace, trace
from repro.shard import (
    ProcessExecutor,
    SerialExecutor,
    ShardedSpatialStore,
    ThreadExecutor,
    ZRangePartitioner,
    make_executor,
)
from repro.storage.diskstore import FilePageStore
from repro.storage.prefix_btree import ZkdTree

from conftest import random_box, random_points


@pytest.fixture
def loaded(grid64, rng):
    pts = random_points(rng, grid64, 1200)
    single = ZkdTree(grid64)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(grid64, pts, nshards=4)
    return pts, single, store


# ----------------------------------------------------------------------
# Routing and maintenance
# ----------------------------------------------------------------------


def test_points_land_in_owning_shard(loaded, grid64):
    _, _, store = loaded
    for shard_id, shard in enumerate(store.shards):
        lo, hi = store.partitioner.interval(shard_id)
        for point in shard.points():
            assert lo <= grid64.zvalue(point).bits <= hi


def test_bulk_load_and_insert_agree(grid64, rng):
    pts = random_points(rng, grid64, 400)
    bulk = ShardedSpatialStore.build(grid64, pts, nshards=3)
    incremental = ShardedSpatialStore(grid64, nshards=3)
    for p in pts:
        incremental.insert(p)
    assert bulk.points() == incremental.points()
    assert bulk.shard_sizes() == incremental.shard_sizes()


def test_len_contains_delete(grid64, rng):
    pts = random_points(rng, grid64, 200)
    store = ShardedSpatialStore.build(grid64, pts, nshards=4)
    assert len(store) == len(pts)
    assert pts[0] in store
    epoch = store.mutation_epoch
    assert store.delete(pts[0])
    assert store.mutation_epoch == epoch + 1
    assert len(store) == len(pts) - 1
    assert not store.delete((grid64.side - 1, grid64.side - 1)) or True
    # points() stays globally z-ordered after the delete
    codes = [grid64.zvalue(p).bits for p in store.points()]
    assert codes == sorted(codes)


def test_build_validates_partition_policy(grid64):
    with pytest.raises(ValueError):
        ShardedSpatialStore.build(grid64, [], nshards=2, partition="bogus")
    with pytest.raises(ValueError):
        ShardedSpatialStore(
            grid64,
            partitioner=ZRangePartitioner.equi_width(grid64.total_bits, 2),
            nshards=3,
        )
    with pytest.raises(ValueError):
        ShardedSpatialStore(
            grid64, partitioner=ZRangePartitioner(4, ())
        )


# ----------------------------------------------------------------------
# Query identity and pruning
# ----------------------------------------------------------------------


def test_range_query_matches_single_store(loaded, rng, grid64):
    _, single, store = loaded
    for _ in range(25):
        box = random_box(rng, grid64)
        expected = single.range_query(box)
        got = store.range_query(box)
        assert got.matches == expected.matches
        assert len(got.shards_hit) + got.shards_pruned == store.nshards


def test_selective_box_prunes_shards(loaded):
    _, _, store = loaded
    # A tiny corner box decomposes into low-z elements only.
    result = store.range_query(Box(((0, 3), (0, 3))))
    assert result.shards_pruned >= 1
    assert result.shards_hit == (0,)


def test_degenerate_one_shard_store(grid64, rng):
    pts = random_points(rng, grid64, 150)
    single = ZkdTree(grid64)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(grid64, pts, nshards=1)
    box = random_box(rng, grid64)
    assert store.range_query(box).matches == single.range_query(box).matches
    assert store.range_query(box).shards_pruned == 0


def test_empty_box_dispatches_nothing(loaded, grid64):
    _, _, store = loaded
    side = grid64.side
    result = store.range_query(Box(((side + 5, side + 9), (0, 3))))
    assert result.matches == ()
    assert result.shards_hit == ()
    assert result.shards_pruned == store.nshards


def test_bigmin_and_fast_flags(loaded, rng, grid64):
    _, single, store = loaded
    box = random_box(rng, grid64)
    expected = single.range_query(box).matches
    for use_bigmin in (False, True):
        for use_fast in (False, True):
            got = store.range_query(
                box, use_bigmin=use_bigmin, use_fast=use_fast
            )
            assert got.matches == expected


def test_result_aggregates(loaded, rng, grid64):
    _, single, store = loaded
    box = Box(((4, 40), (4, 40)))
    got = store.range_query(box)
    assert got.nmatches == len(got.matches)
    assert got.pages_accessed == sum(
        r.pages_accessed for r in got.shard_results
    )
    assert got.merge.matches == got.nmatches
    assert 0.0 <= got.efficiency <= 1.0


def test_object_and_proximity_queries(loaded, grid64):
    _, single, store = loaded
    center = (grid64.side // 2, grid64.side // 2)
    assert (
        store.within_distance(center, 9.5).matches
        == single.within_distance(center, 9.5).matches
    )
    assert store.nearest_neighbours(center, 5) == (
        single.nearest_neighbours(center, 5)
    )


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_executors_identical_results(loaded, rng, grid64, kind):
    _, single, store = loaded
    store.set_executor(kind)
    try:
        for _ in range(5):
            box = random_box(rng, grid64)
            assert (
                store.range_query(box).matches
                == single.range_query(box).matches
            )
    finally:
        store.set_executor("serial")


def test_make_executor_factory():
    assert isinstance(make_executor("serial"), SerialExecutor)
    assert isinstance(make_executor("thread"), ThreadExecutor)
    assert isinstance(make_executor("process"), ProcessExecutor)
    with pytest.raises(ValueError):
        make_executor("gpu")


def test_process_pool_sees_mutations(grid64, rng):
    pts = random_points(rng, grid64, 300)
    store = ShardedSpatialStore.build(
        grid64, pts, nshards=2, executor="process"
    )
    try:
        everything = Box(((0, grid64.side - 1), (0, grid64.side - 1)))
        before = store.range_query(everything).nmatches
        new_point = next(
            p
            for p in (
                (x, y)
                for x in range(grid64.side)
                for y in range(grid64.side)
            )
            if p not in set(pts)
        )
        store.insert(new_point)  # bumps the epoch -> pool rebuilt
        assert store.range_query(everything).nmatches == before + 1
    finally:
        store.close()


def test_store_pickles_without_executor(loaded):
    import pickle

    _, _, store = loaded
    store.set_executor("thread")
    try:
        clone = pickle.loads(pickle.dumps(store))
        assert clone.executor.kind == "serial"
        assert clone.points() == store.points()
    finally:
        store.set_executor("serial")


# ----------------------------------------------------------------------
# File-backed shards
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kind", ["serial", "process"])
def test_file_backed_shards(tmp_path, grid64, rng, kind):
    pts = random_points(rng, grid64, 400)
    single = ZkdTree(grid64)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(
        grid64,
        pts,
        nshards=2,
        store_factory=lambda i: FilePageStore(
            str(tmp_path / f"shard{i}.zkd"), page_capacity=20
        ),
        executor=kind,
    )
    try:
        for _ in range(5):
            box = random_box(rng, grid64)
            assert (
                store.range_query(box).matches
                == single.range_query(box).matches
            )
    finally:
        store.close()


def test_filestore_reopen_and_pickle(tmp_path):
    store = FilePageStore(str(tmp_path / "t.zkd"), page_capacity=4)
    page = store.allocate()
    page.records.append((7, (1, 2)))
    store.write(page)
    store.reopen()
    assert store.read(page.page_id).records == [(7, (1, 2))]
    import pickle

    clone = pickle.loads(pickle.dumps(store))
    assert clone.read(page.page_id).records == [(7, (1, 2))]
    clone.close()
    store.close()


# ----------------------------------------------------------------------
# Tracing and EXPLAIN
# ----------------------------------------------------------------------


def _scatter_span(loaded_store, box, kind):
    loaded_store.set_executor(kind)
    try:
        with trace("q") as t:
            loaded_store.range_query(box)
    finally:
        loaded_store.set_executor("serial")
    assert t is not None
    span = t.find("shard.scatter_gather")
    assert span is not None
    return t, span


@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_trace_counters_identical_across_executors(loaded, kind):
    _, _, store = loaded
    box = Box(((2, 30), (2, 30)))
    serial_trace, _ = _scatter_span(store, box, "serial")
    t, span = _scatter_span(store, box, kind)
    assert span.counters["shards_hit"] >= 1
    assert (
        span.counters["shards_hit"] + span.counters["shards_pruned"]
        == store.nshards
    )
    assert t.total_counters() == serial_trace.total_counters()
    # One curated child per dispatched shard, nothing leaked from the
    # suppressed per-shard sub-queries.
    children = [c.name for c in span.children]
    assert all(name.startswith("shard[") for name in children)
    assert len(children) == span.counters["shards_hit"]


def test_explain_renders_per_shard_lines(loaded):
    _, _, store = loaded
    with trace("q") as t:
        store.range_query(Box(((0, 40), (0, 40))))
    text = format_trace(t)
    assert "shard.scatter_gather" in text
    assert "shards_pruned" in text
    # Compact one-line leaves with actual rows/pages and the z range.
    for line in text.splitlines():
        if line.lstrip().startswith("shard["):
            assert "rows=" in line and "pages=" in line and "z=[" in line
            break
    else:
        pytest.fail("no shard[i] line rendered")


# ----------------------------------------------------------------------
# Database / planner / statistics integration
# ----------------------------------------------------------------------


def _seeded_db(grid, pts, **index_kwargs):
    db = SpatialDatabase(grid, page_capacity=20)
    db.create_table(
        "pts", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    db.insert_many(
        "pts", [(f"p{i}", x, y) for i, (x, y) in enumerate(pts)]
    )
    entry = db.create_index("pts_xy", "pts", ("x", "y"), **index_kwargs)
    return db, entry


def test_database_sharded_index_path(grid64, rng):
    pts = random_points(rng, grid64, 600)
    db_plain, _ = _seeded_db(grid64, pts)
    db_sharded, entry = _seeded_db(grid64, pts, shards=4)
    assert entry.tree.nshards == 4
    box = Box(((3, 27), (5, 33)))
    from repro.db.planner import plan_range_query

    plan = plan_range_query(db_sharded, "pts", ("x", "y"), box)
    assert plan.method == "sharded-index-scan"
    assert "sharded-index-scan" in plan.explain()
    assert sorted(plan.execute().rows) == sorted(
        db_plain.range_query("pts", ("x", "y"), box).rows
    )
    # Maintained inserts route into the sharded index too.
    db_sharded.insert("pts", ("new", 6, 6))
    assert (6, 6) in entry.tree
    stats = db_sharded.range_query_stats("pts", ("x", "y"), box)
    assert stats.shards_hit


def test_sharded_estimates_close_to_single(grid64, rng):
    pts = random_points(rng, grid64, 800)
    single = ZkdTree(grid64, page_capacity=20)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(
        grid64, pts, nshards=4, page_capacity=20
    )
    for _ in range(10):
        box = random_box(rng, grid64)
        actual = store.range_query(box).nmatches
        est_sharded = estimate_matches(store, box)
        est_single = estimate_matches(single, box)
        # Same ballpark as the single-store histogram estimate.
        assert abs(est_sharded - actual) <= abs(est_single - actual) + max(
            20, 0.5 * actual
        )
        assert estimate_pages(store, box) >= 0


def test_balanced_partition_on_skew(grid64):
    rng = random.Random(5)
    # Clustered corner data: balanced cuts spread it, equi-width won't.
    pts = [(rng.randrange(12), rng.randrange(12)) for _ in range(500)]
    single = ZkdTree(grid64)
    single.bulk_load(pts)
    balanced = ShardedSpatialStore.build(
        grid64, pts, nshards=4, partition="balanced"
    )
    assert max(balanced.shard_sizes()) < len(pts)
    box = Box(((0, 11), (0, 11)))
    assert (
        balanced.range_query(box).matches
        == single.range_query(box).matches
    )


def test_grid3d_store(grid3d):
    rng = random.Random(9)
    pts = random_points(rng, grid3d, 300)
    single = ZkdTree(grid3d)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(grid3d, pts, nshards=3)
    box = random_box(rng, grid3d)
    assert store.range_query(box).matches == single.range_query(box).matches
