"""Tests for the prefix B+-tree, including randomized model checking."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.btree import (
    BPlusTree,
    separator_prefix_length,
    shortest_separator,
)
from repro.storage.buffer import BufferManager
from repro.storage.page import PageStore


def make_tree(page_capacity=4, order=4, total_bits=16, frames=4):
    store = PageStore(page_capacity)
    return BPlusTree(
        store, BufferManager(store, frames), order=order, total_bits=total_bits
    )


class TestShortestSeparator:
    def test_basic(self):
        # left_high=0b0101, right_low=0b0111: separator 0b0110.
        assert shortest_separator(0b0101, 0b0111, 4) == 0b0110

    def test_adjacent_keys(self):
        assert shortest_separator(4, 5, 4) == 5

    def test_wide_gap_picks_round_number(self):
        # Between 1 and 200 the shortest prefix is 128 (10000000).
        assert shortest_separator(1, 200, 8) == 128

    def test_separates(self):
        for left in range(0, 60, 7):
            for right in range(left + 1, 64, 5):
                s = shortest_separator(left, right, 6)
                assert left < s <= right

    def test_maximal_trailing_zeros(self):
        for left in range(0, 30):
            for right in range(left + 1, 31):
                s = shortest_separator(left, right, 5)
                best = max(
                    (
                        c
                        for c in range(left + 1, right + 1)
                    ),
                    key=lambda c: (c & -c),
                )
                assert (s & -s) == (best & -best)

    def test_rejects_unseparable(self):
        with pytest.raises(ValueError):
            shortest_separator(5, 5, 4)
        with pytest.raises(ValueError):
            shortest_separator(6, 5, 4)

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            shortest_separator(1, 16, 4)

    def test_prefix_length(self):
        assert separator_prefix_length(0b10000000, 8) == 1
        assert separator_prefix_length(0b10100000, 8) == 3
        assert separator_prefix_length(0, 8) == 0
        assert separator_prefix_length(0b1, 8) == 8


class TestInsertSearch:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.search(5) == []
        assert list(tree.items()) == []

    def test_single_insert(self):
        tree = make_tree()
        tree.insert(5, "five")
        assert tree.search(5) == ["five"]
        assert len(tree) == 1

    def test_many_inserts_sorted_scan(self):
        tree = make_tree()
        keys = list(range(100))
        random.Random(0).shuffle(keys)
        for k in keys:
            tree.insert(k, k * 10)
        assert [k for k, _ in tree.items()] == list(range(100))
        tree.check_invariants()

    def test_search_missing(self):
        tree = make_tree()
        for k in range(0, 50, 2):
            tree.insert(k, k)
        assert tree.search(31) == []

    def test_duplicates(self):
        tree = make_tree()
        for i in range(25):
            tree.insert(7, i)
        assert sorted(tree.search(7)) == list(range(25))
        tree.check_invariants()

    def test_duplicates_across_splits(self):
        tree = make_tree(page_capacity=4)
        for i in range(10):
            tree.insert(5, f"five-{i}")
            tree.insert(6, f"six-{i}")
        assert len(tree.search(5)) == 10
        assert len(tree.search(6)) == 10

    def test_key_out_of_range(self):
        tree = make_tree(total_bits=8)
        with pytest.raises(ValueError):
            tree.insert(256, None)
        with pytest.raises(ValueError):
            tree.insert(-1, None)

    def test_height_grows_logarithmically(self):
        tree = make_tree(page_capacity=4, order=4)
        for k in range(256):
            tree.insert(k, None)
        assert tree.height <= 6
        assert tree.nleaves >= 256 // 4

    def test_order_minimum(self):
        store = PageStore(4)
        with pytest.raises(ValueError):
            BPlusTree(store, order=2)


class TestCursor:
    def test_full_scan(self):
        tree = make_tree()
        for k in range(20):
            tree.insert(k, str(k))
        cursor = tree.cursor()
        seen = []
        record = cursor.current
        while record is not None:
            seen.append(record.z)
            record = cursor.step()
        assert seen == list(range(20))

    def test_start_positioning(self):
        tree = make_tree()
        for k in range(0, 40, 3):
            tree.insert(k, None)
        cursor = tree.cursor(start=10)
        assert cursor.current.z == 12

    def test_seek_forward(self):
        tree = make_tree()
        for k in range(0, 100, 5):
            tree.insert(k, None)
        cursor = tree.cursor()
        assert cursor.seek(31).z == 35
        assert cursor.seek(35).z == 35  # no move when satisfied
        assert cursor.seek(96) is None

    def test_seek_within_page_is_cheap(self):
        tree = make_tree(page_capacity=16)
        for k in range(16):
            tree.insert(k, None)
        tree.reset_access_log()
        cursor = tree.cursor()
        cursor.seek(9)
        # Initial position + at most the same page again.
        assert len(set(tree.leaf_accesses)) == 1

    def test_empty_tree_cursor(self):
        tree = make_tree()
        cursor = tree.cursor()
        assert cursor.current is None
        assert cursor.step() is None
        assert cursor.seek(5) is None


class TestDelete:
    def test_delete_simple(self):
        tree = make_tree()
        tree.insert(5, "five")
        assert tree.delete(5)
        assert len(tree) == 0
        assert tree.search(5) == []

    def test_delete_missing(self):
        tree = make_tree()
        tree.insert(5, "five")
        assert not tree.delete(6)
        assert not tree.delete(5, "six")

    def test_delete_by_value(self):
        tree = make_tree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.delete(5, "b")
        assert tree.search(5) == ["a"]

    def test_delete_everything(self):
        tree = make_tree()
        for k in range(64):
            tree.insert(k, k)
        for k in range(64):
            assert tree.delete(k), k
        assert len(tree) == 0
        tree.check_invariants()

    def test_delete_rebalances(self):
        tree = make_tree(page_capacity=4, order=4)
        for k in range(100):
            tree.insert(k, k)
        for k in range(0, 100, 2):
            assert tree.delete(k)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(1, 100, 2))

    def test_delete_reverse_order(self):
        tree = make_tree(page_capacity=4, order=4)
        for k in range(100):
            tree.insert(k, k)
        for k in reversed(range(100)):
            assert tree.delete(k)
        tree.check_invariants()
        assert len(tree) == 0


class TestRandomizedModel:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_against_sorted_list_model(self, seed):
        rng = random.Random(seed)
        tree = make_tree(
            page_capacity=rng.choice([4, 6, 8]),
            order=rng.choice([3, 4, 6]),
            total_bits=10,
        )
        model = []
        for step in range(400):
            if rng.random() < 0.6 or not model:
                key = rng.randrange(1024)
                value = (key, step)
                tree.insert(key, value)
                model.append((key, value))
            else:
                key, value = model.pop(rng.randrange(len(model)))
                assert tree.delete(key, value)
            if step % 100 == 99:
                tree.check_invariants()
        tree.check_invariants()
        assert sorted((k, v) for k, v in tree.items()) == sorted(model)
        # Spot-check searches.
        for key in rng.sample(range(1024), 20):
            expected = sorted(v for k, v in model if k == key)
            assert sorted(tree.search(key)) == expected

    def test_skewed_duplicates_model(self):
        rng = random.Random(13)
        tree = make_tree(page_capacity=4, order=4, total_bits=6)
        model = []
        for step in range(300):
            if rng.random() < 0.6 or not model:
                key = rng.choice([3, 3, 3, 17, 17, 42])  # heavy duplication
                tree.insert(key, step)
                model.append((key, step))
            else:
                key, value = model.pop(rng.randrange(len(model)))
                assert tree.delete(key, value)
        tree.check_invariants()
        assert sorted((k, v) for k, v in tree.items()) == sorted(model)


class TestAccessAccounting:
    def test_leaf_accesses_logged(self):
        tree = make_tree(page_capacity=4)
        for k in range(32):
            tree.insert(k, None)
        tree.reset_access_log()
        list(tree.items())
        assert len(set(tree.leaf_accesses)) == tree.nleaves

    def test_point_lookup_touches_one_leaf(self):
        tree = make_tree(page_capacity=4)
        for k in range(64):
            tree.insert(k, None)
        tree.reset_access_log()
        tree.search(17)
        assert len(set(tree.leaf_accesses)) <= 2


class TestSeparators:
    def test_separator_bits_shorter_than_full_keys(self):
        tree = make_tree(page_capacity=4, order=8, total_bits=16)
        rng = random.Random(5)
        for _ in range(300):
            tree.insert(rng.randrange(1 << 16), None)
        bits = tree.separator_bit_lengths()
        assert bits
        assert sum(bits) / len(bits) < 16

    def test_partition_boundaries_sorted(self):
        tree = make_tree(page_capacity=4)
        for k in range(50):
            tree.insert(k, None)
        bounds = tree.partition_boundaries()
        assert bounds == sorted(bounds)
        assert bounds[0] == 0

    def test_leaf_key_ranges(self):
        tree = make_tree(page_capacity=4)
        for k in range(20):
            tree.insert(k, None)
        ranges = tree.leaf_key_ranges()
        assert sum(count for _, _, count in ranges) == 20
        for (alo, ahi, _), (blo, bhi, _) in zip(ranges, ranges[1:]):
            assert ahi <= blo
