"""Tests for grids, boxes and object classifiers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.geometry import (
    BOUNDARY,
    INSIDE,
    OUTSIDE,
    Box,
    Grid,
    box_classifier,
    circle_classifier,
    polygon_classifier,
)


class TestGrid:
    def test_basic_properties(self):
        g = Grid(2, 3)
        assert g.side == 8
        assert g.total_bits == 6
        assert g.npixels == 64

    def test_3d(self):
        g = Grid(3, 2)
        assert g.side == 4
        assert g.total_bits == 6
        assert g.npixels == 64

    def test_whole_space(self):
        assert Grid(2, 3).whole_space() == Box(((0, 7), (0, 7)))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            Grid(0, 3)
        with pytest.raises(ValueError):
            Grid(2, -1)

    def test_contains_point(self):
        g = Grid(2, 3)
        assert g.contains_point((0, 0))
        assert g.contains_point((7, 7))
        assert not g.contains_point((8, 0))
        assert not g.contains_point((0, -1))
        assert not g.contains_point((1, 2, 3))

    def test_validate_point(self):
        with pytest.raises(ValueError):
            Grid(2, 3).validate_point((9, 0))

    def test_zvalue(self):
        g = Grid(2, 3)
        assert g.zvalue((3, 5)).bits == 27

    def test_region_box_roundtrip(self):
        g = Grid(2, 3)
        from repro.core.zvalue import ZValue

        for text in ("", "0", "01", "001", "011011"):
            z = ZValue.from_string(text)
            assert g.element_of_box(g.region_box(z)) == z

    def test_element_of_box_rejects_non_dyadic(self):
        g = Grid(2, 3)
        with pytest.raises(ValueError):
            g.element_of_box(Box(((0, 2), (0, 7))))  # extent 3
        with pytest.raises(ValueError):
            g.element_of_box(Box(((1, 2), (0, 7))))  # unaligned


class TestBox:
    def test_basic(self):
        b = Box(((1, 3), (0, 4)))
        assert b.ndims == 2
        assert b.sizes == (3, 5)
        assert b.volume == 15
        assert b.low_corner == (1, 0)
        assert b.high_corner == (3, 4)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            Box(((3, 1),))

    def test_from_corner_and_size(self):
        b = Box.from_corner_and_size((1, 0), (3, 5))
        assert b == Box(((1, 3), (0, 4)))
        with pytest.raises(ValueError):
            Box.from_corner_and_size((0,), (0,))

    def test_contains_point(self):
        b = Box(((1, 3), (0, 4)))
        assert b.contains_point((1, 0))
        assert b.contains_point((3, 4))
        assert not b.contains_point((0, 0))
        assert not b.contains_point((3, 5))
        assert not b.contains_point((1,))

    def test_contains_box(self):
        outer = Box(((0, 7), (0, 7)))
        inner = Box(((1, 3), (0, 4)))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert inner.contains_box(inner)

    def test_intersects_and_intersection(self):
        a = Box(((0, 4), (0, 4)))
        b = Box(((3, 7), (2, 9)))
        assert a.intersects(b)
        assert a.intersection(b) == Box(((3, 4), (2, 4)))
        c = Box(((5, 7), (5, 7)))
        assert not a.intersects(c)
        with pytest.raises(ValueError):
            a.intersection(c)

    def test_touching_boxes_intersect(self):
        # Inclusive bounds: sharing an edge cell means intersecting.
        a = Box(((0, 3),))
        b = Box(((3, 5),))
        assert a.intersects(b)
        b = Box(((4, 5),))
        assert not a.intersects(b)

    def test_clipped_to(self):
        a = Box(((0, 9), (0, 9)))
        space = Box(((0, 7), (0, 7)))
        assert a.clipped_to(space) == Box(((0, 7), (0, 7)))
        outside = Box(((8, 9), (8, 9)))
        assert outside.clipped_to(space) is None

    def test_translated(self):
        assert Box(((0, 1), (2, 3))).translated((5, -1)) == Box(
            ((5, 6), (1, 2))
        )

    def test_pixels(self):
        b = Box(((0, 1), (2, 3)))
        assert sorted(b.pixels()) == [(0, 2), (0, 3), (1, 2), (1, 3)]

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            Box(((0, 1),)).intersects(Box(((0, 1), (0, 1))))

    def test_str(self):
        assert "1..3" in str(Box(((1, 3),)))


class TestBoxClassifier:
    def test_three_cases(self):
        classify = box_classifier(Box(((2, 5), (2, 5))))
        assert classify(Box(((3, 4), (3, 4)))) is INSIDE
        assert classify(Box(((6, 7), (6, 7)))) is OUTSIDE
        assert classify(Box(((0, 3), (0, 3)))) is BOUNDARY

    def test_exactness_on_pixels(self):
        box = Box(((1, 3), (0, 4)))
        classify = box_classifier(box)
        for x in range(8):
            for y in range(8):
                pixel = Box(((x, x), (y, y)))
                expected = INSIDE if box.contains_point((x, y)) else OUTSIDE
                assert classify(pixel) is expected


class TestCircleClassifier:
    def test_pixel_exactness(self):
        classify = circle_classifier((8, 8), 5.0)
        for x in range(16):
            for y in range(16):
                pixel = Box(((x, x), (y, y)))
                inside = (x - 8) ** 2 + (y - 8) ** 2 <= 25
                expected = INSIDE if inside else OUTSIDE
                assert classify(pixel) is expected, (x, y)

    def test_region_soundness(self):
        # If a region is classified INSIDE every pixel must be inside;
        # OUTSIDE means every pixel outside.
        classify = circle_classifier((8, 8), 6.0)
        region = Box(((6, 9), (6, 9)))
        if classify(region) is INSIDE:
            for p in region.pixels():
                assert (p[0] - 8) ** 2 + (p[1] - 8) ** 2 <= 36

    def test_3d_ball(self):
        classify = circle_classifier((4, 4, 4), 2.0)
        assert classify(Box(((4, 4), (4, 4), (4, 4)))) is INSIDE
        assert classify(Box(((0, 0), (0, 0), (0, 0)))) is OUTSIDE


class TestPolygonClassifier:
    def test_triangle_pixels(self):
        # Right triangle with legs on the axes.
        classify = polygon_classifier([(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)])
        assert classify(Box(((2, 2), (2, 2)))) is INSIDE
        assert classify(Box(((9, 9), (9, 9)))) is OUTSIDE

    def test_region_boundary_detection(self):
        classify = polygon_classifier([(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)])
        # The hypotenuse crosses this region.
        assert classify(Box(((4, 6), (4, 6)))) is BOUNDARY

    def test_region_fully_outside(self):
        classify = polygon_classifier([(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)])
        assert classify(Box(((8, 11), (8, 11)))) is OUTSIDE

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            polygon_classifier([(0, 0), (1, 1)])

    def test_rejects_non_2d_region(self):
        classify = polygon_classifier([(0, 0), (4, 0), (0, 4)])
        with pytest.raises(ValueError):
            classify(Box(((0, 1), (0, 1), (0, 1))))

    def test_consistency_with_decomposition(self):
        # Decomposing via region classification must agree with the
        # per-pixel test (conservative regions only add splitting).
        from repro.core.decompose import decompose
        from repro.core.geometry import Grid

        grid = Grid(2, 4)
        vertices = [(1.0, 1.0), (12.0, 3.0), (9.0, 13.0), (2.0, 9.0)]
        classify = polygon_classifier(vertices)
        elements = decompose(grid, classify)
        covered = set()
        for z in elements:
            (xlo, xhi), (ylo, yhi) = z.region(2, 4)
            covered |= {
                (x, y)
                for x in range(xlo, xhi + 1)
                for y in range(ylo, yhi + 1)
            }
        expected = {
            (x, y)
            for x in range(16)
            for y in range(16)
            if classify(Box(((x, x), (y, y)))) is INSIDE
        }
        assert covered == expected


@given(st.data())
def test_box_intersection_model(data):
    """Box intersection agrees with the pixel-set model."""
    def draw_box():
        ranges = []
        for _ in range(2):
            a = data.draw(st.integers(0, 7))
            b = data.draw(st.integers(0, 7))
            ranges.append((min(a, b), max(a, b)))
        return Box(tuple(ranges))

    a, b = draw_box(), draw_box()
    pa = set(a.pixels())
    pb = set(b.pixels())
    assert a.intersects(b) == bool(pa & pb)
    if pa & pb:
        assert set(a.intersection(b).pixels()) == (pa & pb)
    assert a.contains_box(b) == (pb <= pa)
