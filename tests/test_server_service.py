"""End-to-end TCP service tests: protocol shapes, query identity,
snapshot semantics per connection, and batched-vs-serial equivalence.

Each test spins up a real :class:`QueryServer` on a loopback socket and
drives it with :class:`QueryClient` — the same stack the serving
benchmark measures — inside ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.server import (
    QueryClient,
    QueryService,
    ServerError,
    serve,
)
from repro.workloads.datasets import make_dataset

GRID = Grid(ndims=2, depth=7)
NPOINTS = 1500


def _build_db(concurrency=True, seed=0):
    db = SpatialDatabase(GRID, page_capacity=16, concurrency=concurrency)
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    points = make_dataset("C", GRID, NPOINTS, seed=seed).points
    db.insert_many(
        "points", [(f"p{i}", x, y) for i, (x, y) in enumerate(points)]
    )
    db.create_index("points_xy", "points", ("x", "y"))
    return db


def _boxes(seed, count=10):
    rng = random.Random(seed)
    side = GRID.side
    out = []
    for _ in range(count):
        x0, x1 = sorted(rng.randrange(side) for _ in range(2))
        y0, y1 = sorted(rng.randrange(side) for _ in range(2))
        out.append(((x0, x1), (y0, y1)))
    return out


def test_ping_and_stats_shapes():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        try:
            async with await QueryClient.connect(
                *server.address
            ) as client:
                pong = await client.ping()
                assert pong["pong"] is True
                assert isinstance(pong["epoch"], int)
                await client.range_query(
                    "points", ("x", "y"), [[0, 10], [0, 10]]
                )
                stats = await client.stats()
                assert stats["server"]["server.connections"] >= 1
                assert stats["server"]["server.served"] >= 1
                assert stats["server"]["server.admitted"] >= 1
                assert "snapshots" in stats
                assert "leaks" in stats
        finally:
            await server.close()

    asyncio.run(run())


def test_range_and_point_queries_match_database():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        try:
            async with await QueryClient.connect(
                *server.address
            ) as client:
                for ranges in _boxes(seed=1):
                    got = await client.range_query(
                        "points", ("x", "y"), ranges
                    )
                    want = db.range_query(
                        "points", ("x", "y"), Box(ranges)
                    ).rows
                    assert got == want  # rows AND their order
                # A point query is a degenerate box.
                x, y = db.catalog.relation("points").rows[0][1:3]
                got = await client.point_query(
                    "points", ("x", "y"), (x, y)
                )
                want = db.range_query(
                    "points", ("x", "y"), Box(((x, x), (y, y)))
                ).rows
                assert got == want and got
        finally:
            await server.close()

    asyncio.run(run())


def test_pipelined_batched_equals_serial_dispatch():
    """The acceptance identity, end to end: concurrent pipelined
    queries through a batching service answer byte-identically to the
    same queries through request-at-a-time dispatch."""

    async def gather_rows(batching):
        db = _build_db()
        service = QueryService(db, max_inflight=32, client_quota=32,
                               batching=batching)
        server = await serve(service)
        try:
            async with await QueryClient.connect(
                *server.address
            ) as client:
                boxes = _boxes(seed=2, count=16)
                results = await asyncio.gather(
                    *[
                        client.range_query("points", ("x", "y"), ranges)
                        for ranges in boxes
                    ]
                )
            stats = service.stats_snapshot()["server"]
            return boxes, results, stats
        finally:
            await server.close()

    async def run():
        boxes, batched, batched_stats = await gather_rows(batching=True)
        boxes2, serial, serial_stats = await gather_rows(batching=False)
        assert boxes == boxes2
        assert batched == serial
        # And both equal the database's own answers.
        db = _build_db()
        for ranges, rows in zip(boxes, batched):
            assert rows == db.range_query(
                "points", ("x", "y"), Box(ranges)
            ).rows
        # The batched run actually coalesced; the serial run never did.
        assert batched_stats["server.batch_size_peak"] > 1
        assert serial_stats["server.batch_size_peak"] == 1

    asyncio.run(run())


def test_insert_commit_refresh_snapshot_semantics():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        try:
            reader = await QueryClient.connect(*server.address)
            writer = await QueryClient.connect(*server.address)
            probe = [[3, 3], [3, 3]]
            before = await reader.range_query("points", ("x", "y"), probe)
            ack = await writer.insert("points", ["fresh", 3, 3])
            assert ack["buffered"] == 1
            # Uncommitted: invisible to everyone, the writer included.
            assert await reader.range_query(
                "points", ("x", "y"), probe
            ) == before
            epoch = await writer.commit()
            assert isinstance(epoch, int)
            # Committed: the reader's pinned snapshot still predates it.
            assert await reader.range_query(
                "points", ("x", "y"), probe
            ) == before
            new_epoch = await reader.refresh()
            assert new_epoch >= epoch
            after = await reader.range_query("points", ("x", "y"), probe)
            assert len(after) == len(before) + 1
            assert ("fresh", 3, 3) in after
            await reader.close()
            await writer.close()
        finally:
            await server.close()

    asyncio.run(run())


def test_protocol_and_lookup_errors_are_typed():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        try:
            async with await QueryClient.connect(
                *server.address
            ) as client:
                with pytest.raises(ServerError) as excinfo:
                    await client.request({"op": "explode"})
                # An unknown op never named a meaningful operation:
                # that is an envelope-level (protocol) error, not a
                # bad operand.
                assert excinfo.value.error_type == "protocol_error"
                with pytest.raises(ServerError) as excinfo:
                    await client.range_query(
                        "nope", ("x", "y"), [[0, 1], [0, 1]]
                    )
                assert excinfo.value.error_type == "not_found"
                with pytest.raises(ServerError) as excinfo:
                    await client.request(
                        {
                            "op": "range",
                            "table": "points",
                            "cols": ["x", "y"],
                            "box": [[0, 1]],  # wrong dimensionality
                        }
                    )
                assert excinfo.value.error_type == "bad_request"
                # The connection survives every error answer.
                assert (await client.ping())["pong"] is True
                errors = (await client.stats())["server"][
                    "server.errors"
                ]
                assert errors >= 3
        finally:
            await server.close()

    asyncio.run(run())


def test_unindexed_table_falls_back_to_row_scan():
    async def run():
        db = _build_db()
        db.create_table(
            "bare", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        rng = random.Random(9)
        db.insert_many(
            "bare",
            [
                (f"b{i}", rng.randrange(GRID.side), rng.randrange(GRID.side))
                for i in range(200)
            ],
        )
        service = QueryService(db)
        server = await serve(service)
        try:
            async with await QueryClient.connect(
                *server.address
            ) as client:
                for ranges in _boxes(seed=3, count=5):
                    got = await client.range_query(
                        "bare", ("x", "y"), ranges
                    )
                    want = db.range_query(
                        "bare", ("x", "y"), Box(ranges)
                    ).rows
                    assert got == want
        finally:
            await server.close()

    asyncio.run(run())


def test_trace_section_renders_server_counters():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        try:
            async with await QueryClient.connect(
                *server.address
            ) as client:
                await client.range_query(
                    "points", ("x", "y"), [[0, 10], [0, 10]]
                )
        finally:
            await server.close()
        from repro.obs.explain import format_trace

        rendered = format_trace(service.trace_section())
        assert "SERVER" in rendered
        assert "server.served" in rendered
        assert "client[" in rendered

    asyncio.run(run())


def test_sql_op_rows_explain_and_errors():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        query = (
            "SELECT id@, x FROM points "
            "WHERE BOX(0, 40, 0, 40) CONTAINS POINT(x, y) "
            "AND x > 5 ORDER BY id@ LIMIT 8"
        )
        try:
            async with await QueryClient.connect(
                *server.address
            ) as client:
                response = await client.sql(query)
                assert response["mode"] == "rows"
                assert response["columns"] == ["id@", "x"]
                assert response["count"] == len(response["rows"]) <= 8

                explain = await client.sql("EXPLAIN " + query)
                assert explain["mode"] == "explain"
                assert "filters" in explain["text"]

                analyze = await client.sql("EXPLAIN ANALYZE " + query)
                assert analyze["mode"] == "analyze"
                assert "plan.multi" in analyze["text"]

                with pytest.raises(ServerError) as info:
                    await client.sql("SELECT bogus FROM points")
                assert info.value.error_type == "bind_error"
                assert "^" in str(info.value)

                with pytest.raises(ServerError) as info:
                    await client.sql("SELEC nope")
                assert info.value.error_type == "parse_error"

                stats = await client.stats()
                assert stats["planner"]["planner.plans"] >= 2
        finally:
            await server.close()

    asyncio.run(run())


def test_sql_rows_match_range_op_and_snapshot_pins():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        query = (
            "SELECT id@, x, y FROM points "
            "WHERE BOX(10, 60, 10, 60) CONTAINS POINT(x, y)"
        )
        try:
            async with await QueryClient.connect(
                *server.address
            ) as client:
                raw = await client.range_query(
                    "points", ("x", "y"), [[10, 60], [10, 60]]
                )
                response = await client.sql(query)
                assert sorted(
                    tuple(row) for row in response["rows"]
                ) == sorted(raw)

                # The SQL op reads the connection's pinned snapshot:
                # a commit on another connection must stay invisible.
                before = response["count"]
                async with await QueryClient.connect(
                    *server.address
                ) as writer:
                    await writer.insert("points", ["w1", 20, 20])
                    await writer.commit()
                after = await client.sql(query)
                assert after["count"] == before
                await client.refresh()
                refreshed = await client.sql(query)
                assert refreshed["count"] == before + 1
        finally:
            await server.close()

    asyncio.run(run())
