"""Tests for object decomposition into elements."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decompose import (
    BoxElementCursor,
    CoverMode,
    Element,
    ElementCursor,
    count_elements,
    decompose,
    decompose_box,
    split_region,
)
from repro.core.geometry import Box, Grid, box_classifier, circle_classifier
from repro.core.zvalue import ZValue


def covered_pixels(grid, zvalues):
    out = set()
    for z in zvalues:
        box = grid.region_box(z)
        out |= set(box.pixels())
    return out


def hyp_box(data, side):
    ranges = []
    for _ in range(2):
        a = data.draw(st.integers(0, side - 1))
        b = data.draw(st.integers(0, side - 1))
        ranges.append((min(a, b), max(a, b)))
    return Box(tuple(ranges))


class TestFigure2:
    def test_exact_labels(self):
        """The decomposition of Figure 2's box yields exactly the z
        values the figure shows (the big element is 001 per the
        caption)."""
        grid = Grid(2, 3)
        box = Box(((1, 3), (0, 4)))
        labels = sorted(str(z) for z in decompose_box(grid, box))
        assert labels == sorted(
            ["00001", "00011", "001", "010010", "011000", "011010"]
        )

    def test_output_is_z_ordered(self):
        grid = Grid(2, 3)
        zs = decompose_box(grid, Box(((1, 3), (0, 4))))
        assert zs == sorted(zs)


class TestDecomposeBox:
    def test_whole_space_is_one_element(self, grid8):
        zs = decompose_box(grid8, grid8.whole_space())
        assert zs == [ZValue.empty()]

    def test_single_pixel(self, grid8):
        zs = decompose_box(grid8, Box(((3, 3), (5, 5))))
        assert zs == [ZValue.from_point((3, 5), 3)]

    def test_box_outside_grid_is_empty(self, grid8):
        assert decompose_box(grid8, Box(((9, 12), (9, 12)))) == []

    def test_box_partially_outside_is_clipped(self, grid8):
        inside = decompose_box(grid8, Box(((6, 7), (6, 7))))
        spill = decompose_box(grid8, Box(((6, 12), (6, 12))))
        assert covered_pixels(grid8, inside) == covered_pixels(grid8, spill)

    def test_coverage_exact(self, grid8):
        box = Box(((1, 6), (2, 5)))
        zs = decompose_box(grid8, box)
        assert covered_pixels(grid8, zs) == set(box.pixels())

    def test_elements_disjoint(self, grid8):
        box = Box(((1, 6), (2, 5)))
        zs = decompose_box(grid8, box)
        total = sum(1 << (grid8.total_bits - len(z)) for z in zs)
        assert total == box.volume  # disjoint + exact coverage

    @settings(max_examples=60)
    @given(st.data())
    def test_random_boxes_partition(self, data):
        grid = Grid(2, 4)
        box = hyp_box(data, grid.side)
        zs = decompose_box(grid, box)
        assert zs == sorted(zs)
        assert covered_pixels(grid, zs) == set(box.pixels())
        total = sum(1 << (grid.total_bits - len(z)) for z in zs)
        assert total == box.volume

    @settings(max_examples=30)
    @given(st.data())
    def test_no_partial_overlap_between_elements(self, data):
        grid = Grid(2, 4)
        box = hyp_box(data, grid.side)
        zs = decompose_box(grid, box)
        for i, a in enumerate(zs):
            for b in zs[i + 1 :]:
                assert not a.is_related_to(b)

    def test_3d(self):
        grid = Grid(3, 3)
        box = Box(((1, 5), (2, 6), (0, 3)))
        zs = decompose_box(grid, box)
        assert covered_pixels(grid, zs) == set(box.pixels())

    def test_1d(self):
        grid = Grid(1, 4)
        box = Box(((3, 12),))
        zs = decompose_box(grid, box)
        assert covered_pixels(grid, zs) == set(box.pixels())
        # 1-d decomposition of [3,12]: maximal aligned dyadic blocks.
        assert len(zs) == 4  # [3], [4,7], [8,11], [12]


class TestMaxDepthAndCover:
    def test_outer_cover_is_superset(self, grid8):
        box = Box(((1, 6), (2, 5)))
        for depth in range(grid8.total_bits + 1):
            zs = decompose_box(grid8, box, max_depth=depth)
            assert set(box.pixels()) <= covered_pixels(grid8, zs)

    def test_inner_cover_is_subset(self, grid8):
        box = Box(((1, 6), (2, 5)))
        classify = box_classifier(box)
        for depth in range(grid8.total_bits + 1):
            zs = decompose(grid8, classify, max_depth=depth, cover=CoverMode.INNER)
            assert covered_pixels(grid8, zs) <= set(box.pixels())

    def test_full_depth_covers_coincide(self, grid8):
        box = Box(((1, 6), (2, 5)))
        classify = box_classifier(box)
        outer = decompose(grid8, classify, cover=CoverMode.OUTER)
        inner = decompose(grid8, classify, cover=CoverMode.INNER)
        assert outer == inner

    def test_max_depth_bounds_element_length(self, grid8):
        zs = decompose_box(grid8, Box(((1, 6), (2, 5))), max_depth=3)
        assert all(len(z) <= 3 for z in zs)

    def test_bad_max_depth(self, grid8):
        with pytest.raises(ValueError):
            decompose_box(grid8, Box(((0, 1), (0, 1))), max_depth=99)
        with pytest.raises(ValueError):
            decompose_box(grid8, Box(((0, 1), (0, 1))), max_depth=-1)

    def test_coarsening_reduces_element_count(self):
        grid = Grid(2, 6)
        box = Box(((0, 44), (0, 52)))
        full = len(decompose_box(grid, box))
        coarse = len(decompose_box(grid, box, max_depth=8))
        assert coarse <= full


class TestArbitraryObjects:
    def test_circle_decomposition_exact(self):
        grid = Grid(2, 4)
        classify = circle_classifier((8, 8), 5.0)
        zs = decompose(grid, classify)
        expected = {
            (x, y)
            for x in range(16)
            for y in range(16)
            if (x - 8) ** 2 + (y - 8) ** 2 <= 25
        }
        assert covered_pixels(grid, zs) == expected

    def test_count_elements_matches(self):
        grid = Grid(2, 4)
        classify = circle_classifier((8, 8), 5.0)
        assert count_elements(grid, classify) == len(decompose(grid, classify))


class TestElement:
    def test_of(self, grid8):
        e = Element.of(ZValue.from_string("001"), grid8)
        assert (e.zlo, e.zhi) == (8, 15)
        assert e.npixels == 8
        assert e.contains_code(8)
        assert e.contains_code(15)
        assert not e.contains_code(16)

    def test_str(self, grid8):
        assert "001" in str(Element.of(ZValue.from_string("001"), grid8))


class TestSplitRegion:
    def test_alternation(self, grid8):
        space = grid8.whole_space()
        (z0, low), (z1, high) = split_region(grid8, space, ZValue.empty())
        assert low == Box(((0, 3), (0, 7)))  # first split is on x
        assert high == Box(((4, 7), (0, 7)))
        (z00, low2), _ = split_region(grid8, low, z0)
        assert low2 == Box(((0, 3), (0, 3)))  # then y

    def test_cannot_split_pixel(self, grid8):
        pixel = Box(((3, 3), (5, 5)))
        z = ZValue.from_point((3, 5), 3)
        with pytest.raises(ValueError):
            split_region(grid8, pixel, z)


class TestElementCursor:
    def test_iterates_same_as_decompose(self, grid8):
        box = Box(((1, 6), (2, 5)))
        cursor = BoxElementCursor(grid8, box)
        streamed = [e.zvalue for e in cursor]
        assert streamed == decompose_box(grid8, box)

    def test_seek_skips_forward(self, grid8):
        box = Box(((1, 3), (0, 4)))
        cursor = BoxElementCursor(grid8, box)
        element = cursor.seek(20)
        assert element is not None
        assert element.zhi >= 20
        # Never moves backwards.
        again = cursor.seek(0)
        assert again == element

    def test_seek_to_end(self, grid8):
        cursor = BoxElementCursor(grid8, Box(((0, 1), (0, 1))))
        assert cursor.seek(grid8.npixels - 1) is None
        assert cursor.current is None

    def test_seek_matches_full_scan(self, grid8):
        box = Box(((1, 6), (2, 5)))
        all_elements = [e for e in BoxElementCursor(grid8, box)]
        for target in range(0, grid8.npixels, 5):
            cursor = BoxElementCursor(grid8, box)
            got = cursor.seek(target)
            expected = next(
                (e for e in all_elements if e.zhi >= target), None
            )
            assert got == expected, target

    def test_lazy_expansion_bounded(self):
        # Seeking deep into a large space must not expand everything.
        grid = Grid(2, 10)
        box = Box(((0, grid.side - 1), (0, grid.side - 1)))
        cursor = BoxElementCursor(grid, box)
        cursor.seek(grid.npixels - 1)
        assert cursor.nodes_expanded <= grid.total_bits + 1

    def test_box_outside_grid(self, grid8):
        cursor = BoxElementCursor(grid8, Box(((20, 30), (20, 30))))
        assert cursor.current is None

    def test_arbitrary_object_cursor(self):
        grid = Grid(2, 4)
        classify = circle_classifier((8, 8), 4.0)
        cursor = ElementCursor(grid, classify)
        streamed = [e.zvalue for e in cursor]
        assert streamed == decompose(grid, classify)
