"""Randomized linearizability harness for snapshot-isolated sessions.

N reader sessions (range queries, proximity queries, merge joins) race
M writer sessions committing insert/delete bursts.  Every read records
the session's pinned epoch and the byte-exact result; afterwards a
*serial oracle* — a fresh, concurrency-free database — replays the
committed batches in epoch order and re-runs each read against exactly
the commit prefix that was visible at its snapshot.  Snapshot isolation
holds iff every concurrent read is byte-identical to its oracle replay.

Schedules are seedable (the seed drives data, op mix, query boxes and
thread workloads); on failure the harness shrinks the workload —
halving batch counts and sizes while the failure reproduces — and
reports the smallest failing scale with the mismatch details.

A smoke subset runs in tier 1; the full seed sweep is marked
``concurrency`` and runs nightly (``pytest -m concurrency``).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import pytest

from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID

GRID = Grid(ndims=2, depth=6)
SIDE = GRID.side
SCHEMA = Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))

SMOKE_SEEDS = [0, 1, 2]
FULL_SEEDS = list(range(20))

Row = Tuple[Any, ...]
Op = Tuple[str, str, Row]


@dataclass
class Observation:
    """One read: what a session saw at its pinned epoch."""

    epoch: int
    kind: str  # "range" | "near" | "join"
    params: Tuple[Any, ...]
    result: str  # byte-exact repr of the rows/points seen


@dataclass
class Mismatch:
    observation: Observation
    expected: str


def _fresh_db(concurrency: bool) -> SpatialDatabase:
    db = SpatialDatabase(GRID, page_capacity=8, concurrency=concurrency)
    db.create_table("a", SCHEMA)
    db.create_table("b", SCHEMA)
    return db


def _random_box(rng: random.Random) -> Box:
    x0, x1 = sorted(rng.randrange(SIDE) for _ in range(2))
    y0, y1 = sorted(rng.randrange(SIDE) for _ in range(2))
    return Box(((x0, x1), (y0, y1)))


def _oracle_eval(
    db: SpatialDatabase, kind: str, params: Tuple[Any, ...]
) -> str:
    if kind == "range":
        table, box = params
        return repr(db.range_query(table, ("x", "y"), box).rows)
    if kind == "near":
        table, center, radius = params
        return repr(
            db.proximity_query(table, ("x", "y"), center, radius).rows
        )
    assert kind == "join"
    pa = {
        (row[1], row[2]) for row in db.catalog.relation("a")
    }
    pb = {
        (row[1], row[2]) for row in db.catalog.relation("b")
    }
    common = sorted(pa & pb, key=lambda p: GRID.zvalue(p).bits)
    return repr(common)


def _session_eval(session: "Any", kind: str, params: Tuple[Any, ...]) -> str:
    if kind == "range":
        table, box = params
        return repr(session.range_query(table, ("x", "y"), box).rows)
    if kind == "near":
        table, center, radius = params
        return repr(
            session.proximity_query(table, ("x", "y"), center, radius).rows
        )
    assert kind == "join"
    return repr(session.join_points("a", ("x", "y"), "b", ("x", "y")))


def _run_schedule(
    seed: int,
    nreaders: int = 4,
    nwriters: int = 2,
    batches_per_writer: int = 5,
    ops_per_batch: int = 8,
    reads_per_reader: int = 4,
) -> Tuple[List[Mismatch], List[Observation]]:
    """Run one concurrent schedule and oracle-check every observation.

    Returns (mismatches, observations); an empty mismatch list means
    every concurrent read was byte-identical to its serial replay.
    """
    db = _fresh_db(concurrency=True)
    rnd = random.Random(seed)

    # Seed both tables in one recorded group commit so the oracle's
    # epoch-ordered log covers *every* row that ever existed.
    commit_log: List[Tuple[int, List[Op]]] = []
    log_lock = threading.Lock()
    init_ops: List[Op] = []
    for table in ("a", "b"):
        for i in range(30):
            row = (f"{table}{i}", rnd.randrange(SIDE), rnd.randrange(SIDE))
            init_ops.append(("insert", table, row))
    with db.session() as setup:
        for op, table, row in init_ops:
            setup.insert(table, row)
        epoch = setup.commit()
    assert epoch is not None
    commit_log.append((epoch, init_ops))
    db.create_index("a_xy", "a", ("x", "y"))
    db.create_index("b_xy", "b", ("x", "y"))

    observations: List[Observation] = []
    obs_lock = threading.Lock()
    errors: List[BaseException] = []
    barrier = threading.Barrier(nreaders + nwriters)

    def writer(wid: int) -> None:
        try:
            wrnd = random.Random(f"{seed}-w-{wid}")
            barrier.wait()
            for batch in range(batches_per_writer):
                with db.session() as session:
                    ops: List[Op] = []
                    for k in range(ops_per_batch):
                        table = wrnd.choice(("a", "b"))
                        visible = session.table(table).rows
                        if visible and wrnd.random() < 0.4:
                            row = wrnd.choice(visible)
                            session.delete(table, row)
                            ops.append(("delete", table, row))
                        else:
                            row = (
                                f"w{wid}b{batch}k{k}",
                                wrnd.randrange(SIDE),
                                wrnd.randrange(SIDE),
                            )
                            session.insert(table, row)
                            ops.append(("insert", table, row))
                    epoch = session.commit()
                    assert epoch is not None
                    with log_lock:
                        commit_log.append((epoch, ops))
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    def reader(rid: int) -> None:
        try:
            rrnd = random.Random(f"{seed}-r-{rid}")
            barrier.wait()
            for _ in range(reads_per_reader):
                with db.session() as session:
                    kind = rrnd.choice(("range", "range", "near", "join"))
                    if kind == "range":
                        params: Tuple[Any, ...] = (
                            rrnd.choice(("a", "b")),
                            _random_box(rrnd),
                        )
                    elif kind == "near":
                        params = (
                            rrnd.choice(("a", "b")),
                            (rrnd.randrange(SIDE), rrnd.randrange(SIDE)),
                            float(rrnd.randrange(1, SIDE // 2)),
                        )
                    else:
                        params = ()
                    first = _session_eval(session, kind, params)
                    # A snapshot must also be *stable*: re-reading
                    # within the session sees the identical bytes.
                    second = _session_eval(session, kind, params)
                    assert first == second, "unstable snapshot"
                    with obs_lock:
                        observations.append(
                            Observation(session.epoch, kind, params, first)
                        )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(nwriters)
    ] + [threading.Thread(target=reader, args=(r,)) for r in range(nreaders)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    # Not vacuous: every thread did its full workload.
    assert len(observations) == nreaders * reads_per_reader
    assert len(commit_log) == 1 + nwriters * batches_per_writer

    # Nothing pinned, nothing retained: the teardown leak check.
    leaks = db.snapshots.leak_stats()
    assert leaks == {
        "snapshot.active_pins": 0,
        "snapshot.captured_indexes": 0,
        "cow.live_page_versions": 0,
    }, leaks

    return _oracle_replay(commit_log, observations), observations


def _oracle_replay(
    commit_log: List[Tuple[int, List[Op]]],
    observations: List[Observation],
) -> List[Mismatch]:
    """Serial replay: re-run every observation against a fresh,
    concurrency-free database holding exactly the commit prefix that
    was visible at the observation's pinned epoch."""
    oracle = _fresh_db(concurrency=False)
    oracle.create_index("a_xy", "a", ("x", "y"))
    oracle.create_index("b_xy", "b", ("x", "y"))
    commit_log = sorted(commit_log, key=lambda item: item[0])
    epochs = [item[0] for item in commit_log]
    assert epochs == sorted(set(epochs)), "commit epochs must be unique"

    mismatches: List[Mismatch] = []
    applied = 0
    for obs in sorted(observations, key=lambda o: o.epoch):
        while applied < len(commit_log) and commit_log[applied][0] <= obs.epoch:
            for op, table, row in commit_log[applied][1]:
                if op == "insert":
                    oracle.insert(table, row)
                else:
                    oracle.delete(table, row)
            applied += 1
        expected = _oracle_eval(oracle, obs.kind, obs.params)
        if expected != obs.result:
            mismatches.append(Mismatch(obs, expected))
    return mismatches


def _check_seed(seed: int) -> None:
    scale: Dict[str, int] = dict(
        nreaders=4,
        nwriters=2,
        batches_per_writer=5,
        ops_per_batch=8,
        reads_per_reader=4,
    )
    mismatches, _ = _run_schedule(seed, **scale)
    if not mismatches:
        return
    # Shrink: halve the workload while the failure reproduces, so the
    # reported counterexample is as small as the bug allows.
    smallest = (dict(scale), mismatches)
    current = dict(scale)
    while (
        current["batches_per_writer"] > 1 or current["ops_per_batch"] > 1
    ):
        candidate = dict(current)
        candidate["batches_per_writer"] = max(
            1, candidate["batches_per_writer"] // 2
        )
        candidate["ops_per_batch"] = max(1, candidate["ops_per_batch"] // 2)
        retry, _ = _run_schedule(seed, **candidate)
        if retry:
            smallest = (candidate, retry)
            current = candidate
        else:
            break
    scale_used, found = smallest
    first = found[0]
    pytest.fail(
        f"snapshot isolation violated (seed={seed}, scale={scale_used}, "
        f"{len(found)} mismatching reads): epoch={first.observation.epoch} "
        f"{first.observation.kind}{first.observation.params}\n"
        f"  saw:      {first.observation.result[:400]}\n"
        f"  expected: {first.expected[:400]}"
    )


@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_snapshot_linearizability_smoke(seed: int) -> None:
    """Tier-1 subset: a few seeds of the full randomized harness."""
    _check_seed(seed)


@pytest.mark.concurrency
@pytest.mark.parametrize("seed", FULL_SEEDS)
def test_snapshot_linearizability_sweep(seed: int) -> None:
    """The full nightly seed sweep (>= 4 readers, >= 2 writers each)."""
    _check_seed(seed)


def test_harness_detects_violations() -> None:
    """The oracle is not vacuous: doctored observations are flagged."""
    box = Box(((0, SIDE - 1), (0, SIDE - 1)))
    row = ("x0", 1, 2)
    commit_log: List[Tuple[int, List[Op]]] = [(1, [("insert", "a", row)])]
    good = Observation(1, "range", ("a", box), repr([row]))
    assert _oracle_replay(commit_log, [good]) == []
    # Dirty read: a session pinned *before* the commit claims the row.
    dirty = Observation(0, "range", ("a", box), repr([row]))
    assert len(_oracle_replay(commit_log, [dirty])) == 1
    # Stale read: a session pinned after the commit misses the row.
    stale = Observation(1, "range", ("a", box), repr([]))
    assert len(_oracle_replay(commit_log, [stale])) == 1


def test_sharded_index_sessions_see_stable_snapshots() -> None:
    """The same isolation contract holds over a sharded index."""
    db = _fresh_db(concurrency=True)
    rnd = random.Random(11)
    rows = [
        (f"a{i}", rnd.randrange(SIDE), rnd.randrange(SIDE))
        for i in range(64)
    ]
    with db.session() as setup:
        for row in rows:
            setup.insert("a", row)
        setup.commit()
    db.create_index("a_xy", "a", ("x", "y"), shards=4)
    box = Box(((0, SIDE - 1), (0, SIDE - 1)))
    with db.session() as session:
        before = session.range_query("a", ("x", "y"), box).rows
        stats = session.range_query_stats("a", ("x", "y"), box)
        for i in range(20):
            db.insert("a", (f"n{i}", rnd.randrange(SIDE), rnd.randrange(SIDE)))
        db.delete("a", rows[0])
        assert session.range_query("a", ("x", "y"), box).rows == before
        assert session.range_query_stats("a", ("x", "y"), box).matches == (
            stats.matches
        )
    live = db.range_query("a", ("x", "y"), box).rows
    assert sorted(live) != sorted(before)
    assert db.snapshots.leak_stats()["snapshot.active_pins"] == 0
