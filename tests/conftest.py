"""Shared fixtures for the test suite."""

import random

import pytest

from repro.core.geometry import Box, Grid


@pytest.fixture
def grid8() -> Grid:
    """The paper's 8x8 figure grid (d = 3)."""
    return Grid(ndims=2, depth=3)


@pytest.fixture
def grid64() -> Grid:
    """A 64x64 grid, big enough for interesting workloads."""
    return Grid(ndims=2, depth=6)


@pytest.fixture
def grid3d() -> Grid:
    """A small 3-d grid (16 per axis)."""
    return Grid(ndims=3, depth=4)


@pytest.fixture
def figure_box() -> Box:
    """The running example box of Figures 1/2/5: 1<=X<=3 & 0<=Y<=4."""
    return Box(((1, 3), (0, 4)))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xA6)


def random_box(rng: random.Random, grid: Grid) -> Box:
    """A uniformly random in-bounds box."""
    ranges = []
    for _ in range(grid.ndims):
        a = rng.randrange(grid.side)
        b = rng.randrange(grid.side)
        ranges.append((min(a, b), max(a, b)))
    return Box(tuple(ranges))


def random_points(rng: random.Random, grid: Grid, n: int):
    return [
        tuple(rng.randrange(grid.side) for _ in range(grid.ndims))
        for _ in range(n)
    ]
