"""Tests for the extended query surface: object queries, proximity
queries, k nearest neighbours, bulk loading and containment pairs."""

import math

import pytest

from repro.core.geometry import Box, circle_classifier, polygon_classifier
from repro.core.overlay import ElementRegion, containment_pairs
from repro.core.rangesearch import (
    MergeStats,
    SortedPointCursor,
    build_point_sequence,
    merge_search,
    object_search,
)
from repro.core.decompose import BoxElementCursor
from repro.storage.prefix_btree import ZkdTree

from conftest import random_box, random_points


class TestMergeSearchGeneralization:
    def test_merge_search_equals_range_search(self, grid64, rng):
        points = random_points(rng, grid64, 200)
        seq = build_point_sequence(grid64, points)
        box = Box(((10, 40), (20, 55)))
        via_cursor = list(
            merge_search(SortedPointCursor(seq), BoxElementCursor(grid64, box))
        )
        from repro.core.rangesearch import range_search

        via_box = list(range_search(SortedPointCursor(seq), grid64, box))
        assert via_cursor == via_box

    def test_object_search_circle(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        seq = build_point_sequence(grid64, points)
        classify = circle_classifier((32, 32), 12.0)
        got = list(object_search(SortedPointCursor(seq), grid64, classify))
        expected = sorted(
            (
                p
                for p in map(tuple, points)
                if (p[0] - 32) ** 2 + (p[1] - 32) ** 2 <= 144
            ),
            key=lambda p: grid64.zvalue(p).bits,
        )
        assert got == expected

    def test_object_search_polygon(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        seq = build_point_sequence(grid64, points)
        vertices = [(5.0, 5.0), (55.0, 10.0), (40.0, 58.0)]
        classify = polygon_classifier(vertices)
        got = set(object_search(SortedPointCursor(seq), grid64, classify))
        expected = {
            p
            for p in map(tuple, points)
            if classify(Box(((p[0], p[0]), (p[1], p[1])))).name == "INSIDE"
        }
        assert got == expected

    def test_coarse_object_search_is_superset(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        seq = build_point_sequence(grid64, points)
        classify = circle_classifier((32, 32), 15.0)
        exact = set(object_search(SortedPointCursor(seq), grid64, classify))
        coarse = set(
            object_search(
                SortedPointCursor(seq), grid64, classify, max_depth=6
            )
        )
        assert exact <= coarse


class TestZkdObjectQueries:
    def test_object_query_matches_brute_force(self, grid64, rng):
        points = random_points(rng, grid64, 400)
        tree = ZkdTree(grid64, page_capacity=15)
        tree.insert_many(points)
        result = tree.object_query(circle_classifier((40, 25), 10.0))
        expected = sorted(
            (
                p
                for p in map(tuple, points)
                if (p[0] - 40) ** 2 + (p[1] - 25) ** 2 <= 100
            ),
            key=lambda p: grid64.zvalue(p).bits,
        )
        assert list(result.matches) == expected
        assert result.pages_accessed < tree.npages

    def test_within_distance(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        tree = ZkdTree(grid64)
        tree.insert_many(points)
        result = tree.within_distance((32, 32), 8.0)
        for p in result.matches:
            assert math.dist(p, (32, 32)) <= 8.0
        outside = set(map(tuple, points)) - set(result.matches)
        for p in outside:
            assert math.dist(p, (32, 32)) > 8.0

    def test_within_distance_rejects_negative(self, grid64):
        tree = ZkdTree(grid64)
        with pytest.raises(ValueError):
            tree.within_distance((0, 0), -1.0)


class TestNearestNeighbours:
    def brute_knn(self, grid, points, center, k):
        def key(p):
            d2 = sum((a - b) ** 2 for a, b in zip(p, center))
            return (d2, grid.zvalue(p).bits)

        return sorted(map(tuple, points), key=key)[:k]

    def test_matches_brute_force(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        tree = ZkdTree(grid64)
        tree.insert_many(points)
        for center in [(0, 0), (32, 32), (63, 1), (10, 55)]:
            for k in (1, 3, 10):
                assert tree.nearest_neighbours(center, k) == self.brute_knn(
                    grid64, points, center, k
                ), (center, k)

    def test_k_larger_than_population(self, grid64):
        tree = ZkdTree(grid64)
        tree.insert_many([(1, 1), (2, 2)])
        assert len(tree.nearest_neighbours((0, 0), 10)) == 2

    def test_empty_tree(self, grid64):
        assert ZkdTree(grid64).nearest_neighbours((0, 0), 1) == []

    def test_rejects_bad_k(self, grid64):
        tree = ZkdTree(grid64)
        tree.insert((1, 1))
        with pytest.raises(ValueError):
            tree.nearest_neighbours((0, 0), 0)

    def test_3d(self, grid3d, rng):
        points = random_points(rng, grid3d, 200)
        tree = ZkdTree(grid3d)
        tree.insert_many(points)
        assert tree.nearest_neighbours((8, 8, 8), 5) == self.brute_knn(
            grid3d, points, (8, 8, 8), 5
        )


class TestBulkLoad:
    def test_same_content_as_incremental(self, grid64, rng):
        points = random_points(rng, grid64, 500)
        inc = ZkdTree(grid64, page_capacity=20)
        inc.insert_many(points)
        bulk = ZkdTree(grid64, page_capacity=20)
        bulk.bulk_load(points)
        bulk.tree.check_invariants()
        assert inc.points() == bulk.points()

    def test_fewer_pages_than_incremental(self, grid64, rng):
        points = random_points(rng, grid64, 500)
        inc = ZkdTree(grid64, page_capacity=20)
        inc.insert_many(points)
        bulk = ZkdTree(grid64, page_capacity=20)
        bulk.bulk_load(points)
        assert bulk.npages <= inc.npages
        # Perfect packing: ceil(n / capacity) pages.
        assert bulk.npages == (500 + 19) // 20

    def test_queries_after_bulk_load(self, grid64, rng):
        points = random_points(rng, grid64, 400)
        tree = ZkdTree(grid64, page_capacity=20)
        tree.bulk_load(points)
        box = random_box(rng, grid64)
        from repro.core.rangesearch import brute_force_search

        assert list(tree.range_query(box).matches) == brute_force_search(
            grid64, points, box
        )

    def test_maintenance_after_bulk_load(self, grid64, rng):
        points = random_points(rng, grid64, 200)
        tree = ZkdTree(grid64, page_capacity=8)
        tree.bulk_load(points)
        tree.insert((0, 0))
        assert (0, 0) in tree
        for p in points[:50]:
            assert tree.delete(tuple(p))
        tree.tree.check_invariants()
        assert len(tree) == 151

    def test_fill_factor(self, grid64, rng):
        points = random_points(rng, grid64, 400)
        packed = ZkdTree(grid64, page_capacity=20)
        packed.bulk_load(points, fill_factor=1.0)
        slack = ZkdTree(grid64, page_capacity=20)
        slack.bulk_load(points, fill_factor=0.5)
        assert slack.npages > packed.npages

    def test_requires_empty_tree(self, grid64):
        tree = ZkdTree(grid64)
        tree.insert((1, 1))
        with pytest.raises(ValueError):
            tree.bulk_load([(2, 2)])

    def test_empty_load(self, grid64):
        tree = ZkdTree(grid64)
        tree.bulk_load([])
        assert len(tree) == 0

    def test_rejects_bad_fill_factor(self, grid64):
        tree = ZkdTree(grid64)
        with pytest.raises(ValueError):
            tree.bulk_load([(1, 1)], fill_factor=0.0)

    def test_duplicates_survive_bulk_load(self, grid64):
        tree = ZkdTree(grid64, page_capacity=4)
        tree.bulk_load([(3, 3)] * 10)
        tree.tree.check_invariants()
        assert len(tree.range_query(Box(((3, 3), (3, 3)))).matches) == 10


class TestContainmentPairs:
    def test_basic_containment(self, grid64):
        outer = {
            "big": ElementRegion.from_box(grid64, Box(((0, 31), (0, 31)))),
            "elsewhere": ElementRegion.from_box(
                grid64, Box(((40, 50), (40, 50)))
            ),
        }
        inner = {
            "inside": ElementRegion.from_box(grid64, Box(((8, 15), (8, 15)))),
            "straddles": ElementRegion.from_box(
                grid64, Box(((28, 36), (8, 15)))
            ),
        }
        assert containment_pairs(outer, inner) == [("big", "inside")]

    def test_overlap_without_containment_excluded(self, grid64):
        outer = {"a": ElementRegion.from_box(grid64, Box(((0, 10), (0, 10))))}
        inner = {"b": ElementRegion.from_box(grid64, Box(((5, 15), (5, 15))))}
        assert containment_pairs(outer, inner) == []

    def test_self_containment(self, grid64):
        region = ElementRegion.from_box(grid64, Box(((3, 9), (4, 12))))
        assert containment_pairs({"x": region}, {"y": region}) == [("x", "y")]
