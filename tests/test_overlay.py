"""Tests for polygon overlay on element sequences (Section 6)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decompose import Element, decompose_box
from repro.core.geometry import Box, Grid, circle_classifier
from repro.core.overlay import ElementRegion, map_overlay

from conftest import random_box


def pixel_set(region: ElementRegion) -> set:
    grid = region.grid
    out = set()
    for box in region.boxes():
        out |= set(box.pixels())
    return out


def box_pixels(box: Box) -> set:
    return set(box.pixels())


class TestConstruction:
    def test_from_box(self, grid64):
        box = Box(((3, 17), (5, 40)))
        region = ElementRegion.from_box(grid64, box)
        assert region.area() == box.volume
        assert pixel_set(region) == box_pixels(box)

    def test_from_elements_normalizes(self, grid8):
        box = Box(((0, 3), (0, 3)))
        elements = [Element.of(z, grid8) for z in decompose_box(grid8, box)]
        a = ElementRegion.from_elements(grid8, elements)
        b = ElementRegion.from_box(grid8, box)
        assert a == b

    def test_from_object(self):
        grid = Grid(2, 4)
        region = ElementRegion.from_object(
            grid, circle_classifier((8, 8), 4.0)
        )
        expected = {
            (x, y)
            for x in range(16)
            for y in range(16)
            if (x - 8) ** 2 + (y - 8) ** 2 <= 16
        }
        assert pixel_set(region) == expected

    def test_empty_and_whole(self, grid8):
        assert ElementRegion.empty(grid8).area() == 0
        assert ElementRegion.whole(grid8).area() == 64

    def test_contains_point(self, grid64):
        region = ElementRegion.from_box(grid64, Box(((3, 7), (3, 7))))
        assert region.contains_point((5, 5))
        assert not region.contains_point((2, 5))


class TestBooleanOps:
    def test_intersection_of_boxes(self, grid64):
        a = ElementRegion.from_box(grid64, Box(((0, 20), (0, 20))))
        b = ElementRegion.from_box(grid64, Box(((10, 30), (10, 30))))
        inter = a & b
        assert pixel_set(inter) == box_pixels(Box(((10, 20), (10, 20))))

    def test_union_of_disjoint_boxes(self, grid64):
        a = ElementRegion.from_box(grid64, Box(((0, 3), (0, 3))))
        b = ElementRegion.from_box(grid64, Box(((10, 13), (10, 13))))
        assert (a | b).area() == 32

    def test_difference(self, grid64):
        a = ElementRegion.from_box(grid64, Box(((0, 7), (0, 7))))
        b = ElementRegion.from_box(grid64, Box(((4, 7), (0, 7))))
        assert pixel_set(a - b) == box_pixels(Box(((0, 3), (0, 7))))

    def test_complement_involution(self, grid8):
        region = ElementRegion.from_box(grid8, Box(((1, 6), (2, 5))))
        assert region.complement().complement() == region

    def test_grid_mismatch_raises(self, grid8, grid64):
        a = ElementRegion.from_box(grid8, Box(((0, 1), (0, 1))))
        b = ElementRegion.from_box(grid64, Box(((0, 1), (0, 1))))
        with pytest.raises(ValueError):
            a.union(b)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6))
    def test_set_model_agreement(self, seed):
        grid = Grid(2, 4)
        rng = random.Random(seed)
        a_box, b_box = random_box(rng, grid), random_box(rng, grid)
        a = ElementRegion.from_box(grid, a_box)
        b = ElementRegion.from_box(grid, b_box)
        pa, pb = box_pixels(a_box), box_pixels(b_box)
        assert pixel_set(a | b) == pa | pb
        assert pixel_set(a & b) == pa & pb
        assert pixel_set(a - b) == pa - pb
        assert pixel_set(a ^ b) == pa ^ pb
        assert a.overlaps(b) == bool(pa & pb)
        assert a.covers(b) == (pb <= pa)

    def test_extensional_equality(self, grid8):
        # Same pixels, built differently, compare equal.
        left = ElementRegion.from_box(grid8, Box(((0, 3), (0, 7))))
        right = ElementRegion.from_box(grid8, Box(((0, 3), (0, 3)))).union(
            ElementRegion.from_box(grid8, Box(((0, 3), (4, 7))))
        )
        assert left == right

    def test_canonical_elements_are_maximal(self, grid8):
        # The union of all four quadrants collapses to one element.
        whole = ElementRegion.whole(grid8)
        assert len(whole.elements()) == 1
        assert whole.elements()[0].zvalue.length == 0


class TestMapOverlay:
    def test_two_layer_overlay(self, grid64):
        soils = {
            "clay": ElementRegion.from_box(grid64, Box(((0, 31), (0, 63)))),
            "sand": ElementRegion.from_box(grid64, Box(((32, 63), (0, 63)))),
        }
        zoning = {
            "urban": ElementRegion.from_box(grid64, Box(((0, 63), (0, 31)))),
            "rural": ElementRegion.from_box(grid64, Box(((0, 63), (32, 63)))),
        }
        faces = map_overlay(soils, zoning)
        assert set(faces) == {
            ("clay", "urban"),
            ("clay", "rural"),
            ("sand", "urban"),
            ("sand", "rural"),
        }
        assert all(face.area() == 32 * 32 for face in faces.values())

    def test_disjoint_layers_produce_nothing(self, grid64):
        a = {"a": ElementRegion.from_box(grid64, Box(((0, 3), (0, 3))))}
        b = {"b": ElementRegion.from_box(grid64, Box(((20, 23), (20, 23))))}
        assert map_overlay(a, b) == {}

    def test_overlay_areas_partition_intersection(self, grid64, rng):
        layer_a = {
            f"a{i}": ElementRegion.from_box(grid64, random_box(rng, grid64))
            for i in range(3)
        }
        layer_b = {
            f"b{i}": ElementRegion.from_box(grid64, random_box(rng, grid64))
            for i in range(3)
        }
        faces = map_overlay(layer_a, layer_b)
        for (name_a, name_b), face in faces.items():
            expected = layer_a[name_a] & layer_b[name_b]
            assert face == expected
            assert not face.is_empty()

    def test_mixed_grids_rejected(self, grid8, grid64):
        a = {"a": ElementRegion.from_box(grid8, Box(((0, 1), (0, 1))))}
        b = {"b": ElementRegion.from_box(grid64, Box(((0, 1), (0, 1))))}
        with pytest.raises(ValueError):
            map_overlay(a, b)
