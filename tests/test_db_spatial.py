"""Tests for the spatial relational operators (Section 4's scenario)."""


import pytest

from repro.core.geometry import Box, Grid
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.db.spatial import (
    decompose_box_relation,
    decompose_objects,
    overlap_query,
    range_search_plan,
    shuffle_points,
    spatial_join,
)
from repro.db.types import INTEGER, OID, SPATIAL_OBJECT, SpatialObject

from conftest import random_box, random_points


def objects_relation(name, id_col, boxes):
    schema = Schema.of((id_col, OID), ("shape", SPATIAL_OBJECT))
    return Relation(
        name,
        schema,
        [
            (label, SpatialObject.from_box(label, box))
            for label, box in boxes.items()
        ],
    )


class TestDecomposeObjects:
    def test_flattens_to_1nf(self, grid64):
        rel = objects_relation(
            "P", "p@", {"a": Box(((1, 3), (0, 4)))}
        )
        grid = Grid(2, 3)
        out = decompose_objects(rel, "shape", grid, element_col="zr")
        assert out.schema.names == ["p@", "zr"]
        assert len(out) == 6  # Figure 2's element count
        assert all(row[0] == "a" for row in out)

    def test_carries_other_columns(self, grid64):
        schema = Schema.of(
            ("p@", OID), ("shape", SPATIAL_OBJECT), ("weight", INTEGER)
        )
        rel = Relation(
            "P",
            schema,
            [("a", SpatialObject.from_box("a", Box(((0, 7), (0, 7)))), 9)],
        )
        out = decompose_objects(rel, "shape", Grid(2, 3))
        assert out.schema.names == ["p@", "weight", "z"]
        assert out.rows[0][:2] == ("a", 9)

    def test_rejects_non_object_column(self, grid64):
        schema = Schema.of(("p@", OID), ("shape", OID))
        rel = Relation("P", schema, [("a", "not-an-object")])
        with pytest.raises(TypeError):
            decompose_objects(rel, "shape", grid64)

    def test_max_depth_coarsens(self, grid64):
        rel = objects_relation("P", "p@", {"a": Box(((1, 30), (2, 41)))})
        fine = decompose_objects(rel, "shape", grid64)
        coarse = decompose_objects(rel, "shape", grid64, max_depth=6)
        assert len(coarse) <= len(fine)


class TestShuffleAndBoxRelations:
    def test_shuffle_points(self):
        grid = Grid(2, 3)
        rel = Relation(
            "Points",
            Schema.of(("p@", OID), ("x", INTEGER), ("y", INTEGER)),
            [("p1", 3, 5)],
        )
        out = shuffle_points(rel, ["x", "y"], grid)
        assert out.schema.names == ["p@", "x", "y", "zp"]
        assert out.rows[0][3].bits == 27

    def test_shuffle_arity_check(self, grid64):
        rel = Relation("Points", Schema.of(("x", INTEGER)), [(1,)])
        with pytest.raises(ValueError):
            shuffle_points(rel, ["x"], grid64)

    def test_decompose_box_relation(self):
        grid = Grid(2, 3)
        out = decompose_box_relation(Box(((1, 3), (0, 4))), grid)
        assert out.schema.names == ["zb"]
        assert len(out) == 6


class TestSpatialJoinOperator:
    def test_join_schema_and_rows(self, grid64):
        grid = Grid(2, 3)
        p = objects_relation("P", "p@", {"a": Box(((0, 3), (0, 3)))})
        q = objects_relation("Q", "q@", {"b": Box(((2, 5), (2, 5)))})
        r = decompose_objects(p, "shape", grid, element_col="zr")
        s = decompose_objects(q, "shape", grid, element_col="zs")
        rs = spatial_join(r, s, "zr", "zs", grid)
        assert rs.schema.names == ["p@", "zr", "q@", "zs"]
        assert len(rs) >= 1
        for row in rs:
            assert row[1].is_related_to(row[3])

    def test_colliding_names_prefixed(self, grid64):
        grid = Grid(2, 3)
        p = objects_relation("P", "id@", {"a": Box(((0, 3), (0, 3)))})
        q = objects_relation("Q", "id@", {"b": Box(((2, 5), (2, 5)))})
        r = decompose_objects(p, "shape", grid, element_col="zr")
        s = decompose_objects(q, "shape", grid, element_col="zs")
        rs = spatial_join(r, s, "zr", "zs", grid)
        assert rs.schema.names == ["id@", "zr", "right_id@", "zs"]


class TestOverlapQuery:
    def test_paper_scenario(self, grid64):
        p = objects_relation(
            "parcels",
            "p@",
            {
                "p1": Box(((0, 15), (0, 15))),
                "p2": Box(((40, 50), (40, 50))),
            },
        )
        q = objects_relation(
            "zones",
            "q@",
            {
                "zA": Box(((10, 20), (10, 20))),
                "zB": Box(((60, 63), (60, 63))),
            },
        )
        result = overlap_query(p, q, "shape", "p@", "q@", grid=grid64)
        assert sorted(result.rows) == [("p1", "zA")]

    def test_duplicate_elimination(self, grid64):
        # Two heavily overlapping boxes join through many elements, but
        # the result has one row per object pair.
        p = objects_relation("P", "p@", {"a": Box(((0, 30), (0, 30)))})
        q = objects_relation("Q", "q@", {"b": Box(((1, 31), (1, 31)))})
        result = overlap_query(p, q, "shape", "p@", "q@", grid=grid64)
        assert result.rows == [("a", "b")]

    def test_requires_grid(self, grid64):
        p = objects_relation("P", "p@", {"a": Box(((0, 3), (0, 3)))})
        with pytest.raises(ValueError):
            overlap_query(p, p, "shape", "p@")

    def test_matches_box_intersection_truth(self, grid64, rng):
        boxes_p = {f"p{i}": random_box(rng, grid64) for i in range(4)}
        boxes_q = {f"q{i}": random_box(rng, grid64) for i in range(4)}
        p = objects_relation("P", "p@", boxes_p)
        q = objects_relation("Q", "q@", boxes_q)
        result = overlap_query(p, q, "shape", "p@", "q@", grid=grid64)
        expected = {
            (np, nq)
            for np, bp in boxes_p.items()
            for nq, bq in boxes_q.items()
            if bp.intersects(bq)
        }
        assert set(result.rows) == expected


class TestRangeSearchPlan:
    def test_matches_brute_force(self, grid64, rng):
        points = random_points(rng, grid64, 150)
        rel = Relation(
            "Points",
            Schema.of(("p@", OID), ("x", INTEGER), ("y", INTEGER)),
            [(f"p{i}", x, y) for i, (x, y) in enumerate(points)],
        )
        box = Box(((5, 30), (10, 50)))
        result = range_search_plan(rel, ["x", "y"], box, grid64)
        assert result.schema.names == ["x", "y"]
        expected = sorted(
            (x, y) for x, y in map(tuple, points) if 5 <= x <= 30 and 10 <= y <= 50
        )
        assert sorted(result.rows) == expected

    def test_empty_result(self, grid64):
        rel = Relation(
            "Points",
            Schema.of(("p@", OID), ("x", INTEGER), ("y", INTEGER)),
            [("p0", 0, 0)],
        )
        result = range_search_plan(rel, ["x", "y"], Box(((5, 6), (5, 6))), grid64)
        assert result.rows == []
