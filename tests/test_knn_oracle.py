"""Brute-force oracle differential suite for the shifted-ordering k-NN.

Every surface that serves a k-NN — the raw :func:`repro.proximity.knn`
operator over a :class:`ZkdTree` or a :class:`ShardedSpatialStore`, the
database facade, snapshot sessions (index-backed and row-store paths),
semantic-cache-enabled indexes, the SQL ``NEAREST`` clause on both of
its plans, and the TCP server — must return rows *byte-identical* to an
O(n) brute-force oracle that sorts by ``(distance^2, z code)`` and
truncates.

Also pins the **saturation** edge treatment of the shifted orderings:
shifting near the domain boundary must clamp at ``2**bits - 1``, never
wrap to coordinate 0 (wrap-around breaks the locality lemma and makes a
corner query see candidates from the far corner).
"""

import asyncio
import random

import pytest

from repro.core.geometry import Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.proximity import (
    knn,
    shift_vectors,
    shifted_code,
    shifted_point,
    ShiftedOrderings,
)
from repro.server import QueryClient, QueryService, serve
from repro.shard.store import ShardedSpatialStore
from repro.sql import execute_sql
from repro.storage.prefix_btree import ZkdTree
from repro.workloads import knn_workload, sky_catalog

GRID = Grid(ndims=2, depth=6)


def oracle_points(grid, points, center, k):
    """The k nearest distinct points, ties by z code — O(n log n)."""
    ranked = sorted(
        (
            sum((a - b) ** 2 for a, b in zip(p, center)),
            grid.zvalue(p).bits,
            p,
        )
        for p in set(points)
    )
    return [p for _, _, p in ranked[: min(k, len(ranked))]]


def oracle_rows(grid, rows, coord_idx, center, k):
    """The k nearest rows: stable sort by ``(distance^2, z code)``."""

    def key(row):
        point = tuple(row[i] for i in coord_idx)
        return (
            sum((a - b) ** 2 for a, b in zip(point, center)),
            grid.zvalue(point).bits,
        )

    return sorted(rows, key=key)[: min(k, len(rows))]


def unique_points(rng, grid, n):
    side = grid.side
    points = set()
    while len(points) < n:
        points.add(tuple(rng.randrange(side) for _ in range(grid.ndims)))
    return sorted(points)


def centers(rng, grid, n):
    side = grid.side
    return [
        tuple(rng.randrange(side) for _ in range(grid.ndims))
        for _ in range(n)
    ]


# ---------------------------------------------------------------------
# Raw operator vs oracle, across stores
# ---------------------------------------------------------------------


class TestStoreOracle:
    def test_tree_matches_oracle(self):
        rng = random.Random(11)
        points = unique_points(rng, GRID, 180)
        tree = ZkdTree(GRID, page_capacity=8)
        tree.bulk_load(points)
        for center in centers(rng, GRID, 12):
            for k in (1, 3, 8, 200):
                assert knn(tree, GRID, center, k) == oracle_points(
                    GRID, points, center, k
                )

    def test_sharded_store_matches_oracle_and_tree(self):
        rng = random.Random(12)
        points = unique_points(rng, GRID, 150)
        tree = ZkdTree(GRID, page_capacity=8)
        tree.bulk_load(points)
        store = ShardedSpatialStore.build(GRID, points, nshards=3)
        for center in centers(rng, GRID, 10):
            want = oracle_points(GRID, points, center, 6)
            assert knn(store, GRID, center, 6) == want
            assert knn(tree, GRID, center, 6) == want

    def test_exact_mode_equals_tree_growing_radius_search(self):
        """Same tie-break convention as ``ZkdTree.nearest_neighbours``
        makes the two searches byte-identical, not just set-equal."""
        rng = random.Random(13)
        points = unique_points(rng, GRID, 120)
        tree = ZkdTree(GRID, page_capacity=8)
        tree.bulk_load(points)
        for center in centers(rng, GRID, 10):
            assert knn(tree, GRID, center, 5) == tree.nearest_neighbours(
                center, 5
            )

    def test_mutation_rebuilds_cached_orderings(self):
        """The per-store orderings cache keys on ``mutation_epoch`` —
        an insert after the first query must be visible."""
        tree = ZkdTree(GRID, page_capacity=8)
        tree.insert_many([(50, 50), (60, 60)])
        assert knn(tree, GRID, (10, 10), 1) == [(50, 50)]
        tree.insert((10, 11))
        assert knn(tree, GRID, (10, 10), 1) == [(10, 11)]
        tree.delete((10, 11))
        assert knn(tree, GRID, (10, 10), 1) == [(50, 50)]

    def test_k_larger_than_store_returns_everything(self):
        points = [(1, 1), (2, 2), (3, 3)]
        tree = ZkdTree(GRID, page_capacity=8)
        tree.bulk_load(points)
        assert knn(tree, GRID, (0, 0), 99) == oracle_points(
            GRID, points, (0, 0), 99
        )

    def test_empty_store_and_bad_arguments(self):
        tree = ZkdTree(GRID, page_capacity=8)
        assert knn(tree, GRID, (0, 0), 3) == []
        with pytest.raises(ValueError):
            knn(tree, GRID, (0, 0), 0)
        with pytest.raises(ValueError):
            knn(tree, GRID, (0, 0), 1, mode="fuzzy")


# ---------------------------------------------------------------------
# Database facade, cache twin, sessions
# ---------------------------------------------------------------------


def _build_db(rng, n=160, concurrency=False, cache=False, index=True):
    db = SpatialDatabase(
        GRID, page_capacity=8, concurrency=concurrency, cache=cache
    )
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    rows = [
        (f"p{i}", x, y)
        for i, (x, y) in enumerate(unique_points(rng, GRID, n))
    ]
    db.insert_many("points", rows)
    if index:
        db.create_index("points_xy", "points", ("x", "y"))
    return db, rows


class TestDatabaseOracle:
    def test_rows_match_row_oracle(self):
        rng = random.Random(21)
        db, rows = _build_db(rng)
        for center in centers(rng, GRID, 8):
            for k in (1, 5, 11):
                got = list(
                    db.knn_query("points", ("x", "y"), center, k).rows
                )
                assert got == oracle_rows(GRID, rows, (1, 2), center, k)

    def test_cache_enabled_index_is_byte_identical(self):
        rng_a, rng_b = random.Random(22), random.Random(22)
        cached, rows = _build_db(rng_a, cache=True)
        plain, _ = _build_db(rng_b, cache=False)
        for center in centers(random.Random(23), GRID, 8):
            got = list(
                cached.knn_query("points", ("x", "y"), center, 7).rows
            )
            want = list(
                plain.knn_query("points", ("x", "y"), center, 7).rows
            )
            assert got == want == oracle_rows(
                GRID, rows, (1, 2), center, 7
            )

    def test_requires_index(self):
        db, _ = _build_db(random.Random(24), n=20, index=False)
        with pytest.raises(ValueError):
            db.knn_query("points", ("x", "y"), (0, 0), 1)

    def test_session_serves_pinned_snapshot(self):
        """A row inserted after the pin is invisible to the session's
        k-NN but visible to the database's."""
        rng = random.Random(25)
        db, rows = _build_db(rng, concurrency=True)
        center = (7, 9)
        with db.session() as session:
            before = oracle_rows(GRID, rows, (1, 2), center, 4)
            assert (
                list(
                    session.knn_query("points", ("x", "y"), center, 4).rows
                )
                == before
            )
            nearest = ("new", center[0], center[1])
            db.insert("points", nearest)
            assert (
                list(
                    session.knn_query("points", ("x", "y"), center, 4).rows
                )
                == before
            )
            after = list(
                db.knn_query("points", ("x", "y"), center, 4).rows
            )
            assert after == oracle_rows(
                GRID, rows + [nearest], (1, 2), center, 4
            )
            assert after[0] == nearest

    def test_session_row_store_path_without_visible_index(self):
        """An index born *after* the pin has no snapshot capture: the
        session falls back to the visible-row point store — and the
        answer must not change."""
        rng = random.Random(26)
        db, rows = _build_db(rng, concurrency=True, index=False)
        with db.session() as session:
            db.create_index("points_xy", "points", ("x", "y"))
            for center in centers(rng, GRID, 6):
                got = list(
                    session.knn_query("points", ("x", "y"), center, 5).rows
                )
                assert got == oracle_rows(GRID, rows, (1, 2), center, 5)


# ---------------------------------------------------------------------
# SQL NEAREST: knn-probe plan and ranked-after-filters plan
# ---------------------------------------------------------------------


class TestSqlNearest:
    def test_probe_plan_matches_row_oracle(self):
        rng = random.Random(31)
        db, rows = _build_db(rng)
        before = db.planner_stats.get("planner.knn_probes", 0)
        out = execute_sql(
            db,
            "SELECT id@, x, y FROM points "
            "NEAREST 6 TO POINT(30, 40) BY POINT(x, y)",
        )
        assert out.rows == oracle_rows(GRID, rows, (1, 2), (30, 40), 6)
        assert db.planner_stats["planner.knn_probes"] == before + 1

    def test_filtered_plan_matches_row_oracle(self):
        rng = random.Random(32)
        db, rows = _build_db(rng)
        out = execute_sql(
            db,
            "SELECT id@, x, y FROM points WHERE x >= 20 "
            "NEAREST 5 TO POINT(10, 10) BY POINT(x, y)",
        )
        kept = [row for row in rows if row[1] >= 20]
        assert out.rows == oracle_rows(GRID, kept, (1, 2), (10, 10), 5)

    def test_tautological_filter_agrees_with_probe_plan(self):
        """``WHERE x >= 0`` forces the ranked-after-filters plan; the
        rows must equal the knn-probe plan's."""
        db, _ = _build_db(random.Random(33))
        probe = execute_sql(
            db,
            "SELECT id@, x, y FROM points "
            "NEAREST 7 TO POINT(50, 12) BY POINT(x, y)",
        )
        filtered = execute_sql(
            db,
            "SELECT id@, x, y FROM points WHERE x >= 0 "
            "NEAREST 7 TO POINT(50, 12) BY POINT(x, y)",
        )
        assert probe.rows == filtered.rows

    def test_session_target_matches_database(self):
        rng = random.Random(34)
        db, rows = _build_db(rng, concurrency=True)
        query = (
            "SELECT id@, x, y FROM points "
            "NEAREST 4 TO POINT(14, 58) BY POINT(x, y)"
        )
        with db.session() as session:
            assert (
                execute_sql(db, query).rows
                == execute_sql(db, query, session=session).rows
                == oracle_rows(GRID, rows, (1, 2), (14, 58), 4)
            )


# ---------------------------------------------------------------------
# Server path (NEAREST over the wire)
# ---------------------------------------------------------------------


class TestServerNearest:
    def test_server_rows_match_local_execution(self):
        rng = random.Random(41)
        db, rows = _build_db(rng, concurrency=True)
        query = (
            "SELECT id@, x, y FROM points "
            "NEAREST 5 TO POINT(33, 21) BY POINT(x, y)"
        )
        want = oracle_rows(GRID, rows, (1, 2), (33, 21), 5)
        assert execute_sql(db, query).rows == want

        async def run():
            service = QueryService(db)
            server = await serve(service)
            try:
                async with await QueryClient.connect(
                    *server.address
                ) as client:
                    return await client.sql(query)
            finally:
                await server.close()

        response = asyncio.run(run())
        assert response["mode"] == "rows"
        assert [tuple(row) for row in response["rows"]] == want


# ---------------------------------------------------------------------
# Saturation at the domain boundary (satellite: no wrap-around)
# ---------------------------------------------------------------------


class TestSaturation:
    def test_shifted_point_saturates_never_wraps(self):
        side = GRID.side
        top = side - 1
        for shift in shift_vectors(GRID):
            shifted = shifted_point((top, top), shift, side)
            assert shifted == (top, top)
            for c in (0, 1, top - 1, top):
                (sc,) = shifted_point((c,), shift, side)
                # Never below the original coordinate: wrap-around
                # (``(c + shift) % side``) would violate this.
                assert c <= sc <= top

    def test_shifted_orderings_stay_monotone_per_axis(self):
        """Saturation keeps each shifted copy monotone: a larger
        coordinate never maps to a smaller shifted coordinate."""
        side = GRID.side
        for shift in shift_vectors(GRID):
            mapped = [
                shifted_point((c, 0), shift, side)[0] for c in range(side)
            ]
            assert mapped == sorted(mapped)

    def test_top_corner_keeps_maximal_z_code(self):
        """Under wrap-around the fully-shifted far corner would get a
        tiny z code and sort next to the origin; saturation pins it at
        the maximum."""
        top = GRID.side - 1
        corner = (top,) * GRID.ndims
        want = GRID.zvalue(corner).bits
        for shift in shift_vectors(GRID):
            assert shifted_code(GRID, corner, shift) == want

    def test_knn_correct_at_both_corners(self):
        """Clusters hugging (0, 0) and (top, top): a corner query must
        return its own cluster, in every store."""
        top = GRID.side - 1
        low = [(dx, dy) for dx in range(3) for dy in range(3)]
        high = [(top - dx, top - dy) for dx in range(3) for dy in range(3)]
        points = sorted(set(low + high))
        tree = ZkdTree(GRID, page_capacity=8)
        tree.bulk_load(points)
        store = ShardedSpatialStore.build(GRID, points, nshards=2)
        for center, cluster in (((0, 0), low), ((top, top), high)):
            want = oracle_points(GRID, points, center, len(cluster))
            assert set(want) == set(cluster)
            assert knn(tree, GRID, center, len(cluster)) == want
            assert knn(store, GRID, center, len(cluster)) == want

    def test_boundary_candidates_come_from_the_near_corner(self):
        """The raw candidate windows at a boundary query must surface
        the adjacent cluster even in approx mode — the regression a
        wrapped ordering fails."""
        top = GRID.side - 1
        low = [(dx, dy) for dx in range(3) for dy in range(3)]
        high = [(top - dx, top - dy) for dx in range(3) for dy in range(3)]
        index = ShiftedOrderings(GRID, sorted(set(low + high)))
        for center, cluster in (((0, 0), low), ((top, top), high)):
            candidates = index.candidates(center, 1)
            assert any(p in cluster for p in candidates)


# ---------------------------------------------------------------------
# Nightly sweep (slow tier)
# ---------------------------------------------------------------------


@pytest.mark.slow
class TestNightlySweep:
    def test_sky_scale_sweep_all_stores(self):
        grid = Grid(ndims=2, depth=9)
        catalog = sky_catalog(grid, 2500, seed=51)
        points = sorted(set(catalog.points))
        tree = ZkdTree(grid, page_capacity=32)
        tree.bulk_load(points)
        store = ShardedSpatialStore.build(grid, points, nshards=4)
        for center in knn_workload(grid, catalog, 40, seed=52):
            for k in (1, 4, 16):
                want = oracle_points(grid, points, center, k)
                assert knn(tree, grid, center, k) == want
                assert knn(store, grid, center, k) == want
                assert tree.nearest_neighbours(center, k) == want
