"""Differential tests: every compiled SQL query must be row-identical
to a hand-built operator-tree equivalent — over the plain database, a
sharded index, and a pinned snapshot session — and invariant under the
optimizer's conjunct reordering."""

import random

import pytest

from repro.core.geometry import Box, Grid
from repro.db import (
    FLOAT,
    INTEGER,
    OID,
    SPATIAL_OBJECT,
    Schema,
    SpatialDatabase,
    col,
)
from repro.db.query import Query
from repro.db.spatial import overlap_query
from repro.db.types import SpatialObject
from repro.sql import compile_sql, execute_sql

SIDE = 128  # Grid(2, 7)


def make_db(seed, npoints=250, shards=1, concurrency=False):
    grid = Grid(2, 7)
    db = SpatialDatabase(
        grid, page_capacity=16, concurrency=concurrency
    )
    db.create_table(
        "points",
        Schema.of(
            ("id@", OID), ("x", INTEGER), ("y", INTEGER), ("w", FLOAT)
        ),
    )
    rng = random.Random(seed)
    db.insert_many(
        "points",
        [
            (
                f"p{i}",
                rng.randrange(SIDE),
                rng.randrange(SIDE),
                round(rng.uniform(0, 10), 2),
            )
            for i in range(npoints)
        ],
    )
    db.create_index("points_xy", "points", ("x", "y"), shards=shards)
    return db


def add_objects(db, seed, count=24):
    rng = random.Random(seed)
    for table, prefix in (("regions", "r"), ("zones", "z")):
        db.create_table(
            table, Schema.of(("id@", OID), ("geom", SPATIAL_OBJECT))
        )
        rows = []
        for i in range(count):
            x = rng.randrange(SIDE - 12)
            y = rng.randrange(SIDE - 12)
            w = rng.randrange(2, 12)
            h = rng.randrange(2, 12)
            rows.append(
                (
                    f"{prefix}{i}",
                    SpatialObject.from_box(
                        f"{prefix}{i}", Box(((x, x + w), (y, y + h)))
                    ),
                )
            )
        db.insert_many(table, rows)


SQL = (
    "SELECT id@, x, w FROM points "
    "WHERE BOX(8, 88, 8, 88) CONTAINS POINT(x, y) "
    "AND x BETWEEN 20 AND 70 AND x + y > 60 AND w < 8.5 "
    "ORDER BY id@"
)


def hand_built(db):
    return (
        Query(db, "points")
        .within(("x", "y"), Box(((8, 88), (8, 88))))
        .where((col("x") >= 20) & (col("x") <= 70))
        .where(col("x") + col("y") > 60)
        .where(col("w") < 8.5)
        .select("id@", "x", "w")
        .order_by("id@")
        .run()
    )


class TestSingleTable:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sql_matches_operator_tree(self, seed):
        db = make_db(seed)
        assert execute_sql(db, SQL).rows == hand_built(db).rows

    @pytest.mark.parametrize("seed", [0, 1])
    def test_reorder_invariant(self, seed):
        db = make_db(seed)
        ordered = execute_sql(db, SQL, reorder=True)
        naive = execute_sql(db, SQL, reorder=False)
        assert ordered.rows == naive.rows
        assert ordered.columns == naive.columns

    @pytest.mark.parametrize("seed", [0, 1])
    def test_sharded_matches_unsharded(self, seed):
        plain = make_db(seed, shards=1)
        sharded = make_db(seed, shards=4)
        try:
            assert (
                execute_sql(plain, SQL).rows
                == execute_sql(sharded, SQL).rows
            )
        finally:
            entry = sharded.catalog.index("points_xy")
            entry.tree.close()

    def test_session_snapshot_is_stable(self):
        db = make_db(7, concurrency=True)
        before = execute_sql(db, SQL).rows
        with db.session() as session:
            rng = random.Random(99)
            db.insert_many(
                "points",
                [
                    (
                        f"late{i}",
                        rng.randrange(SIDE),
                        rng.randrange(SIDE),
                        1.0,
                    )
                    for i in range(80)
                ],
            )
            pinned = execute_sql(db, SQL, session=session).rows
            live = execute_sql(db, SQL).rows
        assert pinned == before
        assert len(live) >= len(before)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_random_windows(self, seed):
        db = make_db(seed)
        rng = random.Random(seed + 100)
        for _ in range(6):
            x0 = rng.randrange(SIDE - 16)
            y0 = rng.randrange(SIDE - 16)
            x1 = x0 + rng.randrange(4, SIDE - x0)
            y1 = y0 + rng.randrange(4, SIDE - y0)
            cut = rng.randrange(SIDE)
            sql = (
                f"SELECT id@ FROM points "
                f"WHERE BOX({x0}, {x1}, {y0}, {y1}) "
                f"CONTAINS POINT(x, y) AND y <= {cut} ORDER BY id@"
            )
            expected = (
                Query(db, "points")
                .within(("x", "y"), Box(((x0, x1), (y0, y1))))
                .where(col("y") <= cut)
                .select("id@")
                .order_by("id@")
                .run()
            )
            assert execute_sql(db, sql).rows == expected.rows


class TestJoin:
    JOIN_SQL = (
        "SELECT regions.id@, zones.id@ FROM regions "
        "JOIN zones ON OVERLAPS(regions.geom, zones.geom) "
        "ORDER BY regions.id@, zones.id@"
    )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_join_matches_overlap_query(self, seed):
        db = make_db(seed, npoints=10)
        add_objects(db, seed + 50)
        oracle = overlap_query(
            db.table("regions"),
            db.table("zones"),
            "geom",
            "id@",
            grid=db.grid,
        )
        expected = sorted(set(oracle.rows))
        got = execute_sql(db, self.JOIN_SQL).rows
        assert got == expected

    def test_join_reorder_invariant(self):
        db = make_db(3, npoints=10)
        add_objects(db, 53)
        sql = (
            "SELECT regions.id@ FROM regions "
            "JOIN zones ON OVERLAPS(regions.geom, zones.geom) "
            "WHERE zones.id@ != 'z0' AND regions.id@ != 'r1' "
            "ORDER BY regions.id@"
        )
        assert (
            execute_sql(db, sql, reorder=True).rows
            == execute_sql(db, sql, reorder=False).rows
        )

    def test_both_strategies_agree(self, monkeypatch):
        import repro.sql.compiler as compiler_mod

        db = make_db(4, npoints=10)
        add_objects(db, 54)
        baseline = execute_sql(db, self.JOIN_SQL).rows
        real = compiler_mod.choose_join_strategy

        for forced in ("z-merge", "nested-loop"):
            monkeypatch.setattr(
                compiler_mod,
                "choose_join_strategy",
                lambda *a, forced=forced: (forced,) + real(*a)[1:],
            )
            assert execute_sql(db, self.JOIN_SQL).rows == baseline


class TestServerBatchedPath:
    def test_finish_rows_equals_run(self):
        """The server's split execution (batcher fetches the window,
        ``finish_rows`` applies filters + tail) must equal ``run()``."""
        db = make_db(11)
        compiled = compile_sql(db, SQL)
        table, cols, box = compiled.batch_window()
        assert (table, cols) == ("points", ("x", "y"))
        fetched = db.range_query(table, cols, box)
        split = compile_sql(db, SQL).finish_rows(list(fetched.rows))
        assert split.rows == compiled.run().rows
