"""Property fuzzing for the frame codec and deadline arithmetic.

Two surfaces where hostile or degenerate inputs must never escape the
typed taxonomy:

* the frame codec — arbitrary byte soup either decodes to a dict or
  raises :class:`ProtocolError` (the `FrameError` subclass for
  envelope failures); nothing else ever escapes, and well-formed
  frames round-trip exactly;
* deadline arithmetic — any float budget (NaN, infinities, negatives)
  saturates into ``[0, MAX_BUDGET]``, ``remaining()`` never goes
  negative at any clock value, and ``expired()`` agrees with
  ``remaining() == 0``.

Example counts stay modest: this file runs in tier 1 on every push.
"""

from __future__ import annotations

import json
import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.deadline import MAX_BUDGET, Deadline, DeadlineExceeded
from repro.server.protocol import (
    FrameError,
    ProtocolError,
    decode_frame,
    encode_frame,
    parse_deadline,
)

# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=512))
def test_decode_frame_total_over_byte_soup(blob):
    """Any byte soup: a dict out or ProtocolError — never another
    exception type, never a crash."""
    try:
        out = decode_frame(blob)
    except ProtocolError:
        return
    assert isinstance(out, dict)


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10,
)


@settings(max_examples=150, deadline=None)
@given(st.dictionaries(st.text(max_size=10), json_values, max_size=5))
def test_encode_decode_round_trip(payload):
    frame = encode_frame(payload)
    assert frame.endswith(b"\n")
    assert frame.count(b"\n") == 1  # framing invariant: one line
    assert decode_frame(frame[:-1]) == json.loads(json.dumps(payload))


@settings(max_examples=200, deadline=None)
@given(json_values)
def test_parse_deadline_total(spec):
    """Any JSON value in deadline_ms: a positive finite float (in
    seconds) out, or ProtocolError — and FrameError is never used for
    an operand failure."""
    try:
        out = parse_deadline({"deadline_ms": spec})
    except ProtocolError as exc:
        assert not isinstance(exc, FrameError)
        return
    if out is None:
        assert spec is None
        return
    assert isinstance(out, float)
    assert out > 0.0
    assert math.isfinite(out)


# ----------------------------------------------------------------------
# Deadline arithmetic
# ----------------------------------------------------------------------

any_float = st.floats(allow_nan=True, allow_infinity=True)
finite_clock = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


@settings(max_examples=300, deadline=None)
@given(budget=any_float, start=finite_clock, elapsed=any_float)
def test_deadline_arithmetic_saturates(budget, start, elapsed):
    now = [start]
    d = Deadline(budget, clock=lambda: now[0])
    assert 0.0 <= d.budget <= MAX_BUDGET
    # remaining() never negative, never above the clamped budget (up
    # to one rounding ulp of the absolute expiry).
    slack = 2.0 * math.ulp(abs(d.expires_at) + 1.0)
    assert 0.0 <= d.remaining() <= d.budget + slack
    # Jump the clock anywhere (including NaN/inf deltas): remaining
    # still never goes negative and never raises.
    if elapsed == elapsed:  # NaN clock deltas are not a real clock
        now[0] = start + elapsed
    remaining = d.remaining()
    assert remaining >= 0.0
    if d.expired():
        assert remaining == 0.0
        try:
            d.check("fuzz")
            raise AssertionError("expired deadline must raise on check")
        except DeadlineExceeded as exc:
            assert exc.site == "fuzz"
    else:
        d.check("fuzz")  # must not raise


@settings(max_examples=200, deadline=None)
@given(budget=st.floats(min_value=1e-6, max_value=1e6), start=finite_clock)
def test_deadline_expires_exactly_at_budget(budget, start):
    # A budget below the clock's float resolution at this magnitude
    # legitimately rounds to instant expiry; skip those.
    assume(start + budget > start)
    now = [start]
    d = Deadline(budget, clock=lambda: now[0])
    assert not d.expired()
    now[0] = start + d.budget
    assert d.expired()
    assert d.remaining() == 0.0
