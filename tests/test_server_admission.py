"""Admission control under load: typed rejections, slot accounting,
and the no-residue teardown guarantee.

The asyncio controller is tested directly (quota, backpressure,
admission timeout, slot transfer) and through the service/TCP stack
(slow-query timeout frees the slot; a killed socket releases the
snapshot pin with zero COW residue).  Everything runs on plain
``asyncio.run`` — no async test plugin required.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.server import (
    AdmissionController,
    AdmissionTimeout,
    Overloaded,
    QueryClient,
    QueryService,
    QuotaExceeded,
    serve,
)
from repro.shard.executor import ResiliencePolicy
from repro.workloads.datasets import make_dataset

GRID = Grid(ndims=2, depth=6)

FAST_POLICY = ResiliencePolicy(
    max_retries=2, backoff_base=0.01, backoff_factor=2.0, timeout=0.05
)


def _build_db(npoints=600, concurrency=True):
    db = SpatialDatabase(GRID, page_capacity=16, concurrency=concurrency)
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    points = make_dataset("C", GRID, npoints, seed=0).points
    db.insert_many(
        "points", [(f"p{i}", x, y) for i, (x, y) in enumerate(points)]
    )
    db.create_index("points_xy", "points", ("x", "y"))
    return db


# ----------------------------------------------------------------------
# The controller itself
# ----------------------------------------------------------------------


def test_quota_exhaustion_is_a_typed_rejection():
    async def run():
        ctl = AdmissionController(
            max_inflight=8, client_quota=2, queue_limit=8
        )
        await ctl.acquire("greedy")
        await ctl.acquire("greedy")
        with pytest.raises(QuotaExceeded) as excinfo:
            await ctl.acquire("greedy")
        assert excinfo.value.reason == "quota"
        assert excinfo.value.retry_after >= 0.0
        # The quota is per client: others are unaffected.
        await ctl.acquire("polite")
        ctl.release("polite")
        ctl.release("greedy")
        ctl.release("greedy")
        assert ctl.inflight == 0
        assert ctl.held_by("greedy") == 0
        assert ctl.stats["server.rejected.quota"] == 1

    asyncio.run(run())


def test_bounded_queue_sheds_burst_overflow():
    async def run():
        ctl = AdmissionController(
            max_inflight=2,
            client_quota=10,
            queue_limit=2,
            policy=ResiliencePolicy(
                max_retries=0, backoff_base=0.01,
                backoff_factor=2.0, timeout=5.0,
            ),
        )
        await ctl.acquire("a")
        await ctl.acquire("b")
        queued = [
            asyncio.ensure_future(ctl.acquire(name))
            for name in ("c", "d")
        ]
        await asyncio.sleep(0)  # let both park in the wait queue
        assert ctl.queue_depth == 2
        # The burst beyond the queue bound is shed, not buffered.
        with pytest.raises(Overloaded) as excinfo:
            await ctl.acquire("e")
        assert excinfo.value.reason == "overload"
        assert ctl.held_by("e") == 0
        # Releases hand slots straight to the waiters.
        ctl.release("a")
        ctl.release("b")
        await asyncio.gather(*queued)
        assert ctl.inflight == 2
        assert ctl.queue_depth == 0
        ctl.release("c")
        ctl.release("d")
        assert ctl.inflight == 0
        assert ctl.stats["server.rejected.overload"] == 1
        assert ctl.stats["server.queue_peak"] == 2

    asyncio.run(run())


def test_admission_timeout_when_saturated():
    async def run():
        ctl = AdmissionController(
            max_inflight=1, client_quota=4, queue_limit=4,
            policy=FAST_POLICY,
        )
        await ctl.acquire("holder")
        t0 = time.perf_counter()
        with pytest.raises(AdmissionTimeout) as excinfo:
            await ctl.acquire("waiter")
        assert excinfo.value.reason == "timeout"
        assert time.perf_counter() - t0 >= 0.04
        # The timed-out waiter charges nothing and leaves no ghost
        # entry in the queue.
        assert ctl.held_by("waiter") == 0
        assert ctl.queue_depth == 0
        ctl.release("holder")
        assert ctl.inflight == 0
        assert ctl.stats["server.rejected.timeout"] == 1

    asyncio.run(run())


def test_slot_context_manager_releases_on_error():
    async def run():
        ctl = AdmissionController(max_inflight=1, client_quota=2)
        with pytest.raises(RuntimeError):
            async with ctl.slot("c"):
                assert ctl.inflight == 1
                raise RuntimeError("handler blew up")
        assert ctl.inflight == 0
        assert ctl.held_by("c") == 0

    asyncio.run(run())


# ----------------------------------------------------------------------
# Through the service: slow queries and dead sockets
# ----------------------------------------------------------------------


def test_slow_query_times_out_and_frees_its_slot():
    async def run():
        db = _build_db()
        service = QueryService(
            db, max_inflight=2, request_timeout=0.05, batching=True
        )
        real_execute = service._execute_batch

        def slow_execute(key, requests):
            time.sleep(0.3)
            return real_execute(key, requests)

        service.batcher._execute = slow_execute
        client = service.connect()
        try:
            request = {
                "op": "range",
                "table": "points",
                "cols": ["x", "y"],
                "box": [[0, 20], [0, 20]],
                "id": 1,
            }
            response = await service.handle_request(client, request)
            assert response.get("ok") is False
            assert response["rejected"]["reason"] == "timeout"
            assert response["id"] == 1
            # The slot came back even though the worker is still
            # grinding: the slow client cannot wedge the server.
            assert service.admission.inflight == 0
            # After the worker drains, the service answers normally.
            await asyncio.sleep(0.4)
            service.batcher._execute = real_execute
            service.request_timeout = 5.0
            response = await service.handle_request(
                client, dict(request, id=2)
            )
            assert response.get("ok") is True
            expected = db.range_query(
                "points", ("x", "y"), Box(((0, 20), (0, 20)))
            ).rows
            assert [tuple(r) for r in response["rows"]] == expected
        finally:
            service.disconnect(client)
            service.close()

    asyncio.run(run())


def test_killed_connection_releases_pin_without_residue():
    async def run():
        db = _build_db()
        service = QueryService(db)
        server = await serve(service)
        try:
            reader = await QueryClient.connect(*server.address)
            writer = await QueryClient.connect(*server.address)
            rows = await reader.range_query(
                "points", ("x", "y"), [[0, 30], [0, 30]]
            )
            assert rows  # the pinned snapshot actually served reads
            assert list(db.snapshots.pinned_epochs)
            # Churn epochs while the reader's pin retains old versions.
            for i in range(3):
                await writer.insert("points", [f"w{i}", 1 + i, 1])
                await writer.commit()
            assert await reader.range_query(
                "points", ("x", "y"), [[0, 30], [0, 30]]
            ) == rows  # still the pinned snapshot
            await writer.close()
            reader.kill()  # no goodbye: simulated client crash
            for _ in range(200):
                if service.stats["server.disconnects"] >= 2:
                    break
                await asyncio.sleep(0.01)
            assert service.stats["server.disconnects"] >= 2
            db.snapshots.reclaim()
            assert not list(db.snapshots.pinned_epochs)
            leaks = db.snapshots.leak_stats()
            assert all(v == 0 for v in leaks.values()), leaks
        finally:
            await server.close()

    asyncio.run(run())


def test_quota_rejection_over_the_wire_then_retry_succeeds():
    async def run():
        db = _build_db()
        service = QueryService(
            db,
            max_inflight=4,
            client_quota=1,
            queue_limit=4,
            request_timeout=5.0,
        )
        real_execute = service._execute_batch

        def slow_execute(key, requests):
            time.sleep(0.2)
            return real_execute(key, requests)

        service.batcher._execute = slow_execute
        server = await serve(service)
        try:
            client = await QueryClient.connect(*server.address)
            box = [[0, 20], [0, 20]]
            first = asyncio.ensure_future(
                client.range_query("points", ("x", "y"), box)
            )
            await asyncio.sleep(0.05)  # first holds the client's slot
            # retry=False surfaces the typed rejection directly.
            from repro.server import ServerRejected

            with pytest.raises(ServerRejected) as excinfo:
                await client.range_query(
                    "points", ("x", "y"), box, retry=False
                )
            assert excinfo.value.reason == "quota"
            # retry=True sleeps out the retry_after hint and succeeds.
            second = await client.range_query("points", ("x", "y"), box)
            assert await first == second
            await client.close()
        finally:
            await server.close()

    asyncio.run(run())
