"""Binder tests: catalog resolution, type checking, typed BindErrors
with positions, and the planner's conjunct classification."""

import pytest

from repro.core.geometry import Box, Grid
from repro.db import (
    FLOAT,
    INTEGER,
    OID,
    SPATIAL_OBJECT,
    STRING,
    Schema,
    SpatialDatabase,
)
from repro.db.types import SpatialObject
from repro.sql import BindError, bind, parse


@pytest.fixture
def db():
    database = SpatialDatabase(Grid(2, 6))
    database.create_table(
        "points",
        Schema.of(
            ("id@", OID),
            ("x", INTEGER),
            ("y", INTEGER),
            ("w", FLOAT),
            ("tag", STRING),
        ),
    )
    database.insert_many(
        "points",
        [
            ("p0", 3, 4, 0.5, "red"),
            ("p1", 10, 12, 1.5, "blue"),
            ("p2", 40, 50, 2.5, "red"),
        ],
    )
    for table, prefix in (("regions", "r"), ("zones", "z")):
        database.create_table(
            table, Schema.of(("id@", OID), ("geom", SPATIAL_OBJECT))
        )
        database.insert_many(
            table,
            [
                (
                    f"{prefix}{i}",
                    SpatialObject.from_box(
                        f"{prefix}{i}",
                        Box(((i * 8, i * 8 + 6), (i * 8, i * 8 + 6))),
                    ),
                )
                for i in range(3)
            ],
        )
    return database


def _bind(db, source):
    return bind(db, parse(source), source)


def _err(db, source):
    with pytest.raises(BindError) as info:
        _bind(db, source)
    return info.value


class TestResolution:
    def test_unknown_table(self, db):
        err = _err(db, "SELECT * FROM nope")
        assert "unknown table" in str(err)

    def test_unknown_column_names_alternatives(self, db):
        source = "SELECT id@, bogus FROM points"
        err = _err(db, source)
        assert "bogus" in str(err) and "id@" in str(err)
        assert source[err.pos:err.pos + 5] == "bogus"

    def test_qualified_lookup(self, db):
        bound = _bind(db, "SELECT points.x FROM points")
        assert bound.projection == ["x"]

    def test_wrong_qualifier(self, db):
        err = _err(db, "SELECT zones.x FROM points")
        assert "zones" in str(err)

    def test_ambiguous_column_in_join(self, db):
        err = _err(
            db,
            "SELECT id@ FROM regions "
            "JOIN zones ON OVERLAPS(regions.geom, zones.geom)",
        )
        assert "ambiguous" in str(err)

    def test_join_output_columns_are_qualified(self, db):
        bound = _bind(
            db,
            "SELECT regions.id@ FROM regions "
            "JOIN zones ON OVERLAPS(regions.geom, zones.geom)",
        )
        assert bound.output_names == ["regions_id@", "zones_id@"]
        assert bound.projection == ["regions_id@"]


class TestTypeChecking:
    def test_where_must_be_boolean(self, db):
        err = _err(db, "SELECT * FROM points WHERE x + y")
        assert "boolean" in str(err).lower()

    def test_arithmetic_needs_numbers(self, db):
        err = _err(db, "SELECT * FROM points WHERE tag + 1 = 2")
        assert "numbers" in str(err).lower()

    def test_string_vs_number_comparison_rejected(self, db):
        _err(db, "SELECT * FROM points WHERE tag > 3")

    def test_string_equality_allowed(self, db):
        bound = _bind(db, "SELECT * FROM points WHERE tag = 'red'")
        assert bound.conjuncts[0].kind == "residual"

    def test_contains_needs_matching_dimensions(self, db):
        err = _err(
            db,
            "SELECT * FROM points WHERE BOX(0, 4) CONTAINS POINT(x)",
        )
        assert "dimension" in str(err).lower() or "2" in str(err)

    def test_contains_needs_integer_columns(self, db):
        _err(
            db,
            "SELECT * FROM points "
            "WHERE BOX(0, 4, 0, 4) CONTAINS POINT(w, y)",
        )

    def test_contains_needs_integer_bounds(self, db):
        _err(
            db,
            "SELECT * FROM points "
            "WHERE BOX(0.5, 4, 0, 4) CONTAINS POINT(x, y)",
        )

    def test_overlaps_needs_spatial_objects(self, db):
        err = _err(
            db,
            "SELECT * FROM points "
            "JOIN zones ON OVERLAPS(points.x, zones.geom)",
        )
        assert "spatial" in str(err).lower()

    def test_overlaps_needs_one_column_per_side(self, db):
        _err(
            db,
            "SELECT * FROM regions "
            "JOIN zones ON OVERLAPS(regions.geom, regions.geom)",
        )

    def test_self_join_rejected(self, db):
        _err(
            db,
            "SELECT * FROM regions "
            "JOIN regions ON OVERLAPS(regions.geom, regions.geom)",
        )

    def test_selecting_consumed_geometry_rejected(self, db):
        err = _err(
            db,
            "SELECT regions.geom FROM regions "
            "JOIN zones ON OVERLAPS(regions.geom, zones.geom)",
        )
        assert "geom" in str(err)

    def test_projection_duplicates_rejected(self, db):
        _err(db, "SELECT x, x FROM points")

    def test_order_by_needs_visible_column(self, db):
        _err(db, "SELECT x FROM points ORDER BY bogus")


class TestClassification:
    def test_z_window(self, db):
        bound = _bind(
            db,
            "SELECT * FROM points "
            "WHERE BOX(0, 16, 0, 16) CONTAINS POINT(x, y)",
        )
        (conjunct,) = bound.conjuncts
        assert conjunct.kind == "z-window"
        assert conjunct.box == Box(((0, 16), (0, 16)))
        assert conjunct.coord_cols == ("x", "y")

    def test_between_is_attr_range(self, db):
        bound = _bind(
            db, "SELECT * FROM points WHERE x BETWEEN 3 AND 9"
        )
        (conjunct,) = bound.conjuncts
        assert conjunct.kind == "attr-range"
        assert (conjunct.low, conjunct.high) == (3, 9)

    def test_flipped_compare_is_attr_range(self, db):
        bound = _bind(db, "SELECT * FROM points WHERE 7 >= x")
        (conjunct,) = bound.conjuncts
        assert conjunct.kind == "attr-range"
        assert conjunct.high == 7 and conjunct.low is None

    def test_equality_marked(self, db):
        bound = _bind(db, "SELECT * FROM points WHERE x = 10")
        (conjunct,) = bound.conjuncts
        assert conjunct.kind == "attr-range" and conjunct.equality

    def test_inequality_is_residual(self, db):
        bound = _bind(db, "SELECT * FROM points WHERE x != 10")
        assert bound.conjuncts[0].kind == "residual"

    def test_arithmetic_is_residual(self, db):
        bound = _bind(db, "SELECT * FROM points WHERE x + y > 10")
        assert bound.conjuncts[0].kind == "residual"

    def test_and_flattens_or_does_not(self, db):
        bound = _bind(
            db,
            "SELECT * FROM points "
            "WHERE x > 1 AND y > 2 AND (x = 1 OR y = 2)",
        )
        kinds = [c.kind for c in bound.conjuncts]
        assert kinds == ["attr-range", "attr-range", "residual"]

    def test_join_pushdown_routing(self, db):
        bound = _bind(
            db,
            "SELECT * FROM regions "
            "JOIN zones ON OVERLAPS(regions.geom, zones.geom) "
            "WHERE regions.id@ = 'r1' AND zones.id@ = 'z0'",
        )
        assert len(bound.left_push) == 1
        assert len(bound.right_push) == 1
        assert bound.conjuncts == []


class TestPredicates:
    def test_lowered_predicates_execute(self, db):
        bound = _bind(
            db,
            "SELECT * FROM points "
            "WHERE BOX(0, 16, 0, 16) CONTAINS POINT(x, y)",
        )
        relation = db.table("points")
        predicate = bound.conjuncts[0].predicate.bind(relation.schema)
        kept = [row[0] for row in relation.rows if predicate(row)]
        assert kept == ["p0", "p1"]
