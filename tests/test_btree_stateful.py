"""Stateful property-based testing of the B+-tree against a model.

Hypothesis drives random sequences of insert/delete/search/scan/seek
operations; after every step the tree must agree with a sorted-list
model and pass its structural invariant check.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import settings

from repro.storage.btree import BPlusTree
from repro.storage.buffer import BufferManager
from repro.storage.page import PageStore

KEYS = st.integers(min_value=0, max_value=255)


class BTreeMachine(RuleBasedStateMachine):
    @initialize(
        capacity=st.sampled_from([4, 6, 8]),
        order=st.sampled_from([3, 4, 6]),
        frames=st.sampled_from([2, 4]),
    )
    def setup(self, capacity, order, frames):
        store = PageStore(capacity)
        self.tree = BPlusTree(
            store,
            BufferManager(store, frames),
            order=order,
            total_bits=8,
        )
        self.model = []
        self.counter = 0

    @rule(key=KEYS)
    def insert(self, key):
        value = self.counter
        self.counter += 1
        self.tree.insert(key, value)
        self.model.append((key, value))

    @rule(key=KEYS)
    def delete_key(self, key):
        existing = sorted(
            (v for k, v in self.model if k == key)
        )
        removed = self.tree.delete(key)
        if existing:
            assert removed
            # The tree removes *one* record with that key; mirror by
            # removing the one it actually removed (detected below by
            # comparing search results is overkill — remove any one and
            # fix up via full comparison in the invariant instead).
            remaining = self.tree.search(key)
            gone = set(existing) - set(remaining)
            assert len(gone) == 1
            self.model.remove((key, gone.pop()))
        else:
            assert not removed

    @rule(key=KEYS)
    def search(self, key):
        expected = sorted(v for k, v in self.model if k == key)
        assert sorted(self.tree.search(key)) == expected

    @rule(start=KEYS)
    def seek_and_scan(self, start):
        cursor = self.tree.cursor(start=start)
        got = []
        record = cursor.current
        while record is not None and len(got) < 10:
            got.append((record.z, record.payload))
            record = cursor.step()
        expected = sorted(
            ((k, v) for k, v in self.model if k >= start)
        )[: len(got)]
        assert sorted(got) == sorted(expected)
        if got:
            assert [k for k, _ in got] == sorted(k for k, _ in got)

    @invariant()
    def structure_is_valid(self):
        if not hasattr(self, "tree"):
            return
        self.tree.check_invariants()

    @invariant()
    def full_scan_matches_model(self):
        if not hasattr(self, "tree"):
            return
        assert sorted(self.tree.items()) == sorted(self.model)


BTreeMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestBTreeStateful = BTreeMachine.TestCase
