"""End-to-end oracle tests: every search variant, fast path on and off.

``brute_force_search`` is the ground truth; the three range-search
variants must agree with it — and with each other — whether they run on
the scalar reference kernels (``use_fast=False``) or the batched
bit-twiddling kernels and cached decomposer (``use_fast=True``).
Datasets cover uniform random points and tight Gaussian-ish clusters
(the z-order worst case for skipping), and a stateful insert/search
round-trip exercises the cached decomposer against a mutating tree.
"""

import random

import pytest

from conftest import random_box, random_points

from repro.core import fastz
from repro.core.decompose import decompose_box
from repro.core.geometry import Box, Grid
from repro.core.rangesearch import (
    MergeStats,
    SortedPointCursor,
    brute_force_search,
    build_point_sequence,
    range_search,
    range_search_bigmin,
    range_search_simple,
)
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.spatial import range_search_plan
from repro.db.types import INTEGER, OID
from repro.storage.prefix_btree import ZkdTree


def clustered_points(rng: random.Random, grid: Grid, n: int):
    """Points in a few tight clusters (hot spots on the curve)."""
    side = grid.side
    centers = [
        tuple(rng.randrange(side) for _ in range(grid.ndims))
        for _ in range(4)
    ]
    spread = max(1, side // 16)
    points = []
    for _ in range(n):
        center = rng.choice(centers)
        points.append(
            tuple(
                min(side - 1, max(0, c + rng.randrange(-spread, spread + 1)))
                for c in center
            )
        )
    return points


def all_variants(grid, points, box, use_fast):
    """Run every search variant and return the sorted result sets."""
    records = build_point_sequence(grid, points, use_fast=use_fast)
    results = {}
    results["optimized"] = sorted(
        range_search(
            SortedPointCursor(records), grid, box, use_fast=use_fast
        )
    )
    results["bigmin"] = sorted(
        range_search_bigmin(
            SortedPointCursor(records), grid, box, use_fast=use_fast
        )
    )
    if use_fast:
        elements = fastz.elements_many(
            grid, fastz.decompose_box_cached(grid, box)
        )
    else:
        from repro.core.decompose import Element

        elements = [
            Element.of(z, grid) for z in decompose_box(grid, box)
        ]
    results["simple"] = sorted(range_search_simple(records, elements))
    return results


@pytest.mark.parametrize("dataset", ["uniform", "clustered"])
@pytest.mark.parametrize("ndims,depth", [(2, 6), (3, 4)])
def test_variants_agree_with_brute_force(dataset, ndims, depth):
    grid = Grid(ndims=ndims, depth=depth)
    rng = random.Random(hash((dataset, ndims, depth)) & 0xFFFF)
    if dataset == "uniform":
        points = random_points(rng, grid, 300)
    else:
        points = clustered_points(rng, grid, 300)
    for _ in range(15):
        box = random_box(rng, grid)
        truth = sorted(set(brute_force_search(grid, points, box)))
        deduped_truth = sorted(set(truth))
        for use_fast in (False, True):
            results = all_variants(grid, sorted(set(points)), box, use_fast)
            for variant, matched in results.items():
                assert sorted(set(matched)) == deduped_truth, (
                    variant,
                    use_fast,
                    box,
                )


def test_fast_and_slow_paths_identical_including_duplicates(grid64, rng):
    points = random_points(rng, grid64, 400) * 2  # duplicates included
    for _ in range(10):
        box = random_box(rng, grid64)
        slow = all_variants(grid64, sorted(points), box, use_fast=False)
        fast = all_variants(grid64, sorted(points), box, use_fast=True)
        assert slow == fast


def test_out_of_space_and_degenerate_boxes(grid64, rng):
    points = random_points(rng, grid64, 100)
    records = build_point_sequence(grid64, points)
    boxes = [
        Box(((200, 300), (200, 300))),          # fully outside
        Box(((0, 200), (0, 200))),              # overhanging the space
        Box(((5, 5), (7, 7))),                  # single pixel
        grid64.whole_space(),                   # everything
    ]
    for box in boxes:
        truth = sorted(set(brute_force_search(grid64, points, box)))
        for use_fast in (False, True):
            got = sorted(
                set(
                    range_search(
                        SortedPointCursor(records),
                        grid64,
                        box,
                        use_fast=use_fast,
                    )
                )
            )
            assert got == truth


def test_merge_stats_match_between_paths(grid64, rng):
    """The bigmin fast path must take the *same* seeks, not just return
    the same points."""
    points = sorted(set(random_points(rng, grid64, 300)))
    records = build_point_sequence(grid64, points)
    for _ in range(10):
        box = random_box(rng, grid64)
        slow_stats, fast_stats = MergeStats(), MergeStats()
        slow = list(
            range_search_bigmin(
                SortedPointCursor(records), grid64, box, slow_stats,
                use_fast=False,
            )
        )
        fast = list(
            range_search_bigmin(
                SortedPointCursor(records), grid64, box, fast_stats,
                use_fast=True,
            )
        )
        assert slow == fast
        assert slow_stats == fast_stats


# ----------------------------------------------------------------------
# Stateful round-trip: inserts interleaved with cached-decomposer queries
# ----------------------------------------------------------------------


def test_stateful_insert_search_roundtrip(grid64):
    rng = random.Random(0xBEEF)
    tree = ZkdTree(grid64, page_capacity=8, buffer_frames=4)
    live = set()
    for step in range(12):
        batch = random_points(rng, grid64, 40)
        if step % 2:
            tree.insert_many(batch, use_fast=True)
        else:
            for point in batch:
                tree.insert(point)
        live.update(map(tuple, batch))
        for _ in range(3):
            box = random_box(rng, grid64)
            truth = sorted(
                set(brute_force_search(grid64, live, box))
            )
            for use_bigmin in (False, True):
                fast = tree.range_query(
                    box, use_bigmin=use_bigmin, use_fast=True
                )
                slow = tree.range_query(
                    box, use_bigmin=use_bigmin, use_fast=False
                )
                assert sorted(set(fast.matches)) == truth
                assert fast.matches == slow.matches
                assert fast.pages_accessed == slow.pages_accessed
    # The cached decomposer actually served repeated boxes.
    assert fastz.decompose_box_cache_info().hits > 0


def test_bulk_load_fast_matches_slow(grid64, rng):
    points = random_points(rng, grid64, 500)
    fast_tree = ZkdTree(grid64, page_capacity=10)
    fast_tree.bulk_load(points, use_fast=True)
    slow_tree = ZkdTree(grid64, page_capacity=10)
    slow_tree.bulk_load(points, use_fast=False)
    assert len(fast_tree) == len(slow_tree) == len(points)
    assert fast_tree.points() == slow_tree.points()
    assert fast_tree.npages == slow_tree.npages
    box = random_box(rng, grid64)
    assert (
        fast_tree.range_query(box).matches
        == slow_tree.range_query(box).matches
    )


def test_relational_plan_fast_matches_slow(grid64, rng):
    from repro.db.relation import Relation

    schema = Schema.of(("id", OID), ("x", INTEGER), ("y", INTEGER))
    rel = Relation("pts", schema)
    for i, (x, y) in enumerate(random_points(rng, grid64, 200)):
        rel.insert((i, x, y))
    for _ in range(5):
        box = random_box(rng, grid64)
        fast = range_search_plan(rel, ["x", "y"], box, grid64, use_fast=True)
        slow = range_search_plan(
            rel, ["x", "y"], box, grid64, use_fast=False
        )
        assert sorted(fast.rows) == sorted(slow.rows)


def test_database_range_query_fast_matches_slow(grid64):
    rng = random.Random(0xD6)
    db = SpatialDatabase(grid64, page_capacity=8)
    db.create_table(
        "cities", Schema.of(("c@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    points = random_points(rng, grid64, 150)
    for i, (x, y) in enumerate(points):
        db.insert("cities", (f"c{i}", x, y))
    db.create_index("cities_xy", "cities", ("x", "y"))
    for _ in range(8):
        box = random_box(rng, grid64)
        fast = db.range_query("cities", ("x", "y"), box, use_fast=True)
        slow = db.range_query("cities", ("x", "y"), box, use_fast=False)
        assert sorted(fast.rows) == sorted(slow.rows)
        truth = {
            (x, y)
            for x, y in points
            if box.contains_point((x, y))
        }
        assert {(r[1], r[2]) for r in fast.rows} == truth
