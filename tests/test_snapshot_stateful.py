"""Stateful property-based testing of snapshot pin/commit/reclaim.

Hypothesis drives random interleavings of pin / unpin / write-commit /
reclaim against one SnapshotManager coordinating a real in-memory
ZkdTree.  The machine's model records, for every pinned epoch, the
exact point set that was committed when the pin was taken; invariants:

* *No reclaimed-while-pinned*: every pinned snapshot's view always
  re-reads its recorded point set byte-for-byte — if a page version a
  pin still needed were reclaimed (or torn by a writer) the view would
  produce different bytes or raise.
* *Reclamation converges*: once an epoch is unpinned, a further
  reclaim pass frees nothing (unpin already reclaimed everything that
  epoch held), and with no pins at all the version maps and capture
  tables are empty.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.concurrency import SnapshotManager
from repro.core.geometry import Grid
from repro.storage.prefix_btree import ZkdTree

GRID = Grid(ndims=2, depth=5)
SIDE = GRID.side

COORDS = st.tuples(
    st.integers(min_value=0, max_value=SIDE - 1),
    st.integers(min_value=0, max_value=SIDE - 1),
)


class SnapshotMachine(RuleBasedStateMachine):
    @initialize(points=st.lists(COORDS, min_size=0, max_size=12))
    def setup(self, points):
        self.manager = SnapshotManager()
        self.tree = ZkdTree(
            GRID, page_capacity=4, buffer_frames=2, snapshots=self.manager
        )
        if points:
            self.tree.insert_many(points)
        # pinned epoch -> (pin count, frozen point list at pin time)
        self.pins: dict = {}

    # -- operations ------------------------------------------------------

    @rule(point=COORDS)
    def commit_insert(self, point):
        self.tree.insert(point)

    @rule(point=COORDS)
    def commit_delete(self, point):
        self.tree.delete(point)

    @rule(batch=st.lists(COORDS, min_size=1, max_size=6))
    def commit_batch(self, batch):
        # One group commit containing several mutations — exactly one
        # epoch advance for the whole batch.
        before = self.manager.current_epoch
        with self.tree.transaction():
            for point in batch:
                self.tree.tree.insert(
                    GRID.zvalue(point).bits, point
                )
        assert self.manager.current_epoch == before + 1

    @rule()
    def pin(self):
        epoch = self.manager.pin()
        count, frozen = self.pins.get(epoch, (0, None))
        if frozen is None:
            frozen = self.tree.points()
        self.pins[epoch] = (count + 1, frozen)
        # The view must immediately reproduce the live state.
        view = self.tree.snapshot_view(epoch)
        assert view.points() == frozen

    @precondition(lambda self: self.pins)
    @rule(data=st.data())
    def unpin(self, data):
        epoch = data.draw(st.sampled_from(sorted(self.pins)))
        count, frozen = self.pins[epoch]
        if count == 1:
            del self.pins[epoch]
        else:
            self.pins[epoch] = (count - 1, frozen)
        self.manager.unpin(epoch)

    @rule()
    def reclaim_is_idempotent(self):
        # unpin() already reclaimed; an explicit pass frees nothing new
        # unless a pin was released since — run twice, second is zero.
        self.manager.reclaim()
        assert self.manager.reclaim() == 0

    # -- invariants ------------------------------------------------------

    @invariant()
    def pinned_snapshots_always_readable(self):
        for epoch, (_, frozen) in self.pins.items():
            view = self.tree.snapshot_view(epoch)
            assert view.points() == frozen, (
                f"snapshot at epoch {epoch} changed"
            )

    @invariant()
    def no_leak_once_unpinned(self):
        if not self.pins:
            self.manager.reclaim()
            leaks = self.manager.leak_stats()
            assert leaks["snapshot.active_pins"] == 0
            assert leaks["snapshot.captured_indexes"] == 0
            assert leaks["cow.live_page_versions"] == 0

    @invariant()
    def pin_accounting_matches(self):
        leaks = self.manager.leak_stats()
        assert leaks["snapshot.active_pins"] == sum(
            count for count, _ in self.pins.values()
        )

    def teardown(self):
        for epoch, (count, _) in list(self.pins.items()):
            for _ in range(count):
                self.manager.unpin(epoch)
        self.pins.clear()
        leaks = self.manager.leak_stats()
        assert leaks == {
            "snapshot.active_pins": 0,
            "snapshot.captured_indexes": 0,
            "cow.live_page_versions": 0,
        }, leaks


TestSnapshotMachine = SnapshotMachine.TestCase
TestSnapshotMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
