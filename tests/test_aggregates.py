"""Tests for group-by aggregation, including the spatial global-property
workflow (component areas through the relational layer)."""

import pytest

from repro.db.aggregates import AVG, COUNT, MAX, MIN, SUM, aggregate
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.db.types import FLOAT, INTEGER, STRING


def sales():
    schema = Schema.of(
        ("region", STRING), ("item", STRING), ("units", INTEGER)
    )
    return Relation(
        "sales",
        schema,
        [
            ("north", "ore", 10),
            ("north", "ore", 5),
            ("north", "fish", 2),
            ("south", "ore", 7),
            ("south", "fish", 20),
        ],
    )


class TestAggregate:
    def test_count_by_group(self):
        out = aggregate(sales(), ["region"], [COUNT()])
        assert sorted(out.rows) == [("north", 3), ("south", 2)]

    def test_sum_min_max(self):
        out = aggregate(
            sales(), ["region"], [SUM("units"), MIN("units"), MAX("units")]
        )
        rows = {r[0]: r[1:] for r in out}
        assert rows["north"] == (17, 2, 10)
        assert rows["south"] == (27, 7, 20)

    def test_avg_is_float(self):
        out = aggregate(sales(), ["region"], [AVG("units")])
        rows = dict(out.rows)
        assert rows["north"] == pytest.approx(17 / 3)
        assert out.schema.column("avg_units").domain == FLOAT

    def test_multi_column_grouping(self):
        out = aggregate(sales(), ["region", "item"], [SUM("units")])
        assert ("north", "ore", 15) in out.rows
        assert len(out) == 4

    def test_scalar_aggregate(self):
        out = aggregate(sales(), [], [COUNT(), SUM("units")])
        assert out.rows == [(5, 44)]

    def test_empty_relation_scalar(self):
        empty = Relation("t", Schema.of(("x", INTEGER)))
        out = aggregate(empty, [], [COUNT()])
        assert out.rows == []  # no groups, no undefined folds

    def test_group_order_is_first_appearance(self):
        out = aggregate(sales(), ["region"], [COUNT()])
        assert [r[0] for r in out] == ["north", "south"]

    def test_custom_output_names(self):
        out = aggregate(sales(), ["region"], [SUM("units", "total")])
        assert out.schema.names == ["region", "total"]

    def test_requires_aggregates(self):
        with pytest.raises(ValueError):
            aggregate(sales(), ["region"], [])

    def test_missing_column(self):
        with pytest.raises(KeyError):
            aggregate(sales(), ["region"], [SUM("nope")])


class TestSpatialGlobalProperties:
    def test_component_areas_through_relations(self, grid64):
        """Section 6's global queries as a relational pipeline: label
        components, flatten to a relation, group by label, sum areas."""
        from repro.core.components import label_components
        from repro.core.decompose import Element, decompose_box
        from repro.core.geometry import Box

        elements = []
        for box in (Box(((0, 3), (0, 3))), Box(((10, 17), (10, 13)))):
            elements.extend(
                Element.of(z, grid64) for z in decompose_box(grid64, box)
            )
        cc = label_components(grid64, elements)

        schema = Schema.of(("label", INTEGER), ("npixels", INTEGER))
        rel = Relation(
            "black_elements",
            schema,
            [
                (label, element.npixels)
                for element, label in zip(cc.elements, cc.labels)
            ],
        )
        out = aggregate(
            rel, ["label"], [COUNT("elements"), SUM("npixels", "area")]
        )
        areas = {row[0]: row[2] for row in out}
        assert sorted(areas.values()) == [16, 32]
        assert len(areas) == cc.ncomponents
