"""Tests for the z-histogram selectivity estimator."""

import random

import pytest

from repro.core.geometry import Box, Grid
from repro.db.statistics import ZHistogram, estimate_matches, estimate_pages
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import make_dataset

from conftest import random_box, random_points


def loaded(grid, points, capacity=20):
    tree = ZkdTree(grid, page_capacity=capacity)
    tree.insert_many(points)
    return tree


class TestZHistogram:
    def test_of_tree_counts(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 300))
        histogram = ZHistogram.of_tree(tree)
        assert histogram.nrecords == 300
        assert histogram.nbuckets == tree.npages

    def test_empty_tree(self, grid64):
        histogram = ZHistogram.of_tree(ZkdTree(grid64))
        assert histogram.nrecords == 0
        whole = [(0, grid64.npixels - 1)]
        expected, touched = histogram.overlap_stats(whole)
        assert expected == 0.0

    def test_whole_space_sums_to_n(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 250))
        histogram = ZHistogram.of_tree(tree)
        expected, touched = histogram.overlap_stats(
            [(0, grid64.npixels - 1)]
        )
        assert expected == pytest.approx(250)
        assert touched == histogram.nbuckets

    def test_bucket_spans_tile_code_space(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 200))
        histogram = ZHistogram.of_tree(tree)
        cursor = 0
        for index in range(histogram.nbuckets):
            lo, hi = histogram._bucket_span(index)
            assert lo == cursor
            cursor = hi + 1
        assert cursor == grid64.npixels


class TestEstimateMatches:
    def test_whole_space_exact(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 300))
        assert estimate_matches(tree, grid64.whole_space()) == pytest.approx(
            300
        )

    def test_empty_region(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 100))
        assert estimate_matches(tree, Box(((100, 120), (100, 120)))) == 0.0

    def test_beats_uniform_on_clusters(self):
        grid = Grid(2, 8)
        dataset = make_dataset("C", grid, 5000, seed=0)
        tree = loaded(grid, dataset.points)
        rng = random.Random(1)
        hist_err = 0.0
        unif_err = 0.0
        for _ in range(20):
            box = random_box(rng, grid)
            actual = tree.range_query(box).nmatches
            hist_err += abs(estimate_matches(tree, box) - actual)
            unif_err += abs(
                5000 * box.volume / grid.npixels - actual
            )
        assert hist_err < unif_err / 2

    def test_monotone_in_box_growth(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 400))
        small = estimate_matches(tree, Box(((10, 20), (10, 20))))
        large = estimate_matches(tree, Box(((5, 40), (5, 40))))
        assert small <= large


class TestEstimatePages:
    def test_close_to_actual(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 500))
        for _ in range(10):
            box = random_box(rng, grid64)
            actual = tree.range_query(box).pages_accessed
            estimated = estimate_pages(tree, box)
            assert abs(estimated - actual) <= max(3, actual)

    def test_whole_space_all_pages(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 400))
        assert estimate_pages(tree, grid64.whole_space()) == tree.npages

    def test_outside_is_zero(self, grid64, rng):
        tree = loaded(grid64, random_points(rng, grid64, 100))
        assert estimate_pages(tree, Box(((90, 99), (90, 99)))) == 0
