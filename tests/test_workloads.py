"""Tests for the U/C/D dataset and query generators."""

import pytest

from repro.core.geometry import Grid
from repro.workloads.datasets import (
    clustered_dataset,
    diagonal_dataset,
    make_dataset,
    uniform_dataset,
)
from repro.workloads.queries import (
    PAPER_ASPECTS,
    PAPER_VOLUMES,
    QuerySpec,
    partial_match_workload,
    query_shape,
    query_workload,
    random_query_boxes,
)

import random


class TestDatasets:
    def test_uniform_size_and_bounds(self, grid64):
        ds = uniform_dataset(grid64, 500, seed=1)
        assert len(ds) == 500
        assert ds.name == "U"
        assert all(grid64.contains_point(p) for p in ds.points)

    def test_deterministic(self, grid64):
        assert uniform_dataset(grid64, 100, seed=7).points == uniform_dataset(
            grid64, 100, seed=7
        ).points
        assert uniform_dataset(grid64, 100, seed=7).points != uniform_dataset(
            grid64, 100, seed=8
        ).points

    def test_clustered_structure(self):
        grid = Grid(2, 8)
        ds = clustered_dataset(grid, nclusters=50, per_cluster=100, seed=0)
        assert len(ds) == 5000
        assert ds.name == "C"
        # Clustering: the points occupy far fewer distinct 16x16 tiles
        # than a uniform set of the same size would.
        tiles = {(x // 16, y // 16) for x, y in ds.points}
        uniform_tiles = {
            (x // 16, y // 16)
            for x, y in uniform_dataset(grid, 5000, seed=0).points
        }
        assert len(tiles) < len(uniform_tiles) / 2

    def test_diagonal_on_line(self, grid64):
        ds = diagonal_dataset(grid64, 300, seed=0)
        assert all(x == y for x, y in ds.points)
        assert ds.name == "D"

    def test_diagonal_jitter_stays_in_grid(self, grid64):
        ds = diagonal_dataset(grid64, 300, jitter=3, seed=0)
        assert all(grid64.contains_point(p) for p in ds.points)
        assert any(x != y for x, y in ds.points)

    def test_make_dataset_dispatch(self, grid64):
        assert make_dataset("u", grid64, 100).name == "U"
        assert make_dataset("C", grid64, 100).name == "C"
        assert make_dataset("d", grid64, 100).name == "D"
        with pytest.raises(ValueError):
            make_dataset("X", grid64)
        with pytest.raises(ValueError):
            make_dataset("C", grid64, npoints=77)

    def test_3d_datasets(self, grid3d):
        assert all(
            len(p) == 3 for p in uniform_dataset(grid3d, 50).points
        )
        assert all(
            p[0] == p[1] == p[2] for p in diagonal_dataset(grid3d, 50).points
        )


class TestQueryShape:
    def test_volume_respected(self, grid64):
        sizes = query_shape(grid64, 0.25, 1.0)
        volume = sizes[0] * sizes[1]
        assert abs(volume - 0.25 * 64 * 64) / (0.25 * 64 * 64) < 0.15

    def test_aspect_respected(self, grid64):
        wide = query_shape(grid64, 0.02, 8.0)
        tall = query_shape(grid64, 0.02, 0.125)
        assert wide[0] > wide[1]
        assert tall[0] < tall[1]
        # Wide and tall are transposes of each other.
        assert wide == tall[::-1]

    def test_clipped_to_grid(self, grid64):
        sizes = query_shape(grid64, 1.0, 64.0)
        assert all(1 <= s <= 64 for s in sizes)

    def test_rejects_bad_args(self, grid64):
        with pytest.raises(ValueError):
            query_shape(grid64, 0.0, 1.0)
        with pytest.raises(ValueError):
            query_shape(grid64, 0.5, -1.0)

    def test_3d_shape(self, grid3d):
        sizes = query_shape(grid3d, 0.1, 2.0)
        assert len(sizes) == 3


class TestWorkloads:
    def test_random_boxes_in_bounds(self, grid64):
        rng = random.Random(0)
        boxes = random_query_boxes(grid64, (10, 20), 20, rng)
        assert len(boxes) == 20
        space = grid64.whole_space()
        for box in boxes:
            assert space.contains_box(box)
            assert box.sizes == (10, 20)

    def test_random_boxes_reject_oversize(self, grid64):
        with pytest.raises(ValueError):
            random_query_boxes(grid64, (100, 1), 1, random.Random(0))

    def test_query_workload_cross_product(self, grid64):
        specs = query_workload(
            grid64, volumes=(0.01, 0.04), aspects=(1.0, 4.0), locations=3
        )
        assert len(specs) == 2 * 2 * 3
        assert {s.volume_fraction for s in specs} == {0.01, 0.04}
        assert {s.aspect for s in specs} == {1.0, 4.0}
        assert {s.location_index for s in specs} == {0, 1, 2}

    def test_paper_defaults(self, grid64):
        specs = query_workload(grid64)
        assert len(specs) == len(PAPER_VOLUMES) * len(PAPER_ASPECTS) * 5

    def test_workload_deterministic(self, grid64):
        a = query_workload(grid64, seed=3)
        b = query_workload(grid64, seed=3)
        assert [s.box for s in a] == [s.box for s in b]

    def test_partial_match_workload(self, grid64):
        boxes = partial_match_workload(grid64, [0], count=5, seed=0)
        assert len(boxes) == 5
        for box in boxes:
            (xlo, xhi), (ylo, yhi) = box.ranges
            assert xlo == xhi
            assert (ylo, yhi) == (0, 63)

    def test_partial_match_bad_axis(self, grid64):
        with pytest.raises(ValueError):
            partial_match_workload(grid64, [5], count=1)
