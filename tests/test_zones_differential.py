"""O(n^2) oracle differential suite for the epsilon cross-match join.

The three join strategies — Zones sweep, z-merge, nested loop — are
pure filters over the same exact Euclidean test, so every surface that
serves an eps-join must be *byte-identical* to an independent brute
force: the raw operators over point catalogs, the database facade
(default cost-model choice and every forced strategy), snapshot
sessions, the SQL ``WITHIN`` join and predicate, and the TCP server's
batched path.
"""

import asyncio
import itertools
import math
import random

import pytest

from repro.core.geometry import Grid
from repro.db.database import SpatialDatabase
from repro.db.planner import choose_epsilon_strategy
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.proximity import (
    ZonesIndex,
    nested_epsilon_join,
    zmerge_epsilon_join,
    zone_height_for,
    zones_epsilon_join,
)
from repro.server import QueryClient, QueryService, serve
from repro.shard.store import ShardedSpatialStore
from repro.sql import execute_sql
from repro.workloads import cross_match_catalogs, sky_catalog

GRID = Grid(ndims=2, depth=6)

STRATEGIES = ("zones", "z-merge", "nested-loop")


def oracle_pairs(pts_a, pts_b, eps):
    """Every ordinal pair within ``eps``, in the canonical
    ``(point_a, point_b, i, j)`` order — written independently of the
    operators under test."""
    limit = eps * eps
    hits = sorted(
        (tuple(a), tuple(b), i, j)
        for (i, a), (j, b) in itertools.product(
            enumerate(pts_a), enumerate(pts_b)
        )
        if sum((x - y) ** 2 for x, y in zip(a, b)) <= limit
    )
    return [(i, j) for _, _, i, j in hits]


def catalogs(rng, grid, na, nb, duplicates=True):
    side = grid.side
    pts_a = [
        tuple(rng.randrange(side) for _ in range(grid.ndims))
        for _ in range(na)
    ]
    pts_b = [
        tuple(rng.randrange(side) for _ in range(grid.ndims))
        for _ in range(nb)
    ]
    if duplicates and pts_a and pts_b:
        pts_a.append(pts_a[0])
        pts_b.append(pts_a[0])
    return pts_a, pts_b


def run_all(grid, pts_a, pts_b, eps):
    return {
        "zones": zones_epsilon_join(pts_a, pts_b, eps),
        "z-merge": zmerge_epsilon_join(grid, pts_a, pts_b, eps),
        "nested-loop": nested_epsilon_join(pts_a, pts_b, eps),
    }


# ---------------------------------------------------------------------
# Raw strategies vs the oracle
# ---------------------------------------------------------------------


class TestStrategiesVsOracle:
    @pytest.mark.parametrize("eps", [0.0, 0.5, 1.0, 2.5, 5.0])
    def test_uniform_catalogs(self, eps):
        rng = random.Random(61)
        pts_a, pts_b = catalogs(rng, GRID, 70, 55)
        want = oracle_pairs(pts_a, pts_b, eps)
        for name, got in run_all(GRID, pts_a, pts_b, eps).items():
            assert got == want, name

    def test_clustered_sky_catalogs(self):
        primary, secondary = cross_match_catalogs(GRID, 80, seed=62)
        pts_a, pts_b = list(primary.points), list(secondary.points)
        for eps in (1.0, 3.0):
            want = oracle_pairs(pts_a, pts_b, eps)
            for name, got in run_all(GRID, pts_a, pts_b, eps).items():
                assert got == want, name

    def test_eps_covering_everything(self):
        rng = random.Random(63)
        pts_a, pts_b = catalogs(rng, GRID, 12, 9)
        eps = GRID.side * math.sqrt(GRID.ndims)
        want = oracle_pairs(pts_a, pts_b, eps)
        assert len(want) == len(pts_a) * len(pts_b)
        for name, got in run_all(GRID, pts_a, pts_b, eps).items():
            assert got == want, name

    def test_empty_sides(self):
        pts = [(1, 2), (3, 4)]
        for a, b in (([], pts), (pts, []), ([], [])):
            for got in run_all(GRID, a, b, 2.0).values():
                assert got == []

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            zones_epsilon_join([(0, 0)], [(0, 0)], -1.0)
        with pytest.raises(ValueError):
            nested_epsilon_join([(0, 0)], [(0, 0)], -1.0)

    def test_oversized_zone_height_still_exact(self):
        """Any ``h >= eps`` keeps the neighbour-zone invariant; larger
        heights just scan wider strips."""
        rng = random.Random(64)
        pts_a, pts_b = catalogs(rng, GRID, 40, 40)
        want = oracle_pairs(pts_a, pts_b, 2.0)
        for height in (2, 5, GRID.side):
            assert (
                zones_epsilon_join(pts_a, pts_b, 2.0, zone_height=height)
                == want
            )

    def test_sharded_store_point_sets_join_identically(self):
        """The operators see only point sequences: feeding them a
        sharded store's merged catalog gives the same pairs as the flat
        list (the store's z-merge of shard runs is order-canonical)."""
        rng = random.Random(65)
        pts_a, pts_b = catalogs(rng, GRID, 50, 40, duplicates=False)
        store = ShardedSpatialStore.build(GRID, set(pts_b), nshards=3)
        flat = sorted(set(pts_b))
        assert sorted(store.points()) == flat
        want = oracle_pairs(pts_a, flat, 2.5)
        for name, got in run_all(GRID, pts_a, flat, 2.5).items():
            assert got == want, name


class TestZonesIndex:
    def test_candidates_cover_every_true_pair(self):
        """Zone invariant: a pair within ``eps`` differs by at most one
        zone id, so the +/- 1 probe never misses."""
        rng = random.Random(66)
        pts_a, pts_b = catalogs(rng, GRID, 50, 50)
        eps = 3.0
        index = ZonesIndex(pts_b, zone_height_for(eps))
        limit = eps * eps
        for i, a in enumerate(pts_a):
            seen = {ordinal for _, ordinal in index.candidates(a, eps)}
            for j, b in enumerate(pts_b):
                if sum((x - y) ** 2 for x, y in zip(a, b)) <= limit:
                    assert j in seen
                    assert (
                        abs(index.zone_of(a) - index.zone_of(b)) <= 1
                    )

    def test_zone_height_floor(self):
        assert zone_height_for(0.0) == 1
        assert zone_height_for(0.3) == 1
        assert zone_height_for(2.0) == 2
        assert zone_height_for(2.1) == 3
        with pytest.raises(ValueError):
            ZonesIndex([(0, 0)], 0)


# ---------------------------------------------------------------------
# Database facade and sessions
# ---------------------------------------------------------------------


def _build_join_db(rng, na=60, nb=45, concurrency=False, cache=False):
    db = SpatialDatabase(
        GRID, page_capacity=8, concurrency=concurrency, cache=cache
    )
    for table in ("stars", "gals"):
        db.create_table(
            table,
            Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER)),
        )
    side = GRID.side
    stars = [
        (f"s{i}", rng.randrange(side), rng.randrange(side))
        for i in range(na)
    ]
    gals = [
        (f"g{j}", rng.randrange(side), rng.randrange(side))
        for j in range(nb)
    ]
    db.insert_many("stars", stars)
    db.insert_many("gals", gals)
    db.create_index("stars_xy", "stars", ("x", "y"))
    db.create_index("gals_xy", "gals", ("x", "y"))
    return db, stars, gals


def oracle_join_rows(stars, gals, eps):
    pairs = oracle_pairs(
        [row[1:] for row in stars], [row[1:] for row in gals], eps
    )
    return [stars[i] + gals[j] for i, j in pairs]


class TestDatabaseJoin:
    def test_default_and_forced_strategies_match_oracle(self):
        rng = random.Random(71)
        db, stars, gals = _build_join_db(rng)
        for eps in (0.0, 1.5, 4.0):
            want = oracle_join_rows(stars, gals, eps)
            outputs = [
                list(
                    db.epsilon_join(
                        "stars",
                        ("x", "y"),
                        "gals",
                        ("x", "y"),
                        eps,
                        strategy=strategy,
                    ).rows
                )
                for strategy in (None,) + STRATEGIES
            ]
            for got in outputs:
                assert got == want

    def test_output_schema_keeps_all_columns_qualified(self):
        db, _, _ = _build_join_db(random.Random(72), na=5, nb=5)
        out = db.epsilon_join("stars", ("x", "y"), "gals", ("x", "y"), 2.0)
        assert list(out.schema.names) == [
            "stars_id@",
            "stars_x",
            "stars_y",
            "gals_id@",
            "gals_x",
            "gals_y",
        ]

    def test_planner_counters_bump(self):
        db, _, _ = _build_join_db(random.Random(73), na=10, nb=10)
        db.epsilon_join(
            "stars", ("x", "y"), "gals", ("x", "y"), 1.0, strategy="zones"
        )
        db.epsilon_join("stars", ("x", "y"), "gals", ("x", "y"), 1.0)
        assert db.planner_stats["planner.eps_joins"] == 2
        assert db.planner_stats["planner.eps_strategy[zones]"] >= 1
        assert (
            sum(
                count
                for name, count in db.planner_stats.items()
                if name.startswith("planner.eps_strategy[")
            )
            == 2
        )

    def test_cost_model_names_every_strategy(self):
        strategy, costs = choose_epsilon_strategy(500, 400, 2.0, GRID)
        assert strategy in STRATEGIES
        assert set(costs) == set(STRATEGIES)
        assert costs[strategy] == min(costs.values())

    def test_session_pinned_snapshot(self):
        rng = random.Random(74)
        db, stars, gals = _build_join_db(rng, na=30, nb=25, concurrency=True)
        eps = 2.5
        want = oracle_join_rows(stars, gals, eps)
        with db.session() as session:
            extra = ("gX", stars[0][1], stars[0][2])
            db.insert("gals", extra)
            got = list(
                session.epsilon_join(
                    "stars", ("x", "y"), "gals", ("x", "y"), eps
                ).rows
            )
            assert got == want
            fresh = list(
                db.epsilon_join(
                    "stars", ("x", "y"), "gals", ("x", "y"), eps
                ).rows
            )
            assert fresh == oracle_join_rows(stars, gals + [extra], eps)
            assert len(fresh) > len(want)


# ---------------------------------------------------------------------
# SQL WITHIN: join and predicate, local and over the wire
# ---------------------------------------------------------------------

JOIN_QUERY = (
    "SELECT * FROM stars JOIN gals "
    "ON POINT(stars.x, stars.y) WITHIN {eps} OF POINT(gals.x, gals.y)"
)


class TestSqlWithin:
    def test_join_rows_equal_database_join(self):
        rng = random.Random(81)
        db, stars, gals = _build_join_db(rng)
        for eps in (0, 2, 4.5):
            out = execute_sql(db, JOIN_QUERY.format(eps=eps))
            want = db.epsilon_join(
                "stars", ("x", "y"), "gals", ("x", "y"), eps
            )
            assert out.rows == list(want.rows)
            assert out.columns == list(want.schema.names)
            assert out.rows == oracle_join_rows(stars, gals, eps)

    def test_predicate_rows_equal_exact_ball(self):
        rng = random.Random(82)
        db, stars, _ = _build_join_db(rng)
        center, eps = (30, 28), 6.5
        out = execute_sql(
            db,
            "SELECT id@, x, y FROM stars "
            f"WHERE POINT(x, y) WITHIN {eps} OF POINT{center}",
        )
        limit = eps * eps
        want = [
            row
            for row in stars
            if sum((a - b) ** 2 for a, b in zip(row[1:], center)) <= limit
        ]
        assert sorted(out.rows) == sorted(want)
        assert sorted(out.rows) == sorted(
            db.proximity_query("stars", ("x", "y"), center, eps).rows
        )

    def test_predicate_composes_with_filters_and_session(self):
        rng = random.Random(83)
        db, stars, _ = _build_join_db(rng, concurrency=True)
        query = (
            "SELECT id@, x, y FROM stars "
            "WHERE POINT(x, y) WITHIN 9 OF POINT(32, 32) AND x > 20"
        )
        want = [
            row
            for row in stars
            if sum((a - b) ** 2 for a, b in zip(row[1:], (32, 32))) <= 81
            and row[1] > 20
        ]
        assert sorted(execute_sql(db, query).rows) == sorted(want)
        with db.session() as session:
            assert sorted(
                execute_sql(db, query, session=session).rows
            ) == sorted(want)

    def test_server_serves_both_shapes(self):
        rng = random.Random(84)
        db, stars, gals = _build_join_db(rng, na=35, nb=30, concurrency=True)
        predicate_query = (
            "SELECT id@, x, y FROM stars "
            "WHERE POINT(x, y) WITHIN 7 OF POINT(40, 22)"
        )
        join_query = JOIN_QUERY.format(eps=2)
        local_pred = execute_sql(db, predicate_query).rows
        local_join = execute_sql(db, join_query).rows

        async def run():
            service = QueryService(db)
            server = await serve(service)
            try:
                async with await QueryClient.connect(
                    *server.address
                ) as client:
                    pred = await client.sql(predicate_query)
                    join = await client.sql(join_query)
                    return pred, join
            finally:
                await server.close()

        pred, join = asyncio.run(run())
        assert [tuple(r) for r in pred["rows"]] == local_pred
        assert [tuple(r) for r in join["rows"]] == local_join
        assert join["rows"]


# ---------------------------------------------------------------------
# Nightly sweep (slow tier)
# ---------------------------------------------------------------------


@pytest.mark.slow
class TestNightlySweep:
    def test_sky_scale_cross_match(self):
        grid = Grid(ndims=2, depth=9)
        primary, secondary = cross_match_catalogs(grid, 1200, seed=91)
        pts_a, pts_b = list(primary.points), list(secondary.points)
        for eps in (1.0, 2.5, 4.0):
            want = oracle_pairs(pts_a, pts_b, eps)
            for name, got in run_all(grid, pts_a, pts_b, eps).items():
                assert got == want, name

    def test_sky_scale_self_join(self):
        grid = Grid(ndims=2, depth=9)
        catalog = list(sky_catalog(grid, 900, seed=92).points)
        want = oracle_pairs(catalog, catalog, 2.0)
        for name, got in run_all(grid, catalog, catalog, 2.0).items():
            assert got == want, name
