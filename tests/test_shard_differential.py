"""Differential property suite: sharded engine vs single store.

The sharded engine's contract is *byte-identity*: for any workload,
``ShardedSpatialStore.range_query`` returns exactly the tuple the
single :class:`~repro.storage.prefix_btree.ZkdTree` returns, and
:func:`~repro.shard.join.sharded_spatial_join` returns exactly the rows
of the single-sweep kernel, in the same order — for every shard count,
partition policy, and executor.  These tests enforce it with the seeded
U/C/D workloads.

The quick sweep runs in tier-1; the heavy sweep (more shard counts ×
datasets × boxes, all executors, a 3-d grid) is marked ``slow`` for
nightly runs: ``PYTHONPATH=src python -m pytest -q -m slow``.
"""

import random

import pytest

from repro.core.decompose import Element, decompose
from repro.core.geometry import Box, Grid
from repro.core.spatialjoin import spatial_join
from repro.db.types import SpatialObject
from repro.shard import (
    ShardedSpatialStore,
    ZRangePartitioner,
    sharded_spatial_join,
)
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import make_dataset

from conftest import random_box


def _tagged_objects(grid, prefix, nobjects, seed, max_extent=6, depth=4):
    """Random boxes decomposed into tagged elements (the join's input)."""
    rng = random.Random(seed)
    out = []
    for i in range(nobjects):
        x = rng.randrange(grid.side - max_extent)
        y = rng.randrange(grid.side - max_extent)
        box = Box(
            (
                (x, x + rng.randrange(1, max_extent)),
                (y, y + rng.randrange(1, max_extent)),
            )
        )
        obj = SpatialObject.from_box(f"{prefix}{i}", box)
        for zvalue in decompose(grid, obj.classify, max_depth=depth):
            out.append((Element.of(zvalue, grid), f"{prefix}{i}"))
    return out


# ----------------------------------------------------------------------
# Tier-1 quick sweep
# ----------------------------------------------------------------------


@pytest.mark.parametrize("dataset", ["U", "C", "D"])
@pytest.mark.parametrize("nshards", [2, 4])
def test_range_search_identity_quick(dataset, nshards):
    grid = Grid(ndims=2, depth=6)
    pts = make_dataset(dataset, grid, 800, seed=3).points
    single = ZkdTree(grid)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(grid, pts, nshards=nshards)
    rng = random.Random(100 + nshards)
    for _ in range(12):
        box = random_box(rng, grid)
        expected = single.range_query(box).matches
        assert store.range_query(box).matches == expected
        assert (
            store.range_query(box, use_bigmin=True, use_fast=True).matches
            == expected
        )


@pytest.mark.parametrize("nshards", [1, 2, 3, 4])
def test_spatial_join_identity_quick(nshards):
    grid = Grid(ndims=2, depth=6)
    r = _tagged_objects(grid, "p", 20, seed=21)
    s = _tagged_objects(grid, "q", 20, seed=22)
    reference = list(spatial_join(list(r), list(s)))
    partitioner = ZRangePartitioner.equi_width(grid.total_bits, nshards)
    assert (
        sharded_spatial_join(list(r), list(s), partitioner) == reference
    )


def test_range_search_identity_balanced_partition():
    grid = Grid(ndims=2, depth=6)
    pts = make_dataset("C", grid, 700, seed=5).points
    single = ZkdTree(grid)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(
        grid, pts, nshards=4, partition="balanced"
    )
    rng = random.Random(55)
    for _ in range(10):
        box = random_box(rng, grid)
        assert (
            store.range_query(box).matches
            == single.range_query(box).matches
        )


def test_join_identity_thread_executor():
    grid = Grid(ndims=2, depth=6)
    r = _tagged_objects(grid, "p", 15, seed=31)
    s = _tagged_objects(grid, "q", 15, seed=32)
    reference = list(spatial_join(list(r), list(s)))
    partitioner = ZRangePartitioner.equi_width(grid.total_bits, 4)
    assert (
        sharded_spatial_join(
            list(r), list(s), partitioner, executor="thread"
        )
        == reference
    )


# ----------------------------------------------------------------------
# Nightly slow sweep
# ----------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("dataset", ["U", "C", "D"])
@pytest.mark.parametrize("nshards", [1, 2, 3, 4, 5, 8])
@pytest.mark.parametrize("partition", ["equi", "balanced"])
def test_range_search_identity_sweep(dataset, nshards, partition):
    grid = Grid(ndims=2, depth=8)
    pts = make_dataset(dataset, grid, 3000, seed=7).points
    single = ZkdTree(grid)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(
        grid, pts, nshards=nshards, partition=partition
    )
    rng = random.Random(1000 + 10 * nshards)
    for _ in range(40):
        box = random_box(rng, grid)
        expected = single.range_query(box).matches
        result = store.range_query(box)
        assert result.matches == expected
        assert (
            len(result.shards_hit) + result.shards_pruned
            == store.nshards
        )


@pytest.mark.slow
@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_range_search_identity_executors_sweep(kind):
    grid = Grid(ndims=2, depth=8)
    pts = make_dataset("C", grid, 4000, seed=9).points
    single = ZkdTree(grid)
    single.bulk_load(pts)
    store = ShardedSpatialStore.build(
        grid, pts, nshards=4, executor=kind
    )
    try:
        rng = random.Random(77)
        for _ in range(25):
            box = random_box(rng, grid)
            assert (
                store.range_query(box).matches
                == single.range_query(box).matches
            )
    finally:
        store.close()


@pytest.mark.slow
@pytest.mark.parametrize("nshards", [2, 3, 4, 6, 8])
@pytest.mark.parametrize("kind", ["serial", "thread", "process"])
def test_spatial_join_identity_sweep(nshards, kind):
    grid = Grid(ndims=2, depth=7)
    r = _tagged_objects(grid, "p", 60, seed=41, max_extent=10, depth=5)
    s = _tagged_objects(grid, "q", 60, seed=42, max_extent=10, depth=5)
    reference = list(spatial_join(list(r), list(s)))
    partitioner = ZRangePartitioner.equi_width(grid.total_bits, nshards)
    assert (
        sharded_spatial_join(
            list(r), list(s), partitioner, executor=kind
        )
        == reference
    )


@pytest.mark.slow
def test_range_search_identity_3d_sweep():
    grid = Grid(ndims=3, depth=5)
    rng = random.Random(13)
    pts = [
        tuple(rng.randrange(grid.side) for _ in range(3))
        for _ in range(2500)
    ]
    single = ZkdTree(grid)
    single.bulk_load(pts)
    for nshards in (2, 4, 7):
        store = ShardedSpatialStore.build(grid, pts, nshards=nshards)
        for _ in range(20):
            box = random_box(rng, grid)
            assert (
                store.range_query(box).matches
                == single.range_query(box).matches
            )
