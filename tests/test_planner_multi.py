"""Unit tests for the multi-predicate planner layer: ColumnHistogram
estimates, conjunct ordering, plan_select access-path choice, the join
strategy cost model, and the planner.* stats plumbing."""

import random

import pytest

from repro.core.geometry import Box, Grid
from repro.db import (
    INTEGER,
    OID,
    ColumnHistogram,
    Schema,
    SpatialDatabase,
    choose_join_strategy,
    col,
    order_conjuncts,
    plan_select,
)
from repro.db.expr import box_contains_point
from repro.db.planner import RESIDUAL_SELECTIVITY, Conjunct
from repro.obs.trace import trace


def window_conjunct(box, pos=0, selectivity=None):
    return Conjunct(
        kind="z-window",
        text=f"window@{pos}",
        predicate=box_contains_point(box, ("x", "y")),
        written_pos=pos,
        selectivity=selectivity,
        box=box,
        coord_cols=("x", "y"),
    )


def filter_conjunct(pos, selectivity, kind="attr-range", cost=1.0):
    return Conjunct(
        kind=kind,
        text=f"f@{pos}",
        predicate=col("x") >= 0,
        written_pos=pos,
        selectivity=selectivity,
        cost=cost,
    )


class TestColumnHistogram:
    def test_uniform_range_estimate(self):
        hist = ColumnHistogram.of_values(range(100))
        assert hist.nrecords == 100
        assert hist.estimate_range(25, 75) == pytest.approx(0.5, abs=0.1)
        assert hist.estimate_range(None, None) == pytest.approx(1.0)
        assert hist.estimate_range(None, 49) == pytest.approx(0.5, abs=0.1)

    def test_fraction_le_is_monotone(self):
        rng = random.Random(3)
        hist = ColumnHistogram.of_values(
            [rng.uniform(0, 50) for _ in range(300)]
        )
        fractions = [hist.fraction_le(v) for v in range(0, 51, 5)]
        assert fractions == sorted(fractions)
        assert fractions[0] <= 0.05 and fractions[-1] == 1.0

    def test_equality_uses_distinct_count(self):
        hist = ColumnHistogram.of_values([1, 1, 2, 2, 3, 3, 4, 4])
        assert hist.ndistinct == 4
        assert hist.estimate_eq(2) == pytest.approx(0.25)
        assert hist.estimate_eq(99) == pytest.approx(1 / 8)

    def test_selectivity_floor(self):
        hist = ColumnHistogram.of_values(range(1000))
        assert hist.estimate_range(2, 2) >= 1 / 1000

    def test_non_numeric_values_skipped(self):
        hist = ColumnHistogram.of_values(["a", 1, 2.0, None, True])
        assert hist.nrecords == 2  # 1 and 2.0; bool excluded


class TestOrderConjuncts:
    def test_most_selective_filter_first(self):
        conjuncts = [
            filter_conjunct(0, 0.9),
            filter_conjunct(1, 0.1),
            filter_conjunct(2, 0.5),
        ]
        window, filters, moved = order_conjuncts(conjuncts)
        assert window is None
        assert [f.selectivity for f in filters] == [0.1, 0.5, 0.9]
        assert moved > 0

    def test_naive_keeps_written_order(self):
        conjuncts = [filter_conjunct(0, 0.9), filter_conjunct(1, 0.1)]
        _, filters, moved = order_conjuncts(conjuncts, reorder=False)
        assert [f.written_pos for f in filters] == [0, 1]
        assert moved == 0

    def test_first_window_is_access_path(self):
        box = Box(((0, 4), (0, 4)))
        conjuncts = [
            filter_conjunct(0, 0.01),
            window_conjunct(box, pos=1, selectivity=0.5),
            window_conjunct(box, pos=2, selectivity=0.001),
        ]
        window, filters, _ = order_conjuncts(conjuncts)
        assert window is not None and window.written_pos == 1
        # The displaced second window still applies — as a filter.
        assert {f.written_pos for f in filters} == {0, 2}

    def test_cost_breaks_selectivity_ties(self):
        conjuncts = [
            filter_conjunct(0, 0.5, cost=9.0),
            filter_conjunct(1, 0.5, cost=1.0),
        ]
        _, filters, _ = order_conjuncts(conjuncts)
        assert [f.cost for f in filters] == [1.0, 9.0]


@pytest.fixture
def db():
    database = SpatialDatabase(Grid(2, 6), page_capacity=8)
    database.create_table(
        "points",
        Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER)),
    )
    rng = random.Random(0)
    database.insert_many(
        "points",
        [
            (f"p{i}", rng.randrange(64), rng.randrange(64))
            for i in range(200)
        ],
    )
    database.create_index("points_xy", "points", ("x", "y"))
    return database


class TestPlanSelect:
    def test_window_takes_index_path(self, db):
        box = Box(((0, 20), (0, 20)))
        plan = plan_select(
            db,
            "points",
            [window_conjunct(box), filter_conjunct(1, None)],
        )
        assert "scan" in plan.access_label
        out = plan.execute()
        expected = [
            row
            for row in db.table("points").rows
            if box.contains_point((row[1], row[2])) and row[1] >= 0
        ]
        assert sorted(out.rows) == sorted(expected)

    def test_no_window_scans_table(self, db):
        plan = plan_select(db, "points", [filter_conjunct(0, None)])
        assert plan.access_label == "table-scan"
        assert len(plan.execute()) == 200

    def test_estimates_multiply(self, db):
        box = Box(((0, 31), (0, 31)))
        plan = plan_select(
            db,
            "points",
            [
                window_conjunct(box),
                filter_conjunct(1, 0.5),
                filter_conjunct(2, 0.1),
            ],
        )
        window_only = plan_select(db, "points", [window_conjunct(box)])
        assert plan.estimated_rows == pytest.approx(
            window_only.estimated_rows * 0.05
        )

    def test_residual_default_selectivity(self, db):
        plan = plan_select(
            db,
            "points",
            [filter_conjunct(0, None, kind="residual")],
        )
        assert plan.filters[0].selectivity == RESIDUAL_SELECTIVITY

    def test_attr_range_estimated_from_histogram(self, db):
        conjunct = Conjunct(
            kind="attr-range",
            text="x <= 31",
            predicate=col("x") <= 31,
            written_pos=0,
            column="x",
            high=31,
        )
        plan = plan_select(db, "points", [conjunct])
        assert 0.3 < plan.filters[0].selectivity < 0.7

    def test_stats_and_trace_counters(self, db):
        db.planner_stats.clear()
        box = Box(((0, 20), (0, 20)))
        plan = plan_select(
            db,
            "points",
            [
                window_conjunct(box),
                filter_conjunct(1, 0.9),
                filter_conjunct(2, 0.1, kind="residual"),
            ],
        )
        with trace("t") as t:
            plan.execute()
        stats = db.planner_stats
        assert stats["planner.plans"] == 1
        assert stats["planner.conjuncts_reordered"] >= 1
        assert stats["planner.residual_rows"] > 0
        totals = t.total_counters()
        for key, value in stats.items():
            assert totals[key] == value
        # nonzero-only: a plan with nothing reordered adds no key
        db.planner_stats.clear()
        plan2 = plan_select(db, "points", [window_conjunct(box)])
        plan2.execute()
        assert "planner.conjuncts_reordered" not in db.planner_stats
        assert "planner.residual_rows" not in db.planner_stats


class TestChooseJoinStrategy:
    def test_small_sides_pick_nested_loop(self):
        strategy, cost_z, cost_n = choose_join_strategy(3, 3, 2.0, 2.0)
        assert strategy == "nested-loop"
        assert cost_n < cost_z

    def test_large_sides_pick_zmerge(self):
        strategy, cost_z, cost_n = choose_join_strategy(
            500, 500, 4.0, 4.0
        )
        assert strategy == "z-merge"
        assert cost_z < cost_n

    def test_tie_prefers_zmerge(self):
        strategy, cost_z, cost_n = choose_join_strategy(0, 0, 0.0, 0.0)
        assert cost_z == cost_n
        assert strategy == "z-merge"

    def test_costs_scale_with_elements(self):
        _, z1, n1 = choose_join_strategy(10, 10, 1.0, 1.0)
        _, z2, n2 = choose_join_strategy(10, 10, 8.0, 8.0)
        assert z2 > z1 and n2 > n1
