"""Tests for the reproduction-report generator and its CLI command."""

import io

import pytest

from repro.cli import main
from repro.experiments.report import generate_report

SMALL = dict(npoints=400, depth=6, locations=1)


@pytest.fixture(scope="module")
def report_text():
    return generate_report(**SMALL)


class TestReport:
    def test_contains_all_sections(self, report_text):
        for heading in (
            "# Reproduction report",
            "## Figures 1/2/4",
            "## Section 5.1: space analysis",
            "### Experiment U",
            "### Experiment C",
            "### Experiment D",
            "## Structure comparison",
            "## Figure 6: page partitions",
        ):
            assert heading in report_text, heading

    def test_figure2_labels_embedded(self, report_text):
        assert "00001 00011 001 010010 011000 011010" in report_text

    def test_findings_reported(self, report_text):
        assert "pages grow with volume" in report_text
        assert "best aspects" in report_text

    def test_structures_compared(self, report_text):
        assert "zkd-btree" in report_text
        assert "kd-tree" in report_text

    def test_deterministic(self):
        assert generate_report(**SMALL) == generate_report(**SMALL)


class TestCli:
    def test_report_to_stdout(self):
        out = io.StringIO()
        code = main(
            [
                "report",
                "--points", "400",
                "--depth", "6",
                "--locations", "1",
            ],
            out=out,
        )
        assert code == 0
        assert "# Reproduction report" in out.getvalue()

    def test_report_to_file(self, tmp_path):
        target = tmp_path / "report.md"
        out = io.StringIO()
        code = main(
            [
                "report",
                "--points", "400",
                "--depth", "6",
                "--locations", "1",
                "--output", str(target),
            ],
            out=out,
        )
        assert code == 0
        assert "written to" in out.getvalue()
        assert "# Reproduction report" in target.read_text()
