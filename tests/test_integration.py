"""Cross-module integration tests: full pipelines through the stack."""

import random

import pytest

from repro.core.geometry import Box, Grid, circle_classifier, polygon_classifier
from repro.core.overlay import ElementRegion, map_overlay
from repro.core.interference import Solid, detect_interference
from repro.core.components import label_components
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID, SPATIAL_OBJECT, SpatialObject
from repro.storage.prefix_btree import ZkdTree

from conftest import random_box, random_points


class TestIndexVsPlanVsBaselines:
    def test_four_way_agreement(self, grid64, rng):
        """zkd index, relational plan, kd tree and brute force all
        return the same answers over a shared workload."""
        from repro.baselines.kdtree import KdTree
        from repro.core.rangesearch import brute_force_search

        points = random_points(rng, grid64, 400)
        zkd = ZkdTree(grid64, page_capacity=15)
        zkd.insert_many(points)
        kd = KdTree(grid64, page_capacity=15)
        kd.insert_many(points)
        db = SpatialDatabase(grid64, page_capacity=15)
        db.create_table(
            "pts", Schema.of(("p@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        db.insert_many(
            "pts", [(f"p{i}", x, y) for i, (x, y) in enumerate(points)]
        )
        for _ in range(8):
            box = random_box(rng, grid64)
            truth = brute_force_search(grid64, points, box)
            assert list(zkd.range_query(box).matches) == truth
            assert list(kd.range_query(box).matches) == truth
            got = sorted(
                (x, y)
                for _, x, y in db.range_query(
                    "pts", ("x", "y"), box
                ).rows
            )
            assert got == sorted(map(tuple, truth))


class TestGISWorkflow:
    def test_overlay_then_components(self):
        """A toy cartography pipeline: rasterize two polygon layers,
        overlay them, then label the connected regions of one face."""
        grid = Grid(2, 6)
        land = ElementRegion.from_object(
            grid, polygon_classifier([(2, 2), (60, 5), (55, 58), (5, 50)])
        )
        water = ElementRegion.from_object(
            grid, circle_classifier((30, 30), 12.0)
        )
        dry_land = land - water
        assert dry_land.area() == land.area() - (land & water).area()
        cc = label_components(grid, dry_land.elements())
        assert cc.ncomponents >= 1
        assert sum(cc.areas().values()) == dry_land.area()

    def test_map_overlay_conservation(self):
        """Overlay faces partition each polygon's intersection with the
        other layer's union."""
        grid = Grid(2, 6)
        layer_a = {
            "north": ElementRegion.from_box(grid, Box(((0, 63), (32, 63)))),
            "south": ElementRegion.from_box(grid, Box(((0, 63), (0, 31)))),
        }
        layer_b = {
            "west": ElementRegion.from_box(grid, Box(((0, 31), (0, 63)))),
            "east": ElementRegion.from_box(grid, Box(((32, 63), (0, 63)))),
        }
        faces = map_overlay(layer_a, layer_b)
        total = sum(face.area() for face in faces.values())
        assert total == 64 * 64  # the two layers tile the space


class TestCADWorkflow:
    def test_assembly_check(self):
        """Solids from different oracles, mixed resolutions."""
        grid = Grid(2, 7)
        gear = Solid.from_object(
            "gear", grid, circle_classifier((40, 40), 20.0), max_depth=10
        )
        shaft = Solid.from_object(
            "shaft", grid, circle_classifier((40, 40), 5.0), max_depth=10
        )
        housing = Solid.from_object(
            "housing", grid, circle_classifier((100, 100), 15.0), max_depth=10
        )
        report = detect_interference([gear, shaft, housing])
        assert report.status("gear", "shaft") == "definite"
        assert report.status("gear", "housing") == "clear"
        assert report.status("shaft", "housing") == "clear"


class TestDBRoundTrip:
    def test_objects_and_points_together(self, grid64, rng):
        db = SpatialDatabase(grid64)
        db.create_table(
            "sites", Schema.of(("s@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        db.create_table(
            "regions", Schema.of(("r@", OID), ("shape", SPATIAL_OBJECT))
        )
        sites = [
            (f"s{i}", x, y)
            for i, (x, y) in enumerate(random_points(rng, grid64, 80))
        ]
        db.insert_many("sites", sites)
        db.create_index("sites_xy", "sites", ("x", "y"))
        region_box = Box(((10, 40), (10, 40)))
        db.insert(
            "regions", ("core", SpatialObject.from_box("core", region_box))
        )
        # Points in the region, via the index.
        hits = db.range_query("sites", ("x", "y"), region_box)
        expected = [row for row in sites if region_box.contains_point(row[1:])]
        assert sorted(hits.rows) == sorted(expected)


class TestExperimentPipeline:
    def test_small_ucd_pipeline_runs(self, grid64):
        from repro.experiments.harness import run_ucd_experiment

        for name in ("U", "C", "D"):
            measurements, rows = run_ucd_experiment(
                grid64,
                name,
                npoints=500,
                volumes=(0.02,),
                aspects=(1.0, 8.0),
                locations=2,
            )
            assert len(measurements) == 4
            for m in measurements:
                assert m.pages >= 0
                assert m.predicted_pages > 0


class TestDimensionalityGenerality:
    """Section 3.3: 'Algorithms based on z order work without
    modification in all dimensions.'"""

    @pytest.mark.parametrize("ndims", [1, 2, 3, 4])
    def test_full_stack_in_k_dims(self, ndims):
        depth = max(2, 8 // ndims)
        grid = Grid(ndims, depth)
        rng = random.Random(ndims)
        points = [
            tuple(rng.randrange(grid.side) for _ in range(ndims))
            for _ in range(200)
        ]
        tree = ZkdTree(grid, page_capacity=10)
        tree.insert_many(points)
        lo = grid.side // 4
        hi = 3 * grid.side // 4
        box = Box(tuple((lo, hi) for _ in range(ndims)))
        result = tree.range_query(box)
        expected = sorted(
            (p for p in points if box.contains_point(p)),
            key=lambda p: grid.zvalue(p).bits,
        )
        assert list(result.matches) == expected
