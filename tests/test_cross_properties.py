"""Cross-module property tests: invariants that tie the stack together.

These are the contracts the architecture rests on; each test draws
random scenes with hypothesis and checks that independent code paths
agree with each other or with a ground-truth model.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.baselines.dynamic_gridfile import GridFile
from repro.baselines.kdtree import KdTree
from repro.core.decompose import CoverMode, Element, decompose, decompose_box
from repro.core.geometry import Grid, circle_classifier
from repro.core.intervals import elements_to_intervals, intervals_to_elements
from repro.core.overlay import ElementRegion
from repro.core.rangesearch import brute_force_search
from repro.core.zvalue import ZValue
from repro.storage.prefix_btree import ZkdTree

from conftest import random_box, random_points

seeds = st.integers(0, 10**6)


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_all_structures_agree_on_queries(seed):
    """zkd tree, kd tree, dynamic grid file and brute force return the
    same result set for every query."""
    grid = Grid(2, 5)
    rng = random.Random(seed)
    points = random_points(rng, grid, 150)
    zkd = ZkdTree(grid, page_capacity=8)
    kd = KdTree(grid, page_capacity=8)
    gf = GridFile(grid, page_capacity=8)
    for structure in (zkd, kd, gf):
        structure.insert_many(points)
    for _ in range(3):
        box = random_box(rng, grid)
        truth = brute_force_search(grid, points, box)
        assert list(zkd.range_query(box).matches) == truth
        assert list(kd.range_query(box).matches) == truth
        assert list(gf.range_query(box).matches) == truth


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_decompose_roundtrips_through_intervals(seed):
    """decompose -> intervals -> canonical elements -> intervals is a
    fixed point, and the canonical form is never larger."""
    grid = Grid(2, 4)
    rng = random.Random(seed)
    box = random_box(rng, grid)
    elements = [Element.of(z, grid) for z in decompose_box(grid, box)]
    intervals = elements_to_intervals(elements)
    canonical = intervals_to_elements(intervals, grid)
    assert elements_to_intervals(canonical) == intervals
    assert len(canonical) <= len(elements)
    assert intervals.cardinality() == box.volume


@settings(max_examples=25, deadline=None)
@given(seeds)
def test_region_algebra_matches_decomposition_of_geometry(seed):
    """(A ∪ B) and (A ∩ B) computed on z intervals equal the direct
    decompositions of the geometric union/intersection."""
    grid = Grid(2, 4)
    rng = random.Random(seed)
    box_a = random_box(rng, grid)
    box_b = random_box(rng, grid)
    region_a = ElementRegion.from_box(grid, box_a)
    region_b = ElementRegion.from_box(grid, box_b)
    if box_a.intersects(box_b):
        direct = ElementRegion.from_box(grid, box_a.intersection(box_b))
        assert (region_a & region_b) == direct
    else:
        assert (region_a & region_b).is_empty()
    union_area = (region_a | region_b).area()
    inter_area = (region_a & region_b).area()
    assert union_area == box_a.volume + box_b.volume - inter_area


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_inner_outer_cover_sandwich(seed):
    """For any object and any cut-off depth:
    INNER coverage ⊆ exact coverage ⊆ OUTER coverage."""
    grid = Grid(2, 4)
    rng = random.Random(seed)
    cx, cy = rng.randrange(16), rng.randrange(16)
    radius = rng.uniform(1.0, 8.0)
    classify = circle_classifier((cx, cy), radius)
    exact = elements_to_intervals(
        Element.of(z, grid) for z in decompose(grid, classify)
    )
    for depth in (2, 4, 6):
        outer = elements_to_intervals(
            Element.of(z, grid)
            for z in decompose(grid, classify, max_depth=depth)
        )
        inner = elements_to_intervals(
            Element.of(z, grid)
            for z in decompose(
                grid, classify, max_depth=depth, cover=CoverMode.INNER
            )
        )
        assert outer.contains_set(exact)
        assert exact.contains_set(inner)


@settings(max_examples=30, deadline=None)
@given(seeds)
def test_element_coordinates_consistent_with_intervals(seed):
    """unshuffle(element) and the z interval describe the same pixels."""
    grid = Grid(2, 4)
    rng = random.Random(seed)
    box = random_box(rng, grid)
    for z in decompose_box(grid, box):
        element = Element.of(z, grid)
        region = grid.region_box(z)
        pixels_by_region = {
            grid.zvalue(p).bits for p in region.pixels()
        }
        assert pixels_by_region == set(
            range(element.zlo, element.zhi + 1)
        )


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_index_results_survive_bulk_vs_incremental(seed):
    """The loading path cannot change query answers."""
    grid = Grid(2, 5)
    rng = random.Random(seed)
    points = random_points(rng, grid, 120)
    incremental = ZkdTree(grid, page_capacity=6)
    incremental.insert_many(points)
    bulk = ZkdTree(grid, page_capacity=6)
    bulk.bulk_load(points)
    box = random_box(rng, grid)
    assert (
        incremental.range_query(box).matches
        == bulk.range_query(box).matches
    )


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_query_paths_agree_object_vs_box(seed):
    """object_query with a box oracle equals range_query with the box."""
    from repro.core.geometry import box_classifier

    grid = Grid(2, 5)
    rng = random.Random(seed)
    points = random_points(rng, grid, 120)
    tree = ZkdTree(grid, page_capacity=8)
    tree.insert_many(points)
    box = random_box(rng, grid)
    assert (
        tree.object_query(box_classifier(box)).matches
        == tree.range_query(box).matches
    )


@settings(max_examples=20, deadline=None)
@given(seeds)
def test_zvalue_sort_is_spatial_containment_consistent(seed):
    """Sorting any element set lexicographically never separates a
    container from its contents by an unrelated element (the nesting
    property the sweep joins rely on)."""
    grid = Grid(2, 4)
    rng = random.Random(seed)
    zvalues = sorted(
        {
            ZValue.from_point(
                (rng.randrange(16), rng.randrange(16)), 4
            ).parent().parent()
            for _ in range(10)
        }
    )
    for i, a in enumerate(zvalues):
        for j in range(i + 1, len(zvalues)):
            b = zvalues[j]
            if a.contains(b):
                # Everything between them is also inside a.
                for k in range(i + 1, j):
                    assert a.contains(zvalues[k])
