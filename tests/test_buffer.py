"""Tests for the buffer manager and replacement policies."""

import pytest

from repro.storage.buffer import BufferManager, ReplacementPolicy
from repro.storage.page import PageStore


def make_store(npages=10, capacity=4):
    store = PageStore(capacity)
    for _ in range(npages):
        store.allocate()
    return store


class TestBasics:
    def test_miss_then_hit(self):
        store = make_store()
        buf = BufferManager(store, capacity=2)
        buf.get(0)
        assert (buf.hits, buf.misses) == (0, 1)
        buf.get(0)
        assert (buf.hits, buf.misses) == (1, 1)
        assert store.reads == 1

    def test_capacity_enforced(self):
        store = make_store()
        buf = BufferManager(store, capacity=3)
        for page_id in range(5):
            buf.get(page_id)
        assert len(buf) == 3
        assert buf.evictions == 2

    def test_hit_rate(self):
        store = make_store()
        buf = BufferManager(store, capacity=4)
        buf.get(0)
        buf.get(0)
        buf.get(0)
        buf.get(1)
        assert buf.hit_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        store = make_store()
        buf = BufferManager(store, capacity=4)
        buf.get(0)
        buf.reset_stats()
        assert (buf.hits, buf.misses, buf.evictions) == (0, 0, 0)

    def test_min_capacity(self):
        with pytest.raises(ValueError):
            BufferManager(make_store(), capacity=0)


class TestDirtyPages:
    def test_eviction_writes_back_dirty(self):
        store = make_store()
        buf = BufferManager(store, capacity=1)
        page = buf.get(0)
        page.insert(5, "x")
        buf.mark_dirty(0)
        buf.get(1)  # evicts page 0
        assert store.writes == 1
        assert store.peek(0).keys() == [5]

    def test_clean_eviction_no_write(self):
        store = make_store()
        buf = BufferManager(store, capacity=1)
        buf.get(0)
        buf.get(1)
        assert store.writes == 0

    def test_flush(self):
        store = make_store()
        buf = BufferManager(store, capacity=4)
        buf.get(0)
        buf.mark_dirty(0)
        buf.flush()
        assert store.writes == 1
        buf.flush()  # second flush: nothing dirty
        assert store.writes == 1

    def test_mark_dirty_unbuffered_raises(self):
        buf = BufferManager(make_store(), capacity=2)
        with pytest.raises(KeyError):
            buf.mark_dirty(0)

    def test_put_new_page(self):
        store = make_store()
        buf = BufferManager(store, capacity=2)
        page = store.peek(3)
        buf.put(page, dirty=True)
        assert buf.get(3) is page
        assert buf.hits == 1

    def test_invalidate_drops_without_writeback(self):
        store = make_store()
        buf = BufferManager(store, capacity=2)
        buf.get(0)
        buf.mark_dirty(0)
        buf.invalidate(0)
        buf.get(1)
        buf.get(2)
        assert store.writes == 0


class TestPolicies:
    def test_lru_keeps_recently_used(self):
        store = make_store()
        buf = BufferManager(store, capacity=2, policy=ReplacementPolicy.LRU)
        buf.get(0)
        buf.get(1)
        buf.get(0)  # refresh 0
        buf.get(2)  # evicts 1, not 0
        buf.get(0)
        assert buf.misses == 3  # 0, 1, 2 — the re-reads of 0 were hits

    def test_fifo_ignores_recency(self):
        store = make_store()
        buf = BufferManager(store, capacity=2, policy=ReplacementPolicy.FIFO)
        buf.get(0)
        buf.get(1)
        buf.get(0)  # hit, but does not refresh under FIFO
        buf.get(2)  # evicts 0 (oldest admission)
        buf.get(0)
        assert buf.misses == 4

    def test_mru_evicts_newest(self):
        store = make_store()
        buf = BufferManager(store, capacity=2, policy=ReplacementPolicy.MRU)
        buf.get(0)
        buf.get(1)
        buf.get(2)  # evicts 1 (most recently used)
        buf.get(0)
        assert buf.hits == 1

    def test_sequential_scan_same_misses_all_policies(self):
        """The paper's Section 4 point: merge patterns touch each page
        once, so the replacement policy cannot matter."""
        misses = {}
        for policy in ReplacementPolicy:
            store = make_store(npages=20)
            buf = BufferManager(store, capacity=4, policy=policy)
            for page_id in range(20):
                buf.get(page_id)
            misses[policy] = buf.misses
        assert len(set(misses.values())) == 1
