"""Tests for the buffer manager and replacement policies."""

import pytest

from repro.faults import FaultError, FaultInjector
from repro.storage.buffer import BufferManager, ReplacementPolicy
from repro.storage.page import PageStore


def make_store(npages=10, capacity=4):
    store = PageStore(capacity)
    for _ in range(npages):
        store.allocate()
    return store


class TestBasics:
    def test_miss_then_hit(self):
        store = make_store()
        buf = BufferManager(store, capacity=2)
        buf.get(0)
        assert (buf.hits, buf.misses) == (0, 1)
        buf.get(0)
        assert (buf.hits, buf.misses) == (1, 1)
        assert store.reads == 1

    def test_capacity_enforced(self):
        store = make_store()
        buf = BufferManager(store, capacity=3)
        for page_id in range(5):
            buf.get(page_id)
        assert len(buf) == 3
        assert buf.evictions == 2

    def test_hit_rate(self):
        store = make_store()
        buf = BufferManager(store, capacity=4)
        buf.get(0)
        buf.get(0)
        buf.get(0)
        buf.get(1)
        assert buf.hit_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        store = make_store()
        buf = BufferManager(store, capacity=4)
        buf.get(0)
        buf.reset_stats()
        assert (buf.hits, buf.misses, buf.evictions) == (0, 0, 0)

    def test_min_capacity(self):
        with pytest.raises(ValueError):
            BufferManager(make_store(), capacity=0)


class TestDirtyPages:
    def test_eviction_writes_back_dirty(self):
        store = make_store()
        buf = BufferManager(store, capacity=1)
        page = buf.get(0)
        page.insert(5, "x")
        buf.mark_dirty(0)
        buf.get(1)  # evicts page 0
        assert store.writes == 1
        assert store.peek(0).keys() == [5]

    def test_clean_eviction_no_write(self):
        store = make_store()
        buf = BufferManager(store, capacity=1)
        buf.get(0)
        buf.get(1)
        assert store.writes == 0

    def test_flush(self):
        store = make_store()
        buf = BufferManager(store, capacity=4)
        buf.get(0)
        buf.mark_dirty(0)
        buf.flush()
        assert store.writes == 1
        buf.flush()  # second flush: nothing dirty
        assert store.writes == 1

    def test_mark_dirty_unbuffered_raises(self):
        buf = BufferManager(make_store(), capacity=2)
        with pytest.raises(KeyError):
            buf.mark_dirty(0)

    def test_put_new_page(self):
        store = make_store()
        buf = BufferManager(store, capacity=2)
        page = store.peek(3)
        buf.put(page, dirty=True)
        assert buf.get(3) is page
        assert buf.hits == 1

    def test_invalidate_drops_without_writeback(self):
        store = make_store()
        buf = BufferManager(store, capacity=2)
        buf.get(0)
        buf.mark_dirty(0)
        buf.invalidate(0)
        buf.get(1)
        buf.get(2)
        assert store.writes == 0


class FailingStore(PageStore):
    """A store whose writes fail on demand (the real-world eviction
    hazard: the device rejects the write-back)."""

    def __init__(self, capacity=4):
        super().__init__(capacity)
        self.fail_writes = False

    def write(self, page):
        if self.fail_writes:
            raise IOError("device error")
        super().write(page)


class TestWriteBackFailure:
    def test_failed_eviction_does_not_lose_the_page(self):
        store = FailingStore()
        for _ in range(3):
            store.allocate()
        buf = BufferManager(store, capacity=1)
        page = buf.get(0)
        page.insert(5, "precious")
        buf.mark_dirty(0)
        store.fail_writes = True
        with pytest.raises(IOError):
            buf.get(1)  # eviction of dirty page 0 fails mid write-back
        # The dirty page is still resident and still dirty — nothing
        # was silently dropped.
        assert len(buf) == 1
        assert buf.peek(0).keys() == [5]
        assert buf.evictions == 0
        store.fail_writes = False
        buf.get(1)  # retry: write-back succeeds, eviction completes
        assert store.peek(0).keys() == [5]
        assert buf.evictions == 1

    def test_failed_flush_keeps_page_dirty(self):
        store = FailingStore()
        store.allocate()
        buf = BufferManager(store, capacity=2)
        page = buf.get(0)
        page.insert(1, "x")
        buf.mark_dirty(0)
        store.fail_writes = True
        with pytest.raises(IOError):
            buf.flush()
        store.fail_writes = False
        buf.flush()
        assert store.peek(0).keys() == [1]

    def test_writeback_failpoint_fires(self):
        # The buffer consults its store's injector (if any) on the
        # write-back path: the crash matrix kills evictions this way.
        inj = FaultInjector()
        store = PageStore(4)
        store.allocate()
        store.faults = inj  # duck-typed: BufferManager getattr()s it
        inj.rule("buffer.writeback", "error")
        buf = BufferManager(store, capacity=1)
        buf.get(0)
        buf.mark_dirty(0)
        with pytest.raises(FaultError):
            buf.flush()


class TestPolicies:
    def test_lru_keeps_recently_used(self):
        store = make_store()
        buf = BufferManager(store, capacity=2, policy=ReplacementPolicy.LRU)
        buf.get(0)
        buf.get(1)
        buf.get(0)  # refresh 0
        buf.get(2)  # evicts 1, not 0
        buf.get(0)
        assert buf.misses == 3  # 0, 1, 2 — the re-reads of 0 were hits

    def test_fifo_ignores_recency(self):
        store = make_store()
        buf = BufferManager(store, capacity=2, policy=ReplacementPolicy.FIFO)
        buf.get(0)
        buf.get(1)
        buf.get(0)  # hit, but does not refresh under FIFO
        buf.get(2)  # evicts 0 (oldest admission)
        buf.get(0)
        assert buf.misses == 4

    def test_fifo_reput_does_not_refresh_admission_order(self):
        # A re-put (dirtying a resident page) must not move the page to
        # the back of the FIFO queue, or FIFO degenerates into LRU.
        store = make_store()
        buf = BufferManager(store, capacity=2, policy=ReplacementPolicy.FIFO)
        a = buf.get(0)
        buf.get(1)
        buf.put(a, dirty=True)  # re-put the oldest admission
        buf.get(2)  # must evict 0 (oldest admitted), not 1
        assert 1 in buf._frames and 0 not in buf._frames
        assert store.writes == 1  # 0 was dirty: written back on evict

    def test_lru_reput_refreshes_recency(self):
        store = make_store()
        buf = BufferManager(store, capacity=2, policy=ReplacementPolicy.LRU)
        a = buf.get(0)
        buf.get(1)
        buf.put(a, dirty=False)  # refreshes 0 under LRU
        buf.get(2)  # evicts 1
        assert 0 in buf._frames and 1 not in buf._frames

    def test_mru_evicts_newest(self):
        store = make_store()
        buf = BufferManager(store, capacity=2, policy=ReplacementPolicy.MRU)
        buf.get(0)
        buf.get(1)
        buf.get(2)  # evicts 1 (most recently used)
        buf.get(0)
        assert buf.hits == 1

    def test_sequential_scan_same_misses_all_policies(self):
        """The paper's Section 4 point: merge patterns touch each page
        once, so the replacement policy cannot matter."""
        misses = {}
        for policy in ReplacementPolicy:
            store = make_store(npages=20)
            buf = BufferManager(store, capacity=4, policy=policy)
            for page_id in range(20):
                buf.get(page_id)
            misses[policy] = buf.misses
        assert len(set(misses.values())) == 1
