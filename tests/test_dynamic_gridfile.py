"""Tests for the dynamic grid file [NIEV84]."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.dynamic_gridfile import GridFile
from repro.core.geometry import Box, Grid
from repro.core.rangesearch import brute_force_search

from conftest import random_box, random_points


def loaded(grid, points, capacity=10):
    gf = GridFile(grid, page_capacity=capacity)
    gf.insert_many(points)
    return gf


class TestMaintenance:
    def test_insert_and_count(self, grid64, rng):
        gf = loaded(grid64, random_points(rng, grid64, 300))
        assert len(gf) == 300
        gf.check_invariants()

    def test_insert_validates(self, grid64):
        with pytest.raises(ValueError):
            GridFile(grid64).insert((64, 0))

    def test_capacity_positive(self, grid64):
        with pytest.raises(ValueError):
            GridFile(grid64, page_capacity=0)

    def test_delete(self, grid64, rng):
        points = random_points(rng, grid64, 200)
        gf = loaded(grid64, points)
        for p in points[:100]:
            assert gf.delete(tuple(p))
        assert not gf.delete((-1, -1)) if grid64.contains_point((-1, -1)) else True
        gf.check_invariants()
        assert len(gf) == 100

    def test_delete_missing(self, grid64):
        gf = GridFile(grid64)
        assert not gf.delete((1, 1))

    def test_splits_bound_bucket_size(self, grid64, rng):
        gf = loaded(grid64, random_points(rng, grid64, 500), capacity=8)
        for bucket in gf._buckets.values():
            # Distinct-coordinate buckets respect capacity.
            if len({p for p in bucket.points}) == len(bucket.points):
                assert len(bucket.points) <= 8 or bucket.cell_extent(
                    0
                ) == bucket.cell_extent(1) == 1

    def test_duplicate_points_overflow_gracefully(self):
        gf = GridFile(Grid(2, 3), page_capacity=4)
        for _ in range(30):
            gf.insert((5, 5))
        gf.check_invariants()
        assert len(gf) == 30
        assert gf.npages >= 8  # overflow pages counted

    def test_directory_covers_space(self, grid64, rng):
        gf = loaded(grid64, random_points(rng, grid64, 400))
        gf.check_invariants()
        # Every pixel must resolve to a bucket.
        for _ in range(50):
            p = (rng.randrange(64), rng.randrange(64))
            assert gf._bucket_for(p) is not None


class TestQueries:
    def test_matches_brute_force(self, grid64, rng):
        points = random_points(rng, grid64, 400)
        gf = loaded(grid64, points)
        for _ in range(15):
            box = random_box(rng, grid64)
            result = gf.range_query(box)
            assert list(result.matches) == brute_force_search(
                grid64, points, box
            )

    def test_query_outside_grid(self, grid64):
        gf = GridFile(grid64)
        gf.insert((1, 1))
        assert gf.range_query(Box(((70, 90), (70, 90)))).matches == ()

    def test_small_query_touches_few_buckets(self, grid64, rng):
        gf = loaded(grid64, random_points(rng, grid64, 500), capacity=10)
        small = gf.range_query(Box(((10, 12), (10, 12))))
        assert small.pages_accessed < gf.npages / 4

    def test_3d(self, grid3d, rng):
        points = random_points(rng, grid3d, 300)
        gf = GridFile(grid3d, page_capacity=8)
        gf.insert_many(points)
        gf.check_invariants()
        box = Box(((2, 9), (1, 12), (5, 14)))
        assert list(gf.range_query(box).matches) == brute_force_search(
            grid3d, points, box
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_model(self, seed):
        grid = Grid(2, 5)
        rng = random.Random(seed)
        gf = GridFile(grid, page_capacity=rng.choice([4, 8]))
        model = []
        for _ in range(150):
            if rng.random() < 0.7 or not model:
                p = (rng.randrange(32), rng.randrange(32))
                gf.insert(p)
                model.append(p)
            else:
                p = model.pop(rng.randrange(len(model)))
                assert gf.delete(p)
        gf.check_invariants()
        box = random_box(rng, grid)
        assert list(gf.range_query(box).matches) == brute_force_search(
            grid, model, box
        )


class TestDirectoryGrowth:
    def test_skew_inflates_directory(self, grid64):
        """The known grid-file weakness the zkd B+-tree avoids: under
        diagonal data the directory grows superlinearly."""
        uniform = GridFile(grid64, page_capacity=10)
        rng = random.Random(0)
        uniform.insert_many(
            (rng.randrange(64), rng.randrange(64)) for _ in range(1024)
        )
        diagonal = GridFile(grid64, page_capacity=10)
        diagonal.insert_many((i, i) for i in range(64) for _ in range(16))
        assert diagonal.directory_size > 4 * uniform.directory_size
        # Bucket counts stay comparable — the waste is directory cells.
        assert diagonal.nbuckets < 4 * uniform.nbuckets
