"""The chaos-serve sweep: seeded fault storms against the live server.

Each episode (see :mod:`repro.server.chaos`) must end with the server
available, every surviving answer byte-identical to the pre-computed
reference, and zero slot/pin/COW residue.  A 3-seed smoke runs in
tier 1; the full sweep (20 seeds, the acceptance bar) is marked
``slow`` and runs nightly alongside the crash matrix.
"""

from __future__ import annotations

import pytest

from repro.server.chaos import run_chaos_episode

pytestmark = pytest.mark.chaos

SMOKE_SEEDS = (1, 2, 3)
FULL_SEEDS = tuple(range(1, 21))


def _assert_episode(seed: int, **kwargs) -> None:
    report = run_chaos_episode(seed, **kwargs)
    assert report.passed, report.summary()
    assert report.requests > 0
    assert report.mismatches == 0
    assert report.available
    assert all(v == 0 for v in report.leaks.values())


@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_chaos_episode_smoke(seed):
    # Reduced storm so the smoke stays inside the tier-1 budget; the
    # full-strength episodes run in the nightly sweep below.
    _assert_episode(seed, npoints=200, nreaders=3, nrequests=10, nrules=6)


@pytest.mark.slow
@pytest.mark.parametrize("seed", FULL_SEEDS)
def test_chaos_episode_full_sweep(seed):
    _assert_episode(seed)
