"""Tests for the variable-length ZValue element class."""

import pytest
from hypothesis import given, strategies as st

from repro.core.zvalue import ZValue

bitstrings = st.text(alphabet="01", min_size=0, max_size=16)


def zv(text: str) -> ZValue:
    return ZValue.from_string(text)


class TestConstruction:
    def test_from_string_roundtrip(self):
        for text in ("", "0", "1", "001", "0110", "11111111"):
            assert str(zv(text)) == text

    def test_empty(self):
        e = ZValue.empty()
        assert len(e) == 0
        assert str(e) == ""

    def test_bits_length(self):
        z = ZValue(0b001, 3)
        assert z.bits == 1
        assert z.length == 3

    def test_rejects_overflow_bits(self):
        with pytest.raises(ValueError):
            ZValue(0b100, 2)
        with pytest.raises(ValueError):
            ZValue(-1, 2)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            ZValue(0, -1)

    def test_rejects_non_bitstring(self):
        with pytest.raises(ValueError):
            ZValue.from_string("012")

    def test_from_point_matches_interleave(self):
        z = ZValue.from_point((3, 5), 3)
        assert str(z) == "011011"
        assert z.bits == 27

    def test_iteration_and_indexing(self):
        z = zv("0110")
        assert list(z) == [0, 1, 1, 0]
        assert z.bit(0) == 0
        assert z.bit(1) == 1


class TestFromRegion:
    def test_figure2_element(self):
        # Figure 2: element [2:3, 0:3] -> prefixes [01, 0] -> 001.
        z = ZValue.from_region(los=(2, 0), lengths=(2, 1), depth=3)
        assert str(z) == "001"

    def test_whole_space(self):
        z = ZValue.from_region(los=(0, 0), lengths=(0, 0), depth=3)
        assert str(z) == ""

    def test_single_pixel(self):
        z = ZValue.from_region(los=(3, 5), lengths=(3, 3), depth=3)
        assert str(z) == "011011"

    def test_rejects_unaligned_corner(self):
        # A region fixing 1 x-bit spans 4 pixels; corner must be 0 or 4.
        with pytest.raises(ValueError):
            ZValue.from_region(los=(2, 0), lengths=(1, 0), depth=3)

    def test_rejects_invalid_split_pattern(self):
        # y cannot have more fixed bits than x under x-first splitting.
        with pytest.raises(ValueError):
            ZValue.from_region(los=(0, 0), lengths=(0, 1), depth=3)

    def test_region_roundtrip(self):
        z = zv("00110")
        ranges = z.region(2, 3)
        lengths = z.axis_prefix_lengths(2)
        los = tuple(lo for lo, _ in ranges)
        assert ZValue.from_region(los, lengths, 3) == z


class TestLexicographicOrder:
    def test_prefix_precedes_extension(self):
        assert zv("01") < zv("0110")
        assert zv("01") < zv("0111")
        assert zv("0110") < zv("0111")
        assert zv("0111") < zv("1")

    def test_empty_precedes_all(self):
        assert ZValue.empty() < zv("0")
        assert ZValue.empty() < zv("1")

    def test_precedes_method(self):
        assert zv("00").precedes(zv("01"))
        assert not zv("01").precedes(zv("01"))

    def test_equality(self):
        assert zv("0110") == zv("0110")
        assert zv("0110") != zv("01100")
        assert zv("0") != zv("00")

    def test_total_order_exhaustive(self):
        # Lexicographic bitstring order over all strings up to length 4.
        strings = sorted(
            {s for n in range(5) for s in _all_bitstrings(n)}
        )
        values = sorted(zv(s) for s in strings)
        assert [str(v) for v in values] == strings

    @given(bitstrings, bitstrings)
    def test_matches_python_string_order(self, a, b):
        # '0' < '1' in ASCII, so Python string order IS bitstring
        # lexicographic order.
        assert (zv(a) < zv(b)) == (a < b)

    @given(bitstrings, bitstrings, bitstrings)
    def test_transitivity(self, a, b, c):
        za, zb, zc = zv(a), zv(b), zv(c)
        if za < zb and zb < zc:
            assert za < zc


def _all_bitstrings(n):
    if n == 0:
        return [""]
    shorter = _all_bitstrings(n - 1)
    return [s + b for s in shorter for b in "01"]


class TestContainment:
    def test_prefix_is_containment(self):
        assert zv("01").contains(zv("0110"))
        assert zv("01").contains(zv("01"))
        assert not zv("0110").contains(zv("01"))
        assert not zv("00").contains(zv("01"))

    def test_in_operator(self):
        assert zv("0110") in zv("01")
        assert zv("01") not in zv("0110")

    def test_empty_contains_everything(self):
        assert ZValue.empty().contains(zv("010101"))

    @given(bitstrings, bitstrings)
    def test_matches_startswith(self, a, b):
        assert zv(a).contains(zv(b)) == b.startswith(a)

    @given(bitstrings, bitstrings)
    def test_related_or_disjoint_intervals(self, a, b):
        # Containment <=> nested z intervals; otherwise disjoint.
        za, zb = zv(a), zv(b)
        total = 20
        alo, ahi = za.interval(total)
        blo, bhi = zb.interval(total)
        if za.is_related_to(zb):
            assert (alo <= blo and bhi <= ahi) or (blo <= alo and ahi <= bhi)
        else:
            assert ahi < blo or bhi < alo

    def test_common_prefix(self):
        assert str(zv("0110").common_prefix(zv("0101"))) == "01"
        assert str(zv("0110").common_prefix(zv("0110"))) == "0110"
        assert str(zv("1").common_prefix(zv("0"))) == ""

    @given(bitstrings, bitstrings)
    def test_common_prefix_contains_both(self, a, b):
        p = zv(a).common_prefix(zv(b))
        assert p.contains(zv(a))
        assert p.contains(zv(b))


class TestNavigation:
    def test_child_parent(self):
        z = zv("01")
        assert str(z.child(0)) == "010"
        assert str(z.child(1)) == "011"
        assert z.child(1).parent() == z

    def test_parent_of_root_fails(self):
        with pytest.raises(ValueError):
            ZValue.empty().parent()

    def test_child_rejects_non_bit(self):
        with pytest.raises(ValueError):
            zv("0").child(2)

    def test_concat(self):
        assert zv("01").concat(zv("10")) == zv("0110")
        assert zv("").concat(zv("10")) == zv("10")

    def test_split_axis_cycles(self):
        assert ZValue.empty().split_axis(2) == 0
        assert zv("0").split_axis(2) == 1
        assert zv("00").split_axis(2) == 0
        assert zv("000").split_axis(3) == 0


class TestIntervals:
    def test_figure3_element(self):
        # Figure 3: the element 001 covers z codes 001000..001111.
        z = zv("001")
        assert z.interval(6) == (0b001000, 0b001111)

    def test_full_resolution_is_singleton(self):
        z = zv("011011")
        assert z.interval(6) == (27, 27)

    def test_whole_space(self):
        assert ZValue.empty().interval(6) == (0, 63)

    def test_too_long_raises(self):
        with pytest.raises(ValueError):
            zv("0101").zlo(3)
        with pytest.raises(ValueError):
            zv("0101").zhi(3)

    @given(bitstrings)
    def test_interval_size_is_power_of_two(self, text):
        z = zv(text)
        lo, hi = z.interval(16)
        size = hi - lo + 1
        assert size == 1 << (16 - len(text))
        assert lo % size == 0


class TestRegion:
    def test_region_of_root(self):
        assert ZValue.empty().region(2, 3) == ((0, 7), (0, 7))

    def test_region_after_one_split(self):
        assert zv("0").region(2, 3) == ((0, 3), (0, 7))
        assert zv("1").region(2, 3) == ((4, 7), (0, 7))

    def test_region_after_two_splits(self):
        assert zv("01").region(2, 3) == ((0, 3), (4, 7))

    def test_point_roundtrip(self):
        z = ZValue.from_point((3, 5), 3)
        assert z.point(2, 3) == (3, 5)

    def test_point_requires_full_resolution(self):
        with pytest.raises(ValueError):
            zv("01").point(2, 3)

    def test_axis_prefix_lengths(self):
        assert zv("").axis_prefix_lengths(2) == (0, 0)
        assert zv("0").axis_prefix_lengths(2) == (1, 0)
        assert zv("01101").axis_prefix_lengths(2) == (3, 2)
        assert zv("0110").axis_prefix_lengths(3) == (2, 1, 1)

    @given(bitstrings.filter(lambda t: len(t) <= 8))
    def test_region_pixels_match_interval(self, text):
        # The pixels of the unshuffled region are exactly the pixels
        # whose z codes lie in the element's interval.
        z = zv(text)
        depth = 4
        (xlo, xhi), (ylo, yhi) = z.region(2, depth)
        from repro.core.interleave import interleave

        codes = sorted(
            interleave((x, y), depth)
            for x in range(xlo, xhi + 1)
            for y in range(ylo, yhi + 1)
        )
        lo, hi = z.interval(2 * depth)
        assert codes == list(range(lo, hi + 1))


class TestHashing:
    def test_distinct_lengths_distinct(self):
        assert hash(zv("0")) != hash(zv("00")) or zv("0") != zv("00")

    def test_usable_in_sets(self):
        s = {zv("01"), zv("01"), zv("10")}
        assert len(s) == 2
