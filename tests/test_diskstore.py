"""Tests for the file-backed page store and persistent zkd trees."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.geometry import Box
from repro.core.rangesearch import brute_force_search
from repro.storage.diskstore import (
    FilePageStore,
    PageOverflowError,
    decode_value,
    encode_value,
)
from repro.storage.page import Page
from repro.storage.prefix_btree import ZkdTree

from conftest import random_box, random_points


# A strategy for persistable payloads.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.tuples(inner, inner), st.lists(inner, max_size=3)
    ),
    max_leaves=6,
)


class TestCodec:
    @given(payloads)
    def test_roundtrip(self, value):
        buf = io.BytesIO()
        encode_value(value, buf)
        buf.seek(0)
        decoded = decode_value(buf)
        if isinstance(value, list):
            # Lists come back as lists, tuples as tuples.
            assert decoded == value
        else:
            assert decoded == value
        assert type(decoded) is type(value) or isinstance(value, bool)

    def test_rejects_unsupported(self):
        with pytest.raises(TypeError):
            encode_value(object(), io.BytesIO())

    def test_distinguishes_bool_from_int(self):
        buf = io.BytesIO()
        encode_value(True, buf)
        encode_value(1, buf)
        buf.seek(0)
        assert decode_value(buf) is True
        assert decode_value(buf) == 1


class TestFilePageStore:
    def test_basic_protocol(self, tmp_path):
        store = FilePageStore(str(tmp_path / "a.zkd"), page_capacity=4)
        page = store.allocate()
        page.insert(7, ("x", 7))
        store.write(page)
        got = store.read(page.page_id)
        assert got.records == [(7, ("x", 7))]
        assert store.reads == 1 and store.writes == 1
        store.close()

    def test_reopen_preserves_pages(self, tmp_path):
        path = str(tmp_path / "b.zkd")
        store = FilePageStore(path, page_capacity=4)
        page = store.allocate()
        page.insert(1, "one")
        page.next_page = None
        store.write(page)
        store.close()

        reopened = FilePageStore(path)
        assert reopened.page_capacity == 4
        assert reopened.page_ids() == [page.page_id]
        assert reopened.peek(page.page_id).records == [(1, "one")]
        reopened.close()

    def test_free_survives_reopen(self, tmp_path):
        path = str(tmp_path / "c.zkd")
        store = FilePageStore(path, page_capacity=4)
        keep = store.allocate()
        drop = store.allocate()
        store.free(drop.page_id)
        store.close()
        reopened = FilePageStore(path)
        assert reopened.page_ids() == [keep.page_id]
        with pytest.raises(KeyError):
            reopened.read(drop.page_id)
        reopened.close()

    def test_capacity_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "d.zkd")
        FilePageStore(path, page_capacity=4).close()
        with pytest.raises(ValueError):
            FilePageStore(path, page_capacity=8)

    def test_new_store_requires_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            FilePageStore(str(tmp_path / "e.zkd"))

    def test_not_a_store_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not a page file, but long enough....")
        with pytest.raises(ValueError):
            FilePageStore(str(path))

    def test_page_overflow(self, tmp_path):
        store = FilePageStore(
            str(tmp_path / "f.zkd"), page_capacity=64, page_size=128
        )
        page = store.allocate()
        for i in range(20):
            page.insert(i, "x" * 50)
        with pytest.raises(PageOverflowError):
            store.write(page)
        store.close()

    def test_missing_page_errors(self, tmp_path):
        store = FilePageStore(str(tmp_path / "g.zkd"), page_capacity=4)
        with pytest.raises(KeyError):
            store.read(99)
        with pytest.raises(KeyError):
            store.write(Page(99, capacity=4))
        with pytest.raises(KeyError):
            store.free(99)
        store.close()

    def test_context_manager(self, tmp_path):
        path = str(tmp_path / "h.zkd")
        with FilePageStore(path, page_capacity=4) as store:
            store.allocate()
        assert store._file.closed


class TestPersistentZkdTree:
    def test_write_reopen_query(self, tmp_path, grid64, rng):
        path = str(tmp_path / "tree.zkd")
        points = random_points(rng, grid64, 500)
        store = FilePageStore(path, page_capacity=20)
        tree = ZkdTree(grid64, store=store)
        tree.insert_many(points)
        box = random_box(rng, grid64)
        expected = tree.range_query(box).matches
        tree.buffer.flush()
        store.sync()
        store.close()

        with FilePageStore(path) as reopened_store:
            reopened = ZkdTree.open(grid64, reopened_store)
            reopened.tree.check_invariants()
            assert len(reopened) == 500
            result = reopened.range_query(box)
            assert result.matches == expected
            assert list(result.matches) == brute_force_search(
                grid64, points, box
            )

    def test_maintenance_after_reopen(self, tmp_path, grid64, rng):
        path = str(tmp_path / "tree2.zkd")
        points = random_points(rng, grid64, 300)
        store = FilePageStore(path, page_capacity=10)
        tree = ZkdTree(grid64, page_capacity=10, store=store)
        tree.insert_many(points)
        tree.buffer.flush()
        store.close()

        with FilePageStore(path) as second:
            tree2 = ZkdTree.open(grid64, second)
            for p in points[:100]:
                assert tree2.delete(tuple(p))
            tree2.insert((0, 0))
            tree2.tree.check_invariants()
            assert len(tree2) == 201
            tree2.buffer.flush()
            second.sync()

        with FilePageStore(path) as third:
            tree3 = ZkdTree.open(grid64, third)
            assert len(tree3) == 201
            assert (0, 0) in tree3

    def test_bulk_load_then_persist(self, tmp_path, grid64, rng):
        path = str(tmp_path / "tree3.zkd")
        points = random_points(rng, grid64, 400)
        with FilePageStore(path, page_capacity=20) as store:
            tree = ZkdTree(grid64, store=store)
            tree.bulk_load(points)
            tree.buffer.flush()
            store.sync()
        with FilePageStore(path) as store2:
            tree2 = ZkdTree.open(grid64, store2)
            assert sorted(tree2.points()) == sorted(map(tuple, points))

    def test_open_empty_store(self, tmp_path, grid64):
        with FilePageStore(str(tmp_path / "empty.zkd"), page_capacity=8) as s:
            tree = ZkdTree.open(grid64, s)
            assert len(tree) == 0
            tree.insert((1, 1))
            assert (1, 1) in tree

    def test_io_counters_measure_file_traffic(self, tmp_path, grid64, rng):
        path = str(tmp_path / "tree4.zkd")
        points = random_points(rng, grid64, 400)
        with FilePageStore(path, page_capacity=20) as store:
            tree = ZkdTree(grid64, store=store, buffer_frames=2)
            tree.insert_many(points)
            tree.buffer.flush()
            before = store.reads
            tree.range_query(Box(((0, 31), (0, 31))))
            assert store.reads > before  # small buffer: real file reads
