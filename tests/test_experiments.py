"""Tests for the experiment harness, comparison driver and figures."""

import pytest

from repro.experiments.comparison import compare_structures, format_comparison
from repro.experiments.figures import (
    figure1_range_query,
    figure2_decomposition,
    figure3_consecutive_zvalues,
    figure4_zorder_curve,
    figure5_merge_trace,
    figure6_partition_map,
)
from repro.experiments.harness import (
    build_tree,
    check_findings,
    format_summary,
    run_queries,
    run_ucd_experiment,
    summarize,
)
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import make_dataset
from repro.workloads.queries import query_workload

SMALL = dict(
    npoints=1000,
    volumes=(0.01, 0.04),
    aspects=(1.0, 8.0),
    locations=3,
)


class TestHarness:
    def test_build_tree(self, grid64):
        ds = make_dataset("U", grid64, 500)
        tree = build_tree(ds, page_capacity=10)
        assert len(tree) == 500
        assert tree.npages >= 50

    def test_run_and_summarize(self, grid64):
        measurements, rows = run_ucd_experiment(grid64, "U", **SMALL)
        assert len(measurements) == 2 * 2 * 3
        assert len(rows) == 4  # volumes x aspects
        for row in rows:
            assert row.mean_pages > 0
            assert 0 <= row.mean_efficiency <= 1

    def test_summary_row_grouping(self, grid64):
        ds = make_dataset("U", grid64, 500)
        tree = build_tree(ds, 10)
        specs = query_workload(
            grid64, volumes=(0.02,), aspects=(1.0,), locations=4
        )
        rows = summarize(run_queries(ds, tree, specs))
        assert len(rows) == 1
        assert rows[0].dataset == "U"

    def test_format_summary(self, grid64):
        _, rows = run_ucd_experiment(grid64, "U", **SMALL)
        text = format_summary(rows)
        assert "volume" in text and "eff" in text
        assert len(text.splitlines()) == 2 + len(rows)

    def test_check_findings_requires_single_dataset(self, grid64):
        _, u_rows = run_ucd_experiment(grid64, "U", **SMALL)
        _, c_rows = run_ucd_experiment(
            grid64, "C", npoints=1000, volumes=(0.01,),
            aspects=(1.0,), locations=2,
        )
        with pytest.raises(ValueError):
            check_findings(list(u_rows) + list(c_rows))

    def test_findings_structure(self, grid64):
        _, rows = run_ucd_experiment(grid64, "U", **SMALL)
        findings = check_findings(rows)
        assert 0 <= findings.prediction_upper_bound_fraction <= 1
        assert len(findings.best_aspects) <= 2

    def test_all_three_datasets_run(self, grid64):
        for name in ("U", "C", "D"):
            _, rows = run_ucd_experiment(
                grid64, name, npoints=1000,
                volumes=(0.02,), aspects=(1.0,), locations=2,
            )
            assert rows and rows[0].dataset == name


class TestComparison:
    def test_structures_agree_and_summarize(self, grid64):
        ds = make_dataset("U", grid64, 600, seed=2)
        specs = query_workload(
            grid64, volumes=(0.02, 0.05), aspects=(1.0,), locations=3, seed=3
        )
        rows = compare_structures(ds, specs, page_capacity=10)
        names = {r.structure for r in rows}
        assert names == {"zkd-btree", "kd-tree", "grid-file", "heap-scan"}
        by_name = {r.structure: r for r in rows}
        # All structures returned the same matches (enforced internally);
        # the scan must be the most expensive per query.
        assert by_name["heap-scan"].mean_pages >= by_name["zkd-btree"].mean_pages
        assert by_name["heap-scan"].mean_pages >= by_name["kd-tree"].mean_pages

    def test_zkd_comparable_to_kdtree(self, grid64):
        """The abstract's claim, at small scale: zkd within a small
        constant factor of the kd tree."""
        ds = make_dataset("U", grid64, 1000, seed=4)
        specs = query_workload(
            grid64, volumes=(0.01, 0.04), aspects=(1.0, 2.0), locations=3,
            seed=5,
        )
        rows = {r.structure: r for r in compare_structures(ds, specs, 20)}
        ratio = rows["zkd-btree"].mean_pages / rows["kd-tree"].mean_pages
        assert ratio < 3.0

    def test_format_comparison(self, grid64):
        ds = make_dataset("U", grid64, 300, seed=2)
        specs = query_workload(
            grid64, volumes=(0.02,), aspects=(1.0,), locations=2, seed=3
        )
        text = format_comparison(compare_structures(ds, specs, 10))
        assert "zkd-btree" in text and "heap-scan" in text


class TestFigures:
    def test_figure1_shape(self):
        text = figure1_range_query()
        lines = text.splitlines()
        assert len(lines) == 9  # 8 rows + axis row
        assert text.count("#") == 15  # the box covers 15 pixels

    def test_figure2_labels(self):
        labels, drawing = figure2_decomposition()
        assert labels == [
            "00001", "00011", "001", "010010", "011000", "011010",
        ]
        assert "001" in drawing

    def test_figure3_consecutive(self):
        codes, text = figure3_consecutive_zvalues()
        assert codes == list(range(8, 16))
        assert "001" in text

    def test_figure4_rank27(self):
        matrix, text = figure4_zorder_curve()
        assert matrix[5][3] == 27  # [x=3, y=5] -> 27
        assert "27" in text

    def test_figure5_matches(self):
        matches, text = figure5_merge_trace()
        assert set(matches) == {(1, 1), (2, 3), (2, 4)}
        assert "matches" in text

    def test_figure6_renders(self, grid64, rng):
        from conftest import random_points

        tree = ZkdTree(grid64, page_capacity=10)
        tree.insert_many(random_points(rng, grid64, 300))
        text = figure6_partition_map(tree, max_side=32)
        lines = text.splitlines()
        assert len(lines) == 32
        assert all(len(line) == 32 for line in lines)
        # More than one page must appear.
        assert len(set("".join(lines))) > 1

    def test_figure6_requires_2d(self, grid3d):
        tree = ZkdTree(grid3d)
        tree.insert((0, 0, 0))
        with pytest.raises(ValueError):
            figure6_partition_map(tree)
