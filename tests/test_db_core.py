"""Tests for schemas, relations, expressions and classic operators."""

import pytest

from repro.db.expr import col, element_contains, element_precedes, lit
from repro.db.operators import (
    cross_product,
    distinct,
    equi_join,
    limit,
    natural_join,
    project,
    rename,
    select,
    sort,
    union,
)
from repro.db.relation import Relation
from repro.db.schema import Column, Schema
from repro.db.types import ELEMENT, INTEGER, STRING


def people():
    schema = Schema.of(("id", INTEGER), ("name", STRING), ("age", INTEGER))
    return Relation(
        "people",
        schema,
        [(1, "ada", 36), (2, "alan", 41), (3, "grace", 85), (4, "edsger", 72)],
    )


class TestSchema:
    def test_of_and_lookup(self):
        schema = Schema.of(("x", INTEGER), ("y", INTEGER))
        assert schema.names == ["x", "y"]
        assert schema.index_of("y") == 1
        assert schema.column("x").domain == INTEGER
        assert schema.has_column("x")
        assert not schema.has_column("z")

    def test_missing_column(self):
        schema = Schema.of(("x", INTEGER))
        with pytest.raises(KeyError):
            schema.index_of("nope")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema.of(("x", INTEGER), ("x", STRING))

    def test_bad_column_name(self):
        with pytest.raises(ValueError):
            Column("has space", INTEGER)
        # @ and _ are allowed (the paper's p@ style).
        Column("p@", INTEGER)
        Column("right_p@", INTEGER)

    def test_validate_row(self):
        schema = Schema.of(("x", INTEGER), ("name", STRING))
        assert schema.validate_row((1, "a")) == (1, "a")
        with pytest.raises(ValueError):
            schema.validate_row((1,))
        with pytest.raises(TypeError):
            schema.validate_row(("one", "a"))

    def test_project_and_rename(self):
        schema = Schema.of(("x", INTEGER), ("y", INTEGER))
        assert schema.project(["y"]).names == ["y"]
        assert schema.rename({"x": "xx"}).names == ["xx", "y"]

    def test_concat_with_prefixes(self):
        a = Schema.of(("x", INTEGER))
        b = Schema.of(("x", INTEGER))
        combined = a.concat(b, prefix_self="l_", prefix_other="r_")
        assert combined.names == ["l_x", "r_x"]

    def test_equality(self):
        assert Schema.of(("x", INTEGER)) == Schema.of(("x", INTEGER))
        assert Schema.of(("x", INTEGER)) != Schema.of(("x", STRING))


class TestRelation:
    def test_insert_validates(self):
        r = Relation("t", Schema.of(("x", INTEGER)))
        r.insert((1,))
        with pytest.raises(TypeError):
            r.insert(("one",))
        assert len(r) == 1

    def test_column_values(self):
        r = people()
        assert r.column_values("name") == ["ada", "alan", "grace", "edsger"]

    def test_pretty(self):
        text = people().pretty(limit=2)
        assert "ada" in text and "more rows" in text

    def test_repr(self):
        assert "4 rows" in repr(people())


class TestExpressions:
    def test_comparisons(self):
        r = people()
        assert len(select(r, col("age") > 50)) == 2
        assert len(select(r, col("age") >= 41)) == 3
        assert len(select(r, col("age") == 36)) == 1
        assert len(select(r, col("age") != 36)) == 3
        assert len(select(r, col("age") < lit(41))) == 1
        assert len(select(r, col("age") <= 41)) == 2

    def test_boolean_connectives(self):
        r = people()
        out = select(r, (col("age") > 40) & (col("name") == "alan"))
        assert out.rows == [(2, "alan", 41)]
        out = select(r, (col("age") > 80) | (col("age") < 40))
        assert len(out) == 2
        out = select(r, ~(col("age") > 40))
        assert len(out) == 1

    def test_between(self):
        r = people()
        assert len(select(r, col("age").between(40, 80))) == 2

    def test_arithmetic(self):
        r = people()
        out = select(r, col("age") + col("id") > 85)
        assert len(out) == 1  # grace: 85 + 3 = 88

    def test_column_to_column(self):
        schema = Schema.of(("a", INTEGER), ("b", INTEGER))
        r = Relation("t", schema, [(1, 2), (3, 3), (5, 4)])
        assert len(select(r, col("a") < col("b"))) == 1

    def test_element_predicates(self):
        from repro.core.zvalue import ZValue

        schema = Schema.of(("e1", ELEMENT), ("e2", ELEMENT))
        r = Relation(
            "t",
            schema,
            [
                (ZValue.from_string("00"), ZValue.from_string("001")),
                (ZValue.from_string("01"), ZValue.from_string("001")),
            ],
        )
        out = select(r, element_contains(col("e1"), col("e2")))
        assert len(out) == 1
        out = select(r, element_precedes(col("e1"), col("e2")))
        assert len(out) == 1


class TestOperators:
    def test_project_bag_semantics(self):
        schema = Schema.of(("x", INTEGER), ("y", INTEGER))
        r = Relation("t", schema, [(1, 1), (1, 2)])
        out = project(r, ["x"])
        assert out.rows == [(1,), (1,)]  # duplicates kept

    def test_distinct(self):
        schema = Schema.of(("x", INTEGER))
        r = Relation("t", schema, [(1,), (1,), (2,)])
        assert distinct(r).rows == [(1,), (2,)]

    def test_sort(self):
        out = sort(people(), ["age"])
        assert [row[2] for row in out] == [36, 41, 72, 85]
        out = sort(people(), ["age"], reverse=True)
        assert [row[2] for row in out] == [85, 72, 41, 36]

    def test_limit(self):
        assert len(limit(people(), 2)) == 2
        with pytest.raises(ValueError):
            limit(people(), -1)

    def test_rename_operator(self):
        out = rename(people(), {"name": "who"})
        assert out.schema.names == ["id", "who", "age"]

    def test_cross_product(self):
        a = Relation("a", Schema.of(("x", INTEGER)), [(1,), (2,)])
        b = Relation("b", Schema.of(("y", INTEGER)), [(10,), (20,)])
        out = cross_product(a, b)
        assert len(out) == 4
        assert out.schema.names == ["x", "y"]

    def test_cross_product_collision_prefixes(self):
        a = Relation("a", Schema.of(("x", INTEGER)), [(1,)])
        b = Relation("b", Schema.of(("x", INTEGER)), [(2,)])
        out = cross_product(a, b)
        assert out.schema.names == ["left_x", "right_x"]

    def test_equi_join(self):
        a = Relation(
            "a", Schema.of(("id", INTEGER), ("city", STRING)),
            [(1, "rome"), (2, "oslo")],
        )
        b = Relation(
            "b", Schema.of(("pid", INTEGER), ("age", INTEGER)),
            [(1, 30), (1, 31), (3, 9)],
        )
        out = equi_join(a, b, "id", "pid")
        assert len(out) == 2
        assert all(row[0] == row[2] for row in out)

    def test_natural_join(self):
        a = Relation(
            "a", Schema.of(("id", INTEGER), ("city", STRING)),
            [(1, "rome"), (2, "oslo")],
        )
        b = Relation(
            "b", Schema.of(("id", INTEGER), ("age", INTEGER)),
            [(1, 30), (2, 40), (2, 41)],
        )
        out = natural_join(a, b)
        assert len(out) == 3
        assert out.schema.names == ["id", "city", "age"]

    def test_natural_join_no_shared_is_product(self):
        a = Relation("a", Schema.of(("x", INTEGER)), [(1,)])
        b = Relation("b", Schema.of(("y", INTEGER)), [(2,)])
        assert natural_join(a, b).rows == [(1, 2)]

    def test_union(self):
        schema = Schema.of(("x", INTEGER))
        a = Relation("a", schema, [(1,)])
        b = Relation("b", schema, [(2,)])
        assert union(a, b).rows == [(1,), (2,)]
        c = Relation("c", Schema.of(("y", INTEGER)), [(3,)])
        with pytest.raises(ValueError):
            union(a, c)
