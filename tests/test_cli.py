"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_dataset_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "X"])


class TestFigures:
    def test_prints_all_figures(self):
        code, text = run(["figures"])
        assert code == 0
        for fig in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"):
            assert fig in text
        assert "27" in text  # rank of [3,5]
        assert "001" in text  # the big element of Figure 2


class TestExperiment:
    def test_small_run(self):
        code, text = run(
            [
                "experiment", "U",
                "--points", "500",
                "--depth", "7",
                "--locations", "2",
            ]
        )
        assert code == 0
        assert "volume" in text
        assert "pages grow with volume" in text

    def test_all_datasets(self):
        for name in ("U", "C", "D"):
            code, text = run(
                [
                    "experiment", name,
                    "--points", "500",
                    "--depth", "6",
                    "--locations", "1",
                ]
            )
            assert code == 0
            assert name in text


class TestPartition:
    def test_renders_map(self):
        code, text = run(
            [
                "partition", "C",
                "--points", "500",
                "--depth", "6",
                "--side", "16",
            ]
        )
        assert code == 0
        lines = text.splitlines()
        assert "data pages" in lines[0]
        assert len(lines) == 17  # header + 16 map rows


class TestCompare:
    def test_comparison_table(self):
        code, text = run(
            ["compare", "U", "--points", "400", "--depth", "6"]
        )
        assert code == 0
        for structure in ("zkd-btree", "kd-tree", "grid-file", "heap-scan"):
            assert structure in text


class TestSpace:
    def test_analysis_output(self):
        code, text = run(["space", "109", "91", "--depth", "8"])
        assert code == 0
        assert "E(109, 91)" in text
        assert "cyclicity check" in text
        assert "coarsening" in text


class TestSql:
    QUERY = (
        "SELECT id@, x FROM points "
        "WHERE BOX(0, 64, 0, 64) CONTAINS POINT(x, y) "
        "AND x > 10 ORDER BY id@ LIMIT 4"
    )
    ARGS = ["--points", "300", "--depth", "7", "--objects", "10"]

    def test_rows_output(self):
        code, text = run(["sql", self.QUERY] + self.ARGS)
        assert code == 0
        lines = text.splitlines()
        assert lines[0] == "id@  x"
        assert lines[-1].endswith("row(s))")

    def test_stdin_dash(self, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO(self.QUERY))
        code, text = run(["sql", "-"] + self.ARGS)
        assert code == 0
        assert "row(s))" in text

    def test_parse_error_exits_2_with_caret(self):
        code, text = run(["sql", "SELECT FROM points"] + self.ARGS)
        assert code == 2
        assert "^" in text
        assert "parse error at line 1" in text

    def test_bind_error_exits_2(self):
        code, text = run(["sql", "SELECT nope FROM points"] + self.ARGS)
        assert code == 2
        assert "bind error" in text and "nope" in text

    def test_explain_statement(self):
        code, text = run(["sql", "EXPLAIN " + self.QUERY] + self.ARGS)
        assert code == 0
        assert "SQL:" in text and "filters" in text

    def test_explain_analyze_flag(self):
        code, text = run(
            ["sql", self.QUERY, "--explain-analyze"] + self.ARGS
        )
        assert code == 0
        assert "plan.multi" in text
        assert "filter[x > 10]" in text

    def test_join_over_demo_objects(self):
        code, text = run(
            [
                "sql",
                "SELECT regions.id@, zones.id@ FROM regions "
                "JOIN zones ON OVERLAPS(regions.geom, zones.geom) "
                "ORDER BY regions.id@, zones.id@",
            ]
            + self.ARGS
        )
        assert code == 0
        assert "regions_id@  zones_id@" in text

    def test_sessions_assert_identical(self):
        code, text = run(["sql", self.QUERY, "--sessions", "3"] + self.ARGS)
        assert code == 0
        assert "3 snapshot sessions agreed" in text

    def test_shards(self):
        code, text = run(["sql", self.QUERY, "--shards", "4"] + self.ARGS)
        assert code == 0
        assert "row(s))" in text

    def test_json_output(self, tmp_path):
        path = tmp_path / "result.json"
        code, text = run(
            ["sql", self.QUERY, "--json", str(path)] + self.ARGS
        )
        assert code == 0
        import json

        payload = json.loads(path.read_text())
        assert payload["mode"] == "rows"
        assert payload["columns"] == ["id@", "x"]

    def test_no_reorder_same_rows(self):
        _, ordered = run(["sql", self.QUERY] + self.ARGS)
        _, naive = run(["sql", self.QUERY, "--no-reorder"] + self.ARGS)
        assert ordered == naive
