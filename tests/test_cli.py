"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_dataset_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "X"])


class TestFigures:
    def test_prints_all_figures(self):
        code, text = run(["figures"])
        assert code == 0
        for fig in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"):
            assert fig in text
        assert "27" in text  # rank of [3,5]
        assert "001" in text  # the big element of Figure 2


class TestExperiment:
    def test_small_run(self):
        code, text = run(
            [
                "experiment", "U",
                "--points", "500",
                "--depth", "7",
                "--locations", "2",
            ]
        )
        assert code == 0
        assert "volume" in text
        assert "pages grow with volume" in text

    def test_all_datasets(self):
        for name in ("U", "C", "D"):
            code, text = run(
                [
                    "experiment", name,
                    "--points", "500",
                    "--depth", "6",
                    "--locations", "1",
                ]
            )
            assert code == 0
            assert name in text


class TestPartition:
    def test_renders_map(self):
        code, text = run(
            [
                "partition", "C",
                "--points", "500",
                "--depth", "6",
                "--side", "16",
            ]
        )
        assert code == 0
        lines = text.splitlines()
        assert "data pages" in lines[0]
        assert len(lines) == 17  # header + 16 map rows


class TestCompare:
    def test_comparison_table(self):
        code, text = run(
            ["compare", "U", "--points", "400", "--depth", "6"]
        )
        assert code == 0
        for structure in ("zkd-btree", "kd-tree", "grid-file", "heap-scan"):
            assert structure in text


class TestSpace:
    def test_analysis_output(self):
        code, text = run(["space", "109", "91", "--depth", "8"])
        assert code == 0
        assert "E(109, 91)" in text
        assert "cyclicity check" in text
        assert "coarsening" in text
