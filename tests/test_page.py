"""Tests for the page and page-store model."""

import pytest

from repro.storage.page import Page, PageStore


class TestPage:
    def test_insert_keeps_order(self):
        page = Page(0, capacity=5)
        for key in (5, 1, 3, 2):
            page.insert(key, f"v{key}")
        assert page.keys() == [1, 2, 3, 5]
        assert page.low_key == 1
        assert page.high_key == 5

    def test_duplicates_stable(self):
        page = Page(0, capacity=5)
        page.insert(3, "first")
        page.insert(3, "second")
        assert page.find(3) == ["first", "second"]

    def test_full_page_rejects_insert(self):
        page = Page(0, capacity=2)
        page.insert(1, None)
        page.insert(2, None)
        assert page.is_full
        with pytest.raises(ValueError):
            page.insert(3, None)

    def test_remove_by_key(self):
        page = Page(0, capacity=4)
        page.insert(1, "a")
        page.insert(2, "b")
        assert page.remove(1)
        assert page.keys() == [2]
        assert not page.remove(9)

    def test_remove_by_key_and_value(self):
        page = Page(0, capacity=4)
        page.insert(1, "a")
        page.insert(1, "b")
        assert page.remove(1, "b")
        assert page.find(1) == ["a"]
        assert not page.remove(1, "z")

    def test_empty_page_key_access_raises(self):
        page = Page(0, capacity=2)
        with pytest.raises(ValueError):
            _ = page.low_key

    def test_split_moves_upper_half_and_links(self):
        page = Page(0, capacity=8, next_page=77)
        for key in range(6):
            page.insert(key, None)
        sibling = page.split(new_page_id=1)
        assert page.keys() == [0, 1, 2]
        assert sibling.keys() == [3, 4, 5]
        assert page.next_page == 1
        assert sibling.next_page == 77

    def test_capacity_minimum(self):
        with pytest.raises(ValueError):
            Page(0, capacity=1)

    def test_iteration(self):
        page = Page(0, capacity=4)
        page.insert(2, "b")
        page.insert(1, "a")
        assert list(page) == [(1, "a"), (2, "b")]


class TestPageStore:
    def test_allocate_read_write(self):
        store = PageStore(4)
        page = store.allocate()
        assert store.reads == 0
        got = store.read(page.page_id)
        assert got is page
        assert store.reads == 1
        store.write(page)
        assert store.writes == 1

    def test_ids_unique_and_increasing(self):
        store = PageStore(4)
        ids = [store.allocate().page_id for _ in range(5)]
        assert ids == sorted(set(ids))
        assert len(store) == 5
        assert store.allocations == 5

    def test_read_missing_raises(self):
        store = PageStore(4)
        with pytest.raises(KeyError):
            store.read(99)

    def test_write_missing_raises(self):
        store = PageStore(4)
        with pytest.raises(KeyError):
            store.write(Page(99, capacity=4))

    def test_free(self):
        store = PageStore(4)
        page = store.allocate()
        store.free(page.page_id)
        with pytest.raises(KeyError):
            store.read(page.page_id)
        with pytest.raises(KeyError):
            store.free(page.page_id)

    def test_peek_does_not_count(self):
        store = PageStore(4)
        page = store.allocate()
        store.peek(page.page_id)
        assert store.reads == 0

    def test_capacity_propagates(self):
        store = PageStore(7)
        assert store.allocate().capacity == 7

    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            PageStore(1)
