"""Batched execution is byte-identical to per-request execution.

The server's batching layer rests on one identity: merging every
request's z-element intervals, scanning the union once, and slicing
each request's elements back out equals running ``range_query`` per
request.  This suite differential-tests that identity over live trees,
sharded stores, snapshot views and the semantic cache, plus the
interval-merge algebra and the :class:`QueryBatcher` coalescing
machinery (grouping by (index, epoch) key, serial degeneration,
exception propagation).
"""

from __future__ import annotations

import asyncio
import random
import time

import pytest

from repro.cache import QueryResultCache
from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID
from repro.server import (
    QueryBatcher,
    batched_range_matches,
    merge_intervals,
)
from repro.shard import ShardedSpatialStore
from repro.storage.prefix_btree import ZkdTree
from repro.workloads.datasets import make_dataset


# ----------------------------------------------------------------------
# merge_intervals algebra
# ----------------------------------------------------------------------


def test_merge_intervals_empty():
    assert merge_intervals([]) == []


def test_merge_intervals_overlap_and_adjacency():
    # Overlap merges; adjacency merges ([a,b] + [b+1,c] == [a,c]);
    # a real gap stays split.
    assert merge_intervals([(0, 4), (2, 6)]) == [(0, 6)]
    assert merge_intervals([(0, 4), (5, 9)]) == [(0, 9)]
    assert merge_intervals([(0, 4), (6, 9)]) == [(0, 4), (6, 9)]


def test_merge_intervals_unsorted_and_contained():
    got = merge_intervals([(10, 12), (0, 20), (3, 5), (30, 30)])
    assert got == [(0, 20), (30, 30)]


def test_merge_intervals_is_disjoint_ascending():
    rng = random.Random(7)
    intervals = [
        tuple(sorted((rng.randrange(1000), rng.randrange(1000))))
        for _ in range(200)
    ]
    merged = merge_intervals(intervals)
    for (alo, ahi), (blo, bhi) in zip(merged, merged[1:]):
        assert ahi + 1 < blo  # disjoint with a true gap between
    covered = set()
    for lo, hi in merged:
        covered.update(range(lo, hi + 1))
    wanted = set()
    for lo, hi in intervals:
        wanted.update(range(lo, hi + 1))
    assert covered == wanted


# ----------------------------------------------------------------------
# batched_range_matches differential suite
# ----------------------------------------------------------------------

GRID = Grid(ndims=2, depth=7)


def _tree(npoints=2500, seed=0, grid=GRID):
    tree = ZkdTree(grid, page_capacity=16)
    tree.insert_many(make_dataset("C", grid, npoints, seed=seed).points)
    return tree


def _box_mix(grid, seed, count=12):
    """Fat, thin, degenerate, overlapping and out-of-bounds boxes."""
    rng = random.Random(seed)
    side = grid.side
    boxes = []
    for _ in range(count):
        x0, x1 = sorted(rng.randrange(side) for _ in range(2))
        y0, y1 = sorted(rng.randrange(side) for _ in range(2))
        boxes.append(Box(((x0, x1), (y0, y1))))
    p = rng.randrange(side)
    boxes.append(Box(((p, p), (p, p))))  # degenerate point box
    boxes.append(Box(((0, side - 1), (0, side - 1))))  # whole space
    boxes.append(Box(((0, side - 1), (side // 3, side // 3))))  # stripe
    boxes.append(Box(((side // 2, side * 2), (0, side // 2))))  # clipped
    # Heavy overlap: the shared-scan path must still answer each
    # request with exactly its own matches.
    base = boxes[0]
    boxes.append(base)
    boxes.append(
        Box(tuple((lo, min(hi + 3, side - 1)) for lo, hi in base.ranges))
    )
    return boxes


def _assert_identity(target, grid, boxes, **kwargs):
    got = batched_range_matches(target, grid, boxes, **kwargs)
    want = [
        target.range_query(box, use_fast=True).matches for box in boxes
    ]
    assert got == want


def test_batched_matches_live_tree():
    tree = _tree()
    for seed in range(3):
        _assert_identity(tree, GRID, _box_mix(GRID, seed))


def test_batched_matches_sharded_store():
    points = make_dataset("C", GRID, 3000, seed=1).points
    store = ShardedSpatialStore.build(GRID, points, nshards=4)
    try:
        for seed in range(3):
            _assert_identity(store, GRID, _box_mix(GRID, seed + 10))
    finally:
        store.close()


def test_batched_matches_snapshot_views_per_epoch():
    db = SpatialDatabase(GRID, page_capacity=16, concurrency=True)
    db.create_table(
        "points", Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    points = make_dataset("C", GRID, 1200, seed=2).points
    db.insert_many(
        "points", [(f"p{i}", x, y) for i, (x, y) in enumerate(points)]
    )
    db.create_index("points_xy", "points", ("x", "y"))
    entry = db.catalog.index("points_xy")
    boxes = _box_mix(GRID, 42)
    whole = Box(((0, GRID.side - 1), (0, GRID.side - 1)))
    with db.session() as pinned:
        old_epoch = pinned.epoch
        old_view = entry.tree.snapshot_view(old_epoch)
        before = batched_range_matches(old_view, GRID, boxes)
        old_total = len(batched_range_matches(old_view, GRID, [whole])[0])
        with db.session() as writer:
            writer.insert("points", ("new", 3, 3))
            writer.commit()
        with db.session() as fresh:
            new_view = entry.tree.snapshot_view(fresh.epoch)
            _assert_identity(new_view, GRID, boxes)
            new_total = len(
                batched_range_matches(new_view, GRID, [whole])[0]
            )
            # The new epoch sees exactly one more point ...
            assert new_total == old_total + 1
        # ... while the pinned epoch answers exactly as before.
        _assert_identity(old_view, GRID, boxes)
        assert batched_range_matches(old_view, GRID, boxes) == before


def test_batched_with_cache_second_pass_hits_and_agrees():
    tree = _tree(npoints=1500, seed=3)
    cache = QueryResultCache(GRID)
    boxes = _box_mix(GRID, 5)
    expected = [
        tree.range_query(box, use_fast=True).matches for box in boxes
    ]
    first = batched_range_matches(tree, GRID, boxes, cache=cache)
    assert first == expected
    hits_before = cache.stats.get("cache.hit", 0)
    second = batched_range_matches(tree, GRID, boxes, cache=cache)
    assert second == expected
    assert cache.stats.get("cache.hit", 0) > hits_before


def test_batched_use_fast_false_agrees():
    tree = _tree(npoints=800, seed=4)
    boxes = _box_mix(GRID, 6, count=6)
    fast = batched_range_matches(tree, GRID, boxes, use_fast=True)
    slow = batched_range_matches(tree, GRID, boxes, use_fast=False)
    assert fast == slow


# ----------------------------------------------------------------------
# QueryBatcher coalescing
# ----------------------------------------------------------------------


def test_batcher_groups_by_key_while_worker_busy():
    async def run():
        calls = []

        def execute(key, payloads):
            calls.append((key, list(payloads)))
            time.sleep(0.05)  # hold the worker so later submits coalesce
            return [f"{key}:{p}" for p in payloads]

        batcher = QueryBatcher(execute, max_batch=16)
        try:
            first = asyncio.ensure_future(batcher.submit("a", 0))
            await asyncio.sleep(0.02)  # first batch (size 1) dispatched
            rest = [
                asyncio.ensure_future(batcher.submit(key, i))
                for i, key in enumerate(("a", "b", "a", "b"), start=1)
            ]
            results = await asyncio.gather(first, *rest)
            assert results == ["a:0", "a:1", "b:2", "a:3", "b:4"]
            # One call for the lone first request, then one per key for
            # the coalesced burst: same-key requests shared a pass.
            assert calls[0] == ("a", [0])
            assert dict(calls[1:]) == {"a": [1, 3], "b": [2, 4]}
            assert batcher.stats["server.batches"] == 3
            assert batcher.stats["server.batched_requests"] == 5
            assert batcher.stats["server.batch_size_peak"] == 2
        finally:
            batcher.close()

    asyncio.run(run())


def test_batcher_max_batch_one_is_serial():
    async def run():
        sizes = []

        def execute(key, payloads):
            sizes.append(len(payloads))
            return list(payloads)

        batcher = QueryBatcher(execute, max_batch=1)
        try:
            results = await asyncio.gather(
                *[batcher.submit("k", i) for i in range(5)]
            )
            assert results == [0, 1, 2, 3, 4]
            assert sizes == [1, 1, 1, 1, 1]
            assert batcher.stats["server.batch_size_peak"] == 1
        finally:
            batcher.close()

    asyncio.run(run())


def test_batcher_propagates_executor_errors():
    async def run():
        def execute(key, payloads):
            raise ValueError("store exploded")

        batcher = QueryBatcher(execute, max_batch=8)
        try:
            with pytest.raises(ValueError, match="store exploded"):
                await batcher.submit("k", 1)
        finally:
            batcher.close()

    asyncio.run(run())
