"""Tests for tree-resident element relations and the paged spatial join."""



from repro.core.decompose import Element, decompose_box
from repro.core.geometry import Box
from repro.core.spatialjoin import overlapping_pairs
from repro.storage.element_tree import ElementTree, JoinStats, tree_spatial_join

from conftest import random_box


def load_tree(grid, boxes, capacity=8):
    tree = ElementTree(grid, page_capacity=capacity)
    tagged = []
    for name, box in boxes.items():
        zvalues = decompose_box(grid, box)
        tree.insert_zvalues(zvalues, name)
        tagged.extend((Element.of(z, grid), name) for z in zvalues)
    return tree, tagged


class TestElementTree:
    def test_scan_in_z_order(self, grid64, rng):
        boxes = {f"o{i}": random_box(rng, grid64) for i in range(10)}
        tree, tagged = load_tree(grid64, boxes)
        assert len(tree) == len(tagged)
        scanned = list(tree.scan())
        zlos = [e.zlo for e, _ in scanned]
        assert zlos == sorted(zlos)
        assert sorted((e.zlo, e.zhi, p) for e, p in scanned) == sorted(
            (e.zlo, e.zhi, p) for e, p in tagged
        )

    def test_elements_roundtrip_exactly(self, grid64):
        box = Box(((3, 17), (5, 40)))
        tree, tagged = load_tree(grid64, {"a": box})
        scanned = {(str(e.zvalue), p) for e, p in tree.scan()}
        assert scanned == {(str(e.zvalue), p) for e, p in tagged}

    def test_page_accounting(self, grid64, rng):
        boxes = {f"o{i}": random_box(rng, grid64) for i in range(10)}
        tree, _ = load_tree(grid64, boxes, capacity=4)
        tree.tree.reset_access_log()
        list(tree.scan())
        assert len(set(tree.tree.leaf_accesses)) == tree.npages


class TestTreeSpatialJoin:
    def test_matches_memory_join(self, grid64, rng):
        boxes_r = {f"r{i}": random_box(rng, grid64) for i in range(8)}
        boxes_s = {f"s{i}": random_box(rng, grid64) for i in range(8)}
        r_tree, r_tagged = load_tree(grid64, boxes_r)
        s_tree, s_tagged = load_tree(grid64, boxes_s)
        tree_pairs = {
            (a, b) for a, b, _, _ in tree_spatial_join(r_tree, s_tree)
        }
        assert tree_pairs == overlapping_pairs(r_tagged, s_tagged)

    def test_matches_box_intersection(self, grid64, rng):
        boxes_r = {f"r{i}": random_box(rng, grid64) for i in range(10)}
        boxes_s = {f"s{i}": random_box(rng, grid64) for i in range(10)}
        r_tree, _ = load_tree(grid64, boxes_r)
        s_tree, _ = load_tree(grid64, boxes_s)
        pairs = {(a, b) for a, b, _, _ in tree_spatial_join(r_tree, s_tree)}
        truth = {
            (nr, ns)
            for nr, br in boxes_r.items()
            for ns, bs in boxes_s.items()
            if br.intersects(bs)
        }
        assert pairs == truth

    def test_each_page_read_once(self, grid64, rng):
        """The access pattern behind the Section 4 LRU claim: one
        sequential pass per input."""
        boxes_r = {f"r{i}": random_box(rng, grid64) for i in range(6)}
        boxes_s = {f"s{i}": random_box(rng, grid64) for i in range(6)}
        r_tree, _ = load_tree(grid64, boxes_r, capacity=4)
        s_tree, _ = load_tree(grid64, boxes_s, capacity=4)
        stats = JoinStats()
        list(tree_spatial_join(r_tree, s_tree, stats))
        assert stats.r_pages == r_tree.npages
        assert stats.s_pages == s_tree.npages
        # Access logs contain no page twice in non-consecutive runs.
        for tree in (r_tree, s_tree):
            log = tree.tree.leaf_accesses
            runs = 1 + sum(1 for a, b in zip(log, log[1:]) if a != b)
            assert runs == len(set(log))

    def test_empty_sides(self, grid64, rng):
        full, _ = load_tree(grid64, {"a": random_box(rng, grid64)})
        empty = ElementTree(grid64)
        assert list(tree_spatial_join(full, empty)) == []
        assert list(tree_spatial_join(empty, full)) == []
        assert list(tree_spatial_join(empty, ElementTree(grid64))) == []

    def test_stats_output_pairs(self, grid64):
        box = Box(((0, 31), (0, 31)))
        r_tree, _ = load_tree(grid64, {"a": box})
        s_tree, _ = load_tree(grid64, {"b": box})
        stats = JoinStats()
        pairs = list(tree_spatial_join(r_tree, s_tree, stats))
        assert stats.output_pairs == len(pairs)
        assert stats.total_pages == stats.r_pages + stats.s_pages

    def test_tiny_buffer_suffices(self, grid64, rng):
        """The merge never revisits pages, so a 2-frame buffer gives
        the same answers."""
        boxes_r = {f"r{i}": random_box(rng, grid64) for i in range(5)}
        boxes_s = {f"s{i}": random_box(rng, grid64) for i in range(5)}
        big_r, tagged_r = load_tree(grid64, boxes_r)
        big_s, tagged_s = load_tree(grid64, boxes_s)
        small_r = ElementTree(grid64, page_capacity=8, buffer_frames=2)
        small_s = ElementTree(grid64, page_capacity=8, buffer_frames=2)
        for element, name in tagged_r:
            small_r.insert(element, name)
        for element, name in tagged_s:
            small_s.insert(element, name)
        big = {(a, b) for a, b, _, _ in tree_spatial_join(big_r, big_s)}
        small = {(a, b) for a, b, _, _ in tree_spatial_join(small_r, small_s)}
        assert big == small
