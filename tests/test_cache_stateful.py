"""Stateful property-based testing of cache invalidation under epochs.

Hypothesis interleaves session pin / insert-commit / delete-commit /
query / evict / vacuum against one cached, snapshot-enabled database.
The model records, after every commit, the exact committed row set at
that epoch.  Invariants:

* *Snapshot reads through the cache*: a session pinned at epoch ``E``
  — hot cache, cold cache, or mid-invalidation — always reads exactly
  the model's rows at ``E``.  A cache entry newer than the pin, or a
  stale entry surviving an overlapping commit, would surface here as a
  wrong row set.
* *No stale live entry*: every entry still valid at the current epoch
  overlaps no dirty code logged after its build epoch (the dirty-log
  protocol marked every overlapping entry dead at commit time).
* *Budget accounting*: the cache's point total equals the sum over its
  entries, and never exceeds the configured budget.
"""

from __future__ import annotations

import itertools

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    consumes,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID

GRID = Grid(ndims=2, depth=5)
SIDE = GRID.side
SCHEMA = Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))

COORD = st.integers(min_value=0, max_value=SIDE - 1)
BOXES = st.builds(
    lambda a, b, c, d: Box(
        (tuple(sorted((a, b))), tuple(sorted((c, d))))
    ),
    COORD,
    COORD,
    COORD,
    COORD,
)
BUDGET = 200


def _in_box(row, box) -> bool:
    (x0, x1), (y0, y1) = box.ranges
    return x0 <= row[1] <= x1 and y0 <= row[2] <= y1


class CacheInvalidationMachine(RuleBasedStateMachine):
    sessions = Bundle("sessions")

    @initialize(points=st.lists(st.tuples(COORD, COORD), max_size=8))
    def setup(self, points):
        self.db = SpatialDatabase(
            GRID,
            page_capacity=8,
            concurrency=True,
            cache={"budget_points": BUDGET, "max_entries": 6},
        )
        self.db.create_table("a", SCHEMA)
        self.ids = itertools.count()
        self.live: set = set()
        for x, y in points:
            row = (f"r{next(self.ids)}", x, y)
            self.db.insert("a", row)
            self.live.add(row)
        self.entry = self.db.create_index("a_xy", "a", ("x", "y"))
        self.cache = self.entry.cache
        # epoch -> frozen committed row set at that epoch (ascending).
        self.states = [
            (self.db.snapshots.current_epoch, frozenset(self.live))
        ]
        self.open_sessions: dict = {}

    def _record_commit(self):
        self.states.append(
            (self.db.snapshots.current_epoch, frozenset(self.live))
        )

    def _rows_at(self, epoch):
        rows = self.states[0][1]
        for committed, frozen in self.states:
            if committed > epoch:
                break
            rows = frozen
        return rows

    # -- operations ------------------------------------------------------

    @rule(x=COORD, y=COORD)
    def commit_insert(self, x, y):
        row = (f"r{next(self.ids)}", x, y)
        self.db.insert("a", row)
        self.live.add(row)
        self._record_commit()

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def commit_delete(self, data):
        row = data.draw(st.sampled_from(sorted(self.live)))
        assert self.db.delete("a", row)
        self.live.discard(row)
        self._record_commit()

    @rule(box=BOXES)
    def query_live(self, box):
        got = set(self.db.range_query("a", ("x", "y"), box).rows)
        want = {row for row in self.live if _in_box(row, box)}
        assert got == want, f"live query diverged for {box}"

    @precondition(lambda self: len(self.open_sessions) < 3)
    @rule(target=sessions)
    def open_session(self):
        session = self.db.session()
        self.open_sessions[id(session)] = session
        return session

    @rule(session=sessions, box=BOXES)
    def session_query(self, session, box):
        got = set(session.range_query("a", ("x", "y"), box).rows)
        want = {
            row
            for row in self._rows_at(session.epoch)
            if _in_box(row, box)
        }
        assert got == want, (
            f"pinned read at epoch {session.epoch} diverged for {box}"
        )

    @rule(session=consumes(sessions))
    def close_session(self, session):
        self.open_sessions.pop(id(session), None)
        session.close()

    @precondition(lambda self: len(self.cache) > 0)
    @rule()
    def evict_one(self):
        self.cache.evict(1)

    @rule()
    def vacuum(self):
        self.cache.vacuum()

    # -- invariants ------------------------------------------------------

    @invariant()
    def no_stale_live_entry(self):
        now = self.cache.current_epoch
        for entry in self.cache.entries():
            if not entry.valid_at(now):
                continue
            for epoch, codes in self.cache._dirty_log.items():
                if epoch <= entry.build_epoch:
                    continue
                stale = [z for z in codes if entry.contains_code(z)]
                assert not stale, (
                    f"entry built at {entry.build_epoch} still live at "
                    f"{now} despite overlapping commit at {epoch}"
                )

    @invariant()
    def budget_accounting(self):
        entries = self.cache.entries()
        assert self.cache.points_cached == sum(e.npoints for e in entries)
        assert self.cache.points_cached <= BUDGET
        assert len(entries) <= 6

    def teardown(self):
        for session in list(self.open_sessions.values()):
            session.close()
        self.open_sessions.clear()
        leaks = self.db.snapshots.leak_stats()
        assert leaks["snapshot.active_pins"] == 0, leaks


TestCacheInvalidationMachine = CacheInvalidationMachine.TestCase
TestCacheInvalidationMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
