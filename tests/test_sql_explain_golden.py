"""Golden-file tests for EXPLAIN output.

The database is seeded with hand-written rows (no randomness), so the
histograms, selectivities and cost numbers in the rendered plan are
fully deterministic.  To regenerate after an intentional planner
change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_sql_explain_golden.py
"""

import os
import pathlib
import random

import pytest

from repro.core.geometry import Box, Grid
from repro.db import (
    INTEGER,
    OID,
    SPATIAL_OBJECT,
    Schema,
    SpatialDatabase,
)
from repro.db.types import SpatialObject
from repro.sql import compile_sql

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

POINTS = [
    ("p0", 2, 3),
    ("p1", 5, 1),
    ("p2", 9, 14),
    ("p3", 11, 11),
    ("p4", 13, 2),
    ("p5", 17, 20),
    ("p6", 21, 25),
    ("p7", 25, 8),
    ("p8", 28, 28),
    ("p9", 30, 5),
    ("p10", 6, 22),
    ("p11", 19, 7),
]

BOXES = {
    "regions": [((0, 6), (0, 6)), ((8, 14), (8, 14)), ((20, 30), (2, 9))],
    "zones": [((4, 10), (4, 10)), ((22, 28), (0, 6)), ((12, 18), (12, 18))],
}


@pytest.fixture
def db():
    database = SpatialDatabase(Grid(2, 5), page_capacity=4)
    database.create_table(
        "points",
        Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER)),
    )
    database.insert_many("points", POINTS)
    database.create_index("points_xy", "points", ("x", "y"))
    for table, boxes in BOXES.items():
        database.create_table(
            table, Schema.of(("id@", OID), ("geom", SPATIAL_OBJECT))
        )
        database.insert_many(
            table,
            [
                (
                    f"{table[0]}{i}",
                    SpatialObject.from_box(f"{table[0]}{i}", Box(ranges)),
                )
                for i, ranges in enumerate(boxes)
            ],
        )
    return database


@pytest.fixture
def sky():
    """Two seeded point catalogs large enough that the epsilon-join
    cost model switches strategy with ``eps``, plus a tiny third where
    the nested loop wins outright.  ``random.Random`` is deterministic
    across platforms, so the plans (and their cost numbers) are stable
    golden material."""
    database = SpatialDatabase(Grid(2, 5), page_capacity=8)
    rng = random.Random(5)
    side = database.grid.side
    for table, count in (("stars", 400), ("gals", 400), ("dwarfs", 3)):
        database.create_table(
            table, Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        database.insert_many(
            table,
            [
                (
                    f"{table[0]}{i}",
                    rng.randrange(side),
                    rng.randrange(side),
                )
                for i in range(count)
            ],
        )
        database.create_index(f"{table}_xy", table, ("x", "y"))
    return database


def check(name, text):
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text + "\n")
    assert text + "\n" == path.read_text(), (
        f"EXPLAIN drifted from {path.name}; run with REGEN_GOLDEN=1 "
        "if the change is intentional"
    )


class TestExplainGolden:
    def test_multi_conjunct_reordering(self, db):
        compiled = compile_sql(
            db,
            "SELECT id@, x FROM points "
            "WHERE BOX(0, 16, 0, 16) CONTAINS POINT(x, y) "
            "AND x + y > 10 AND x BETWEEN 4 AND 12 "
            "ORDER BY id@ LIMIT 5",
        )
        check("sql_explain_multi.txt", compiled.explain())

    def test_naive_order_differs(self, db):
        compiled = compile_sql(
            db,
            "SELECT id@, x FROM points "
            "WHERE BOX(0, 16, 0, 16) CONTAINS POINT(x, y) "
            "AND x + y > 10 AND x BETWEEN 4 AND 12 "
            "ORDER BY id@ LIMIT 5",
            reorder=False,
        )
        check("sql_explain_naive.txt", compiled.explain())

    def test_join_strategy_and_pushdown(self, db):
        compiled = compile_sql(
            db,
            "SELECT regions.id@, zones.id@ FROM regions "
            "JOIN zones ON OVERLAPS(regions.geom, zones.geom) "
            "WHERE regions.id@ != 'r0' "
            "ORDER BY regions.id@, zones.id@",
        )
        check("sql_explain_join.txt", compiled.explain())

    def test_equality_via_histogram(self, db):
        compiled = compile_sql(
            db, "SELECT id@ FROM points WHERE x = 13 AND x + y < 99"
        )
        check("sql_explain_eq.txt", compiled.explain())


class TestProximityExplainGolden:
    def test_nearest_knn_probe(self, db):
        """No WHERE + a matching index: the plan probes the shifted
        orderings directly instead of scanning."""
        compiled = compile_sql(
            db,
            "SELECT id@, x, y FROM points "
            "NEAREST 3 TO POINT(12, 9) BY POINT(x, y)",
        )
        check("sql_explain_nearest_probe.txt", compiled.explain())

    def test_nearest_ranked_after_filters(self, db):
        """A WHERE clause forces the rank-after-filters shape."""
        compiled = compile_sql(
            db,
            "SELECT id@, x, y FROM points WHERE x > 4 "
            "NEAREST 3 TO POINT(12, 9) BY POINT(x, y)",
        )
        check("sql_explain_nearest_filtered.txt", compiled.explain())

    def test_within_eps_window_access(self, db):
        """WITHIN compiles to an eps-window access box plus an exact
        eps-refine filter discounted by the ball/box ratio."""
        compiled = compile_sql(
            db,
            "SELECT id@, x, y FROM points "
            "WHERE POINT(x, y) WITHIN 6 OF POINT(12, 9) AND x + y > 4",
        )
        check("sql_explain_within.txt", compiled.explain())

    def test_epsjoin_picks_zones_at_small_eps(self, sky):
        compiled = compile_sql(
            sky,
            "SELECT * FROM stars JOIN gals "
            "ON POINT(stars.x, stars.y) WITHIN 6 OF POINT(gals.x, gals.y)",
        )
        check("sql_explain_epsjoin_zones.txt", compiled.explain())

    def test_epsjoin_picks_zmerge_at_wide_eps(self, sky):
        compiled = compile_sql(
            sky,
            "SELECT * FROM stars JOIN gals "
            "ON POINT(stars.x, stars.y) WITHIN 12 OF POINT(gals.x, gals.y)",
        )
        check("sql_explain_epsjoin_zmerge.txt", compiled.explain())

    def test_epsjoin_picks_nested_loop_for_tiny_tables(self, sky):
        compiled = compile_sql(
            sky,
            "SELECT * FROM dwarfs JOIN gals "
            "ON POINT(dwarfs.x, dwarfs.y) WITHIN 6 OF POINT(gals.x, gals.y)",
        )
        check("sql_explain_epsjoin_nested.txt", compiled.explain())
