"""Differential coherence suite for the semantic result cache.

Two databases are built identically — one with ``cache=True``, one
without — and driven through the same seeded workload of insert/delete
batches and range queries.  Queries repeat earlier boxes (the hit path),
nest inside them (the prefix full-hit path), and probe fresh regions
(miss/partial); after every query the cached database's rows must be
byte-identical to the uncached one's.  The session variant additionally
pins snapshots on both databases, commits around them, and checks that
pinned reads through the cache stay frozen exactly like uncached pinned
reads (and that ``join_points`` agrees).

The non-session variant runs with ``concurrency=False`` on purpose: it
exercises the cache's *internal* logical clock, while the session
variant drives epochs through the SnapshotManager.

Seeds are shrunk on failure — rounds and batch sizes halve while the
mismatch reproduces — and the smallest counterexample is reported.  A
smoke subset runs in tier 1; the full seed sweep (seed-derived shard
counts 1–4, sessions on/off) is ``slow`` and runs nightly.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Tuple

import pytest

from repro.core.geometry import Box, Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID

GRID = Grid(ndims=2, depth=6)
SIDE = GRID.side
SCHEMA = Schema.of(("id@", OID), ("x", INTEGER), ("y", INTEGER))

#: (seed, shards, sessions) triples for tier 1 — one per corner of the
#: config space, kept small enough to run in a few seconds.
SMOKE_CONFIGS = [(0, 1, False), (1, 2, True), (2, 3, False), (3, 4, True)]
FULL_SEEDS = list(range(20))


def _random_box(rng: random.Random) -> Box:
    x0, x1 = sorted(rng.randrange(SIDE) for _ in range(2))
    y0, y1 = sorted(rng.randrange(SIDE) for _ in range(2))
    return Box(((x0, x1), (y0, y1)))


def _sub_box(rng: random.Random, box: Box) -> Box:
    """A random box nested inside ``box`` — its decomposition elements
    extend the parent's z-prefixes, so a cached parent covers it."""
    ranges = []
    for lo, hi in box.ranges:
        a, b = sorted(rng.randint(lo, hi) for _ in range(2))
        ranges.append((a, b))
    return Box(tuple(ranges))


def _build_pair(
    seed: int, shards: int, sessions: bool, nseed_rows: int
) -> Tuple[SpatialDatabase, SpatialDatabase, Dict[str, List]]:
    """Identical twin databases (cached / uncached) plus the row model."""
    rng = random.Random(10_000 + seed)
    cached = SpatialDatabase(
        GRID, page_capacity=8, concurrency=sessions, cache=True
    )
    plain = SpatialDatabase(GRID, page_capacity=8, concurrency=sessions)
    live: Dict[str, List] = {"a": [], "b": []}
    for db in (cached, plain):
        db.create_table("a", SCHEMA)
        db.create_table("b", SCHEMA)
    for i in range(nseed_rows):
        table = "a" if i % 2 == 0 else "b"
        row = (f"seed{i}", rng.randrange(SIDE), rng.randrange(SIDE))
        cached.insert(table, row)
        plain.insert(table, row)
        live[table].append(row)
    for db in (cached, plain):
        db.create_index("a_xy", "a", ("x", "y"), shards=shards)
        db.create_index("b_xy", "b", ("x", "y"), shards=shards)
    return cached, plain, live


def _cache_stats(db: SpatialDatabase) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for entry in db.catalog.indexes():
        if entry.cache is None:
            continue
        for name, value in entry.cache.stats.items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _run_workload(
    seed: int,
    shards: int,
    sessions: bool,
    rounds: int = 4,
    ops_per_round: int = 6,
    queries_per_round: int = 8,
) -> Tuple[List[str], Dict[str, int]]:
    """Drive the twin databases; return (mismatches, cache stats)."""
    rng = random.Random(seed)
    cached, plain, live = _build_pair(
        seed, shards, sessions, nseed_rows=8 + 4 * ops_per_round // 3
    )
    ids = itertools.count()
    boxes: List[Box] = []
    mismatches: List[str] = []

    def compare(label: str, got: str, want: str) -> None:
        if got != want:
            mismatches.append(f"{label}: cached={got!r} uncached={want!r}")

    def query_both(table: str, box: Box, tag: str) -> None:
        got = repr(cached.range_query(table, ("x", "y"), box).rows)
        want = repr(plain.range_query(table, ("x", "y"), box).rows)
        compare(f"{tag} {table} {box}", got, want)

    for rnd in range(rounds):
        # --- identical mutations against both databases ---------------
        for _ in range(ops_per_round):
            table = "a" if rng.random() < 0.5 else "b"
            if live[table] and rng.random() < 0.35:
                row = live[table].pop(rng.randrange(len(live[table])))
                ok_c = cached.delete(table, row)
                ok_p = plain.delete(table, row)
                compare(f"delete {table} {row}", repr(ok_c), repr(ok_p))
            else:
                row = (
                    f"r{next(ids)}",
                    rng.randrange(SIDE),
                    rng.randrange(SIDE),
                )
                cached.insert(table, row)
                plain.insert(table, row)
                live[table].append(row)

        # --- queries: repeats (hits), nests (prefix hits), fresh ------
        for _ in range(queries_per_round):
            table = "a" if rng.random() < 0.5 else "b"
            roll = rng.random()
            if boxes and roll < 0.4:
                box = boxes[rng.randrange(len(boxes))]
            elif boxes and roll < 0.6:
                box = _sub_box(rng, boxes[rng.randrange(len(boxes))])
            else:
                box = _random_box(rng)
                boxes.append(box)
            query_both(table, box, f"round{rnd}")

        # --- session variant: pinned reads through the cache ----------
        if sessions:
            probe = boxes[-3:] if boxes else [_random_box(rng)]
            sc, sp = cached.session(), plain.session()
            try:
                for box in probe:
                    compare(
                        f"round{rnd} pinned {box}",
                        repr(sc.range_query("a", ("x", "y"), box).rows),
                        repr(sp.range_query("a", ("x", "y"), box).rows),
                    )
                compare(
                    f"round{rnd} join",
                    repr(sc.join_points("a", ("x", "y"), "b", ("x", "y"))),
                    repr(sp.join_points("a", ("x", "y"), "b", ("x", "y"))),
                )
                # Commit after pinning: pinned reads — cached or not —
                # must stay frozen at the snapshot.
                row = (f"s{rnd}", rng.randrange(SIDE), rng.randrange(SIDE))
                cached.insert("a", row)
                plain.insert("a", row)
                live["a"].append(row)
                for box in probe:
                    compare(
                        f"round{rnd} pinned-after-commit {box}",
                        repr(sc.range_query("a", ("x", "y"), box).rows),
                        repr(sp.range_query("a", ("x", "y"), box).rows),
                    )
            finally:
                sc.close()
                sp.close()

    if sessions:
        leaks = cached.snapshots.leak_stats()
        if leaks.get("snapshot.active_pins"):
            mismatches.append(f"leaked pins: {leaks}")
    return mismatches, _cache_stats(cached)


def _check(seed: int, shards: int, sessions: bool) -> None:
    """Run at full scale; on failure shrink (halve every knob) while the
    mismatch reproduces and fail with the smallest counterexample."""
    scale = {"rounds": 4, "ops_per_round": 6, "queries_per_round": 8}
    mismatches, stats = _run_workload(seed, shards, sessions, **scale)
    if not mismatches:
        # Non-vacuity: the repeat/nest mix must actually hit the cache.
        assert stats.get("cache.hit", 0) > 0, stats
        assert stats.get("cache.miss", 0) > 0, stats
        return
    smallest = (dict(scale), mismatches)
    while True:
        shrunk = {k: max(1, v // 2) for k, v in scale.items()}
        if shrunk == scale:
            break
        again, _ = _run_workload(seed, shards, sessions, **shrunk)
        if again:
            scale = shrunk
            smallest = (dict(shrunk), again)
        else:
            break
    scale_str, found = smallest
    pytest.fail(
        f"cache diverged from uncached (seed={seed} shards={shards} "
        f"sessions={sessions}, smallest scale {scale_str}):\n  "
        + "\n  ".join(found[:10])
    )


@pytest.mark.parametrize("seed,shards,sessions", SMOKE_CONFIGS)
def test_cache_differential_smoke(seed, shards, sessions):
    _check(seed, shards, sessions)


@pytest.mark.slow
@pytest.mark.parametrize("seed", FULL_SEEDS)
def test_cache_differential_sweep(seed):
    # Derive the config from the seed so 20 runs cover shards 1-4 and
    # both session modes without a 160-run matrix.
    _check(seed, shards=seed % 4 + 1, sessions=bool(seed % 2))


def test_cache_counters_deterministic():
    """The same seeded workload produces identical cache counters on
    every run — outcomes depend only on data and query order."""
    _, first = _run_workload(7, shards=2, sessions=False)
    _, second = _run_workload(7, shards=2, sessions=False)
    assert first == second
    assert first.get("cache.hit", 0) > 0


def test_invalidation_is_exercised():
    """Interleaving writes with repeats must invalidate cached regions
    (otherwise the differential pass would be vacuous for coherence)."""
    _, stats = _run_workload(11, shards=1, sessions=False, rounds=6)
    assert stats.get("cache.invalidate", 0) > 0, stats
