"""Fault-tolerant scatter–gather: retries, timeouts, dead workers,
graceful degradation, and the typed partial-result failure.

Worker faults are injected at the ``shard.worker`` failpoint.  The
contract under test: a query that hits worker failures must either
return results byte-identical to the fault-free run (after retries
and/or serial degradation) or raise :class:`PartialResultError` — never
hang, never return a silently short answer.
"""

import pytest

from repro.core.geometry import Box, Grid
from repro.faults import FaultError, FaultInjector
from repro.obs.trace import trace
from repro.shard import (
    PartialResultError,
    ResiliencePolicy,
    ScatterStats,
    ShardedSpatialStore,
)
from repro.shard.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)

GRID = Grid(ndims=2, depth=5)
BOX = Box(((2, 29), (3, 27)))
POINTS = [((5 * i) % 32, (7 * i + 2) % 32) for i in range(60)]

FAST = ResiliencePolicy(max_retries=2, backoff_base=0.001)


@pytest.fixture
def serial_matches():
    store = ShardedSpatialStore.build(GRID, POINTS, nshards=4)
    try:
        return store.range_query(BOX).matches
    finally:
        store.close()


def _build(executor, resilience=FAST):
    return ShardedSpatialStore.build(
        GRID, POINTS, nshards=4, executor=executor, resilience=resilience
    )


class TestSerialRetries:
    def test_transient_error_is_retried(self, serial_matches):
        store = _build(SerialExecutor())
        failures = {"n": 0}
        original = store.shards[1].range_query

        def flaky(*args, **kwargs):
            if failures["n"] < 2:
                failures["n"] += 1
                raise IOError("transient")
            return original(*args, **kwargs)

        store.shards[1].range_query = flaky
        try:
            result = store.range_query(BOX)
            assert result.matches == serial_matches
        finally:
            store.close()

    def test_persistent_error_raises_partial_result(self):
        store = _build(SerialExecutor())

        def broken(*args, **kwargs):
            raise IOError("dead shard")

        store.shards[1].range_query = broken
        try:
            with pytest.raises(PartialResultError) as exc_info:
                store.range_query(BOX)
            assert set(exc_info.value.failures) == {1}
            assert exc_info.value.results  # other shards answered
        finally:
            store.close()


class TestThreadFaults:
    def test_injected_error_retried_byte_identical(self, serial_matches):
        inj = FaultInjector(seed=1)
        inj.rule("shard.worker", "error", where={"shard": 1})
        store = _build(ThreadExecutor(2, faults=inj))
        try:
            result = store.range_query(BOX)
            assert result.matches == serial_matches
            assert any(e.site == "shard.worker" for e in inj.fired)
        finally:
            store.close()

    def test_persistent_error_degrades_to_serial(self, serial_matches):
        inj = FaultInjector(seed=2)
        inj.rule("shard.worker", "error", times=-1, where={"shard": 2})
        store = _build(ThreadExecutor(2, faults=inj))
        try:
            results, stats = store.executor.map_shards_resilient(
                store,
                [(i, "range_query", (BOX,), {}) for i in range(4)],
                FAST,
            )
            assert stats.retries >= FAST.max_retries
            assert stats.degraded == 1
            assert not stats.failures
            # Degraded results are computed inline on the same shards:
            # the gathered answer is byte-identical.
            result = store.range_query(BOX)
            assert result.matches == serial_matches
        finally:
            store.close()

    def test_no_degradation_raises_partial_result(self):
        inj = FaultInjector(seed=3)
        inj.rule("shard.worker", "error", times=-1, where={"shard": 0})
        policy = ResiliencePolicy(
            max_retries=1, backoff_base=0.001, degrade_serial=False
        )
        store = _build(ThreadExecutor(2, faults=inj), resilience=policy)
        try:
            with pytest.raises(PartialResultError) as exc_info:
                store.range_query(BOX)
            assert set(exc_info.value.failures) == {0}
        finally:
            store.close()

    def test_timeout_triggers_retry(self, serial_matches):
        inj = FaultInjector(seed=4)
        inj.rule(
            "shard.worker", "latency", delay=1.0, where={"shard": 1}
        )
        policy = ResiliencePolicy(
            max_retries=2, backoff_base=0.001, timeout=0.1
        )
        store = _build(ThreadExecutor(2, faults=inj), resilience=policy)
        try:
            results, stats = store.executor.map_shards_resilient(
                store,
                [(i, "range_query", (BOX,), {}) for i in range(4)],
                policy,
            )
            assert stats.retries >= 1  # the hung attempt was abandoned
            assert not stats.failures
        finally:
            store.close()

    def test_clean_run_has_clean_stats(self, serial_matches):
        store = _build(ThreadExecutor(2))
        try:
            results, stats = store.executor.map_shards_resilient(
                store,
                [(i, "range_query", (BOX,), {}) for i in range(4)],
                FAST,
            )
            assert stats.clean
        finally:
            store.close()


@pytest.mark.chaos
class TestProcessWorkerDeath:
    def test_worker_crash_degrades_byte_identical(self, serial_matches):
        # The crash rule makes the worker genuinely _exit: the pool
        # breaks, rebuilds re-fork from the coordinator (whose rule
        # never advanced), so every retry dies too — the call must
        # degrade to serial re-execution and still match byte-for-byte.
        inj = FaultInjector(seed=5)
        inj.rule("shard.worker", "crash", times=-1, where={"shard": 1})
        store = _build(ProcessExecutor(2, faults=inj))
        try:
            with trace("q") as t:
                result = store.range_query(BOX)
            assert result.matches == serial_matches
            counters = t.total_counters()
            assert counters.get("shard.retries", 0) >= 1
            assert counters.get("shard.degraded", 0) >= 1
        finally:
            store.close()

    def test_healthy_pool_reused_after_recovery(self, serial_matches):
        inj = FaultInjector(seed=6)
        inj.rule("shard.worker", "crash", where={"shard": 0})
        store = _build(ProcessExecutor(2, faults=inj))
        try:
            first = store.range_query(BOX)
            assert first.matches == serial_matches
            # Second query: the rule is spent in the coordinator's
            # injector... but workers get pickled copies, so arm state
            # travels per rebuild; a clean query must still succeed.
            second = store.range_query(BOX)
            assert second.matches == serial_matches
        finally:
            store.close()


class TestTraceCounters:
    def test_retry_counter_surfaces_in_trace(self, serial_matches):
        inj = FaultInjector(seed=7)
        inj.rule("shard.worker", "error", where={"shard": 1})
        store = _build(ThreadExecutor(2, faults=inj))
        try:
            with trace("q") as t:
                result = store.range_query(BOX)
            assert result.matches == serial_matches
            span = t.find("shard.scatter_gather")
            assert span is not None
            assert span.counters.get("shard.retries") == 1
            assert "shard.degraded" not in span.counters
        finally:
            store.close()

    def test_clean_query_publishes_no_resilience_counters(self):
        # The committed trace-counter baseline must not change: the
        # counters exist only when faults actually fired.
        store = _build(ThreadExecutor(2))
        try:
            with trace("q") as t:
                store.range_query(BOX)
            counters = t.total_counters()
            assert "shard.retries" not in counters
            assert "shard.degraded" not in counters
        finally:
            store.close()


class TestPartialResultShape:
    def test_carries_failures_results_and_stats(self):
        stats = ScatterStats(retries=3, degraded=0)
        stats.failures[2] = IOError("boom")
        err = PartialResultError(
            dict(stats.failures), {0: "a", 1: "b"}, stats
        )
        assert "shard 2" in str(err)
        assert err.results == {0: "a", 1: "b"}
        assert err.stats.retries == 3
