"""Tests for CAD interference detection (Section 6)."""


from repro.core.geometry import Box, Grid, box_classifier, circle_classifier
from repro.core.interference import (
    InterferenceReport,
    Solid,
    detect_interference,
)


def box_solid(name, grid, box, max_depth=None):
    return Solid.from_object(name, grid, box_classifier(box), max_depth)


class TestSolid:
    def test_box_solid_has_no_boundary_at_full_depth(self, grid64):
        solid = box_solid("a", grid64, Box(((3, 17), (5, 21))))
        assert solid.boundary == ()
        lo, hi = solid.volume_bounds()
        assert lo == hi == 15 * 17

    def test_circle_solid_volume_bounds(self):
        grid = Grid(2, 5)
        solid = Solid.from_object(
            "ball", grid, circle_classifier((16, 16), 8.0), max_depth=6
        )
        lo, hi = solid.volume_bounds()
        true_volume = sum(
            1
            for x in range(32)
            for y in range(32)
            if (x - 16) ** 2 + (y - 16) ** 2 <= 64
        )
        assert lo <= true_volume <= hi
        assert solid.boundary  # coarse depth leaves boundary elements

    def test_interior_plus_boundary_disjoint(self, grid64):
        grid = Grid(2, 5)
        solid = Solid.from_object(
            "ball", grid, circle_classifier((16, 16), 8.0), max_depth=6
        )
        intervals = sorted(
            (e.zlo, e.zhi) for e in solid.interior + solid.boundary
        )
        for (alo, ahi), (blo, bhi) in zip(intervals, intervals[1:]):
            assert ahi < blo


class TestDetectInterference:
    def test_overlapping_solids_definite(self, grid64):
        a = box_solid("a", grid64, Box(((0, 20), (0, 20))))
        b = box_solid("b", grid64, Box(((10, 30), (10, 30))))
        report = detect_interference([a, b])
        assert report.status("a", "b") == "definite"

    def test_disjoint_solids_clear(self, grid64):
        a = box_solid("a", grid64, Box(((0, 10), (0, 10))))
        b = box_solid("b", grid64, Box(((40, 50), (40, 50))))
        report = detect_interference([a, b])
        assert report.status("a", "b") == "clear"

    def test_coarse_touch_is_potential(self):
        """At coarse resolution two nearby-but-disjoint balls collide
        only through boundary elements: potential, needing refinement."""
        grid = Grid(2, 6)
        a = Solid.from_object(
            "a", grid, circle_classifier((20, 20), 6.0), max_depth=6
        )
        b = Solid.from_object(
            "b", grid, circle_classifier((34, 20), 6.0), max_depth=6
        )
        report = detect_interference([a, b])
        assert report.status("a", "b") in ("potential", "clear")
        if report.status("a", "b") == "potential":
            assert ("a", "b") in report.pairs_needing_refinement()

    def test_true_overlap_at_full_depth_definite(self):
        grid = Grid(2, 6)
        a = Solid.from_object("a", grid, circle_classifier((20, 20), 8.0))
        b = Solid.from_object("b", grid, circle_classifier((30, 20), 8.0))
        report = detect_interference([a, b])
        assert report.status("a", "b") == "definite"

    def test_three_solids_pairwise(self, grid64):
        a = box_solid("a", grid64, Box(((0, 20), (0, 20))))
        b = box_solid("b", grid64, Box(((10, 30), (10, 30))))
        c = box_solid("c", grid64, Box(((50, 63), (50, 63))))
        report = detect_interference([a, b, c])
        assert report.status("a", "b") == "definite"
        assert report.status("a", "c") == "clear"
        assert report.status("b", "c") == "clear"

    def test_definite_wins_over_potential(self):
        """A pair seen through both interior-interior and boundary
        containments is reported once, as definite."""
        grid = Grid(2, 5)
        a = Solid.from_object(
            "a", grid, circle_classifier((12, 12), 7.0), max_depth=8
        )
        b = Solid.from_object(
            "b", grid, circle_classifier((16, 12), 7.0), max_depth=8
        )
        report = detect_interference([a, b])
        assert report.status("a", "b") == "definite"
        assert frozenset(("a", "b")) not in report.potential

    def test_no_self_interference(self, grid64):
        a = box_solid("a", grid64, Box(((0, 20), (0, 20))))
        report = detect_interference([a])
        assert report.definite == set()
        assert report.potential == set()

    def test_empty_assembly(self):
        report = detect_interference([])
        assert report.definite == set() and report.potential == set()

    def test_nested_solids_definite(self, grid64):
        outer = box_solid("outer", grid64, Box(((0, 31), (0, 31))))
        inner = box_solid("inner", grid64, Box(((8, 15), (8, 15))))
        report = detect_interference([outer, inner])
        assert report.status("outer", "inner") == "definite"


class TestReport:
    def test_status_is_symmetric(self, grid64):
        a = box_solid("a", grid64, Box(((0, 20), (0, 20))))
        b = box_solid("b", grid64, Box(((10, 30), (10, 30))))
        report = detect_interference([a, b])
        assert report.status("a", "b") == report.status("b", "a")

    def test_pairs_needing_refinement_sorted(self):
        report = InterferenceReport(
            potential={frozenset(("z", "a")), frozenset(("m", "b"))}
        )
        assert report.pairs_needing_refinement() == [("a", "z"), ("b", "m")]
