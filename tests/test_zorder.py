"""Tests for z-order curve utilities and BIGMIN/LITMAX jumps."""

from hypothesis import given, settings, strategies as st

from repro.core.geometry import Box, Grid
from repro.core.interleave import interleave
from repro.core.zorder import (
    bigmin,
    box_zbounds,
    curve_points,
    curve_ranks,
    litmax,
    zcode_in_box,
)


def hyp_box_2d(data, side):
    ranges = []
    for _ in range(2):
        a = data.draw(st.integers(0, side - 1))
        b = data.draw(st.integers(0, side - 1))
        ranges.append((min(a, b), max(a, b)))
    return Box(tuple(ranges))


class TestCurve:
    def test_curve_visits_every_pixel_once(self, grid8):
        points = curve_points(grid8)
        assert len(points) == 64
        assert len(set(points)) == 64

    def test_first_four_points_form_n(self, grid8):
        # Figure 4's recursive N: (0,0), (0,1), (1,0), (1,1).
        assert curve_points(grid8)[:4] == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_ranks_match_interleave(self, grid8):
        for coords, rank in curve_ranks(grid8):
            assert interleave(coords, grid8.depth) == rank

    def test_consecutive_points_distance(self, grid8):
        # Along the curve, most steps are unit steps; jumps exist but
        # are bounded by the grid diameter.
        points = curve_points(grid8)
        unit_steps = sum(
            1
            for a, b in zip(points, points[1:])
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
        )
        assert unit_steps >= len(points) / 2


class TestZBounds:
    def test_bounds_bracket_all_inside_codes(self, grid8, figure_box):
        zmin, zmax = box_zbounds(figure_box, grid8.depth)
        for p in figure_box.pixels():
            assert zmin <= interleave(p, grid8.depth) <= zmax

    def test_zcode_in_box(self, grid8, figure_box):
        for code in range(64):
            from repro.core.interleave import deinterleave

            coords = deinterleave(code, 2, 3)
            assert zcode_in_box(code, figure_box, 3) == figure_box.contains_point(
                coords
            )


class TestBigMin:
    def test_exhaustive_on_figure_box(self, grid8, figure_box):
        codes_in = sorted(
            interleave(p, 3) for p in figure_box.pixels()
        )
        for z in range(64):
            expected = next((c for c in codes_in if c > z), None)
            assert bigmin(z, figure_box, 3) == expected, z

    def test_below_box_returns_zmin(self, grid8, figure_box):
        zmin, _ = box_zbounds(figure_box, 3)
        assert bigmin(0, figure_box, 3) == zmin or bigmin(
            0, figure_box, 3
        ) > 0

    def test_at_or_above_zmax_returns_none(self, grid8, figure_box):
        _, zmax = box_zbounds(figure_box, 3)
        assert bigmin(zmax, figure_box, 3) is None
        assert bigmin(63, figure_box, 3) is None

    @settings(max_examples=50)
    @given(st.data())
    def test_random_boxes_exhaustive(self, data):
        grid = Grid(2, 4)
        box = hyp_box_2d(data, grid.side)
        codes_in = sorted(interleave(p, 4) for p in box.pixels())
        z = data.draw(st.integers(0, grid.npixels - 1))
        expected = next((c for c in codes_in if c > z), None)
        assert bigmin(z, box, 4) == expected

    def test_3d(self):
        grid = Grid(3, 2)
        box = Box(((1, 2), (0, 3), (2, 3)))
        codes_in = sorted(interleave(p, 2) for p in box.pixels())
        for z in range(grid.npixels):
            expected = next((c for c in codes_in if c > z), None)
            assert bigmin(z, box, 2) == expected, z


class TestLitMax:
    def test_exhaustive_on_figure_box(self, grid8, figure_box):
        codes_in = sorted(interleave(p, 3) for p in figure_box.pixels())
        for z in range(64):
            expected = next(
                (c for c in reversed(codes_in) if c < z), None
            )
            assert litmax(z, figure_box, 3) == expected, z

    @settings(max_examples=50)
    @given(st.data())
    def test_random_boxes_exhaustive(self, data):
        grid = Grid(2, 4)
        box = hyp_box_2d(data, grid.side)
        codes_in = sorted(interleave(p, 4) for p in box.pixels())
        z = data.draw(st.integers(0, grid.npixels - 1))
        expected = next((c for c in reversed(codes_in) if c < z), None)
        assert litmax(z, box, 4) == expected

    def test_duality_with_bigmin(self, figure_box):
        # litmax < z < bigmin and there is no in-box code between them.
        codes_in = {interleave(p, 3) for p in figure_box.pixels()}
        for z in range(64):
            lo = litmax(z, figure_box, 3)
            hi = bigmin(z, figure_box, 3)
            between = {
                c
                for c in codes_in
                if (lo is None or c > lo) and (hi is None or c < hi) and c != z
            }
            assert not between
