"""The crash matrix: kill the store at *every* registered write-path
failpoint and prove it comes back.

The harness runs a deterministic tree workload (bulk load, inserts,
deletes, a batch insert — each op is one transaction), first uninjected
to measure how many times each failpoint site is traversed, then once
per (site, kind, hit index): a ``crash`` (or, at write sites, a
``torn_write``) is armed at exactly that hit, the workload dies there,
the store is abandoned ``kill -9`` style, and the path is reopened
*without* faults.  The reopened tree must:

* satisfy the B+-tree structural invariants,
* hold exactly the point set of a committed prefix of the workload —
  the crashed transaction is all-or-nothing, never half-applied,
* answer a range query byte-identically to an uninjected in-memory
  oracle over the same point set.

The fast smoke subset (first / middle / last hit per site) runs in
tier 1; the full sweep over every hit index is ``slow``+``chaos`` and
runs nightly.
"""

from typing import Dict, List, Optional, Set, Tuple

import pytest

from repro.core.geometry import Box, Grid
from repro.faults import CrashPoint, FaultInjector, registered_sites
from repro.storage.diskstore import FilePageStore
from repro.storage.prefix_btree import ZkdTree

GRID = Grid(ndims=2, depth=5)
QUERY = Box(((3, 27), (2, 29)))

_INITIAL = [((7 * i) % 32, (11 * i + 3) % 32) for i in range(20)]
_INSERTS = [(1, 30), (30, 1), (15, 15), (2, 2), (28, 5), (9, 26)]
_BATCH = [(4, 21), (22, 3), (13, 8), (26, 26), (18, 11)]
# The shrink phase deletes most of the tree: leaves underflow and
# merge, so the matrix exercises page frees (diskstore.free_write).
_SHRINK = _INSERTS[:4] + _BATCH + _INITIAL[2:14]

#: The matrix covers every site on the durable write path.  Read sites
#: are detection (ChecksumError), not recovery, and are covered in
#: test_durability.py; ``shard.worker`` belongs to the executor sweep.
WRITE_SITES = (
    "wal.append",
    "diskstore.page_write",
    "diskstore.header_write",
    "diskstore.free_write",
)
POINT_SITES = ("wal.commit", "wal.checkpoint", "buffer.writeback")


def _dedup(points):
    seen: Set[Tuple[int, int]] = set()
    out = []
    for p in points:
        if p not in seen:
            seen.add(p)
            out.append(p)
    return out


def _ops():
    """The workload as (op kind, payload) pairs — one committed
    transaction each."""
    ops: List[Tuple[str, object]] = [("bulk", _dedup(_INITIAL))]
    ops.extend(("insert", p) for p in _INSERTS)
    ops.append(("batch", _BATCH))
    ops.extend(("delete", p) for p in _SHRINK)
    return ops


def _apply(tree: ZkdTree, kind: str, payload) -> None:
    if kind == "bulk":
        tree.bulk_load(payload)
    elif kind == "insert":
        tree.insert(payload)
    elif kind == "batch":
        tree.insert_many(payload)
    else:
        tree.delete(payload)


def _expected_states() -> List[Set[Tuple[int, int]]]:
    """Point set after each committed prefix (index k = k ops done)."""
    current: Set[Tuple[int, int]] = set()
    states = [set(current)]
    for kind, payload in _ops():
        if kind in ("bulk", "batch"):
            current |= set(payload)
        elif kind == "insert":
            current.add(payload)
        else:
            current.discard(payload)
        states.append(set(current))
    return states


EXPECTED = _expected_states()


def _run_workload(
    path: str, faults: Optional[FaultInjector]
) -> Tuple[int, bool]:
    """Run the workload; returns (ops fully committed, crashed?).  On a
    crash the store is abandoned without any clean-close flushing.

    Store/tree construction runs inside the crashable region too: the
    store's header write and the tree's root allocation are part of the
    write path, and the first hits of several sites land there."""
    store = None
    completed = 0
    try:
        store = FilePageStore(path, page_capacity=8, faults=faults)
        tree = ZkdTree(GRID, store=store, page_capacity=8)
        for kind, payload in _ops():
            _apply(tree, kind, payload)
            completed += 1
        store.close()  # the clean-close header flush is a site too
    except CrashPoint:
        if store is not None:
            store.simulate_crash()
        return completed, True
    return completed, False


def _assert_recovered(path: str, completed: int) -> None:
    """Reopen uninjected and check the three matrix properties.

    Before the first op commits there is no tree contract yet — a
    crash during store creation or root allocation may leave a file
    that cannot be reattached, which is acceptable only at
    ``completed == 0`` (the store "was never created")."""
    store = FilePageStore(path)
    try:
        try:
            tree = ZkdTree.open(GRID, store)
        except Exception:
            assert completed == 0, "reattach failed after a committed op"
            return
        tree.tree.check_invariants()
        recovered = set(tree.points())
        acceptable = EXPECTED[completed : completed + 2]
        assert recovered in acceptable, (
            f"recovered state matches no committed prefix: "
            f"{sorted(recovered)} after {completed} committed ops"
        )
        # Query equality against an uninjected in-memory oracle over
        # the same point set.
        oracle = ZkdTree(GRID, page_capacity=8)
        if recovered:
            oracle.bulk_load(sorted(recovered))
        assert (
            tree.range_query(QUERY).matches
            == oracle.range_query(QUERY).matches
        )
    finally:
        store.close()


def _measure_hits(tmp_path) -> Dict[str, int]:
    """Dry run: traverse every site with no rules armed, counting."""
    probe = FaultInjector()
    completed, crashed = _run_workload(str(tmp_path / "probe.zkd"), probe)
    assert not crashed and completed == len(_ops())
    return probe.hit_counts()


def _scenarios(hits: Dict[str, int], sample: Optional[int]):
    """(site, kind, hit index) triples; ``sample`` caps hits per site
    (evenly spread), ``None`` sweeps every hit."""
    out = []
    for site, kinds in [
        *[(s, ("crash", "torn_write")) for s in WRITE_SITES],
        *[(s, ("crash",)) for s in POINT_SITES],
    ]:
        count = hits.get(site, 0)
        if count == 0:
            continue
        if sample is None or count <= sample:
            indices = range(1, count + 1)
        else:
            step = count / sample
            indices = sorted(
                {max(1, round(step * (i + 1))) for i in range(sample)}
            )
        for kind in kinds:
            out.extend((site, kind, h) for h in indices)
    return out


def _sweep(tmp_path, sample: Optional[int]) -> int:
    hits = _measure_hits(tmp_path)
    # Every write-path site must actually be traversed by the workload,
    # or the matrix silently proves nothing about it.
    for site in WRITE_SITES + POINT_SITES:
        assert hits.get(site, 0) > 0, f"workload never reaches {site}"
    scenarios = _scenarios(hits, sample)
    crashes = 0
    for i, (site, kind, at) in enumerate(scenarios):
        path = str(tmp_path / f"m{i}.zkd")
        inj = FaultInjector(seed=i)
        inj.rule(site, kind, at=at)
        completed, crashed = _run_workload(path, inj)
        assert crashed, f"{site}:{kind}@{at} did not fire"
        crashes += 1
        _assert_recovered(path, completed)
    return crashes


@pytest.mark.chaos
def test_registered_write_sites_are_swept(tmp_path):
    """The matrix derives its site list from the live registry: a new
    write-path site in the storage layer must join the sweep."""
    import repro.storage.buffer  # noqa: F401 - registers its site

    storage_sites = {
        s
        for s in registered_sites()
        if s.startswith(("wal.", "diskstore.", "buffer."))
    }
    read_sites = set(registered_sites("read"))
    assert storage_sites - read_sites == set(WRITE_SITES) | set(POINT_SITES)


@pytest.mark.chaos
def test_crash_matrix_smoke(tmp_path):
    """Tier-1 subset: first/middle/last hit of every site and kind."""
    assert _sweep(tmp_path, sample=3) > 0


@pytest.mark.chaos
@pytest.mark.slow
def test_crash_matrix_full(tmp_path):
    """Nightly: every hit index of every write-path site and kind."""
    assert _sweep(tmp_path, sample=None) > 0


# ---------------------------------------------------------------------------
# Crashes while a snapshot is pinned
# ---------------------------------------------------------------------------

_PIN_MUTATIONS: List[Tuple[str, object]] = [
    ("insert", p) for p in _INSERTS
] + [("batch", _BATCH)] + [("delete", p) for p in _SHRINK[:8]]


def _pinned_states() -> List[Set[Tuple[int, int]]]:
    current = set(_dedup(_INITIAL))
    states = [set(current)]
    for kind, payload in _PIN_MUTATIONS:
        if kind == "batch":
            current |= set(payload)
        elif kind == "insert":
            current.add(payload)
        else:
            current.discard(payload)
        states.append(set(current))
    return states


PINNED_EXPECTED = _pinned_states()


def _run_pinned_workload(path: str, faults: Optional[FaultInjector]):
    """Like :func:`_run_workload`, but a snapshot manager is attached
    and a session pin is held across the mutation phase.  While the
    process lives — even *after* the crash fired — the pinned snapshot
    must keep reading the exact bytes it saw at pin time; the crash
    only destroys the store's in-memory state, never the snapshot's.

    Returns (ops committed, crashed?, hits at pin time or None).
    """
    from repro.concurrency import SnapshotManager

    store = None
    pinned_epoch = None
    manager = None
    view = None
    frozen = None
    completed = 0
    pin_hits = None
    try:
        store = FilePageStore(path, page_capacity=8, faults=faults)
        manager = SnapshotManager()
        tree = ZkdTree(GRID, store=store, page_capacity=8, snapshots=manager)
        tree.bulk_load(_dedup(_INITIAL))
        pinned_epoch = manager.pin()
        if faults is not None:
            pin_hits = faults.hit_counts()
        view = tree.snapshot_view(pinned_epoch)
        frozen = view.points()
        assert set(frozen) == PINNED_EXPECTED[0]
        query_at_pin = view.range_query(QUERY).matches
        for kind, payload in _PIN_MUTATIONS:
            _apply(tree, kind, payload)
            completed += 1
            # Snapshot stability under committed concurrent writes.
            assert view.points() == frozen
        assert view.range_query(QUERY).matches == query_at_pin
        manager.unpin(pinned_epoch)
        pinned_epoch = None
        store.close()
    except CrashPoint:
        # The crash interrupted a commit — but this process's pinned
        # snapshot is untouched: same bytes, before abandoning the
        # store kill -9 style.  (A crash in the clean-close flush lands
        # after the unpin, when the versions are legitimately gone.)
        if view is not None and pinned_epoch is not None:
            assert view.points() == frozen
        if store is not None:
            store.simulate_crash()
        return completed, True, pin_hits
    return completed, False, pin_hits


def _assert_pinned_recovered(path: str, completed: int) -> None:
    """Reopen after a pinned-session crash: recovery replays to the
    last group-commit boundary; nothing of the crashed transaction —
    and nothing of the dead process's COW versions — survives."""
    from repro.concurrency import SnapshotManager

    store = FilePageStore(path)
    try:
        manager = SnapshotManager()
        tree = ZkdTree.open(GRID, store, snapshots=manager)
        tree.tree.check_invariants()
        recovered = set(tree.points())
        acceptable = PINNED_EXPECTED[completed : completed + 2]
        assert recovered in acceptable, (
            f"recovered state matches no committed prefix "
            f"(after {completed} committed mutations)"
        )
        # A fresh manager starts with zero retained versions: the
        # crashed process's COW chains died with it, not with us.
        assert manager.leak_stats() == {
            "snapshot.active_pins": 0,
            "snapshot.captured_indexes": 0,
            "cow.live_page_versions": 0,
        }
        # And snapshots over the recovered store work immediately.
        epoch = manager.pin()
        try:
            assert set(
                tree.snapshot_view(epoch).points()
            ) == recovered
        finally:
            manager.unpin(epoch)
        oracle = ZkdTree(GRID, page_capacity=8)
        if recovered:
            oracle.bulk_load(sorted(recovered))
        assert (
            tree.range_query(QUERY).matches
            == oracle.range_query(QUERY).matches
        )
    finally:
        store.close()


def _pinned_scenarios(tmp_path, per_site: int):
    """Probe the pinned workload, then pick crash hits that land
    *after* the pin was taken (first and last post-pin hit per site)."""
    probe = FaultInjector()
    completed, crashed, pin_hits = _run_pinned_workload(
        str(tmp_path / "pin-probe.zkd"), probe
    )
    assert not crashed and completed == len(_PIN_MUTATIONS)
    assert pin_hits is not None
    totals = probe.hit_counts()
    out = []
    for site in WRITE_SITES + POINT_SITES:
        before = pin_hits.get(site, 0)
        total = totals.get(site, 0)
        if total <= before:
            continue  # site never traversed while pinned
        candidates = sorted(
            {before + 1, (before + 1 + total) // 2, total}
        )[:per_site]
        out.extend((site, at) for at in candidates)
    return out


@pytest.mark.chaos
def test_crash_while_snapshot_pinned_smoke(tmp_path):
    """Tier 1: crash at the first/last post-pin hit of each site."""
    scenarios = _pinned_scenarios(tmp_path, per_site=2)
    assert scenarios, "no write site fires while a snapshot is pinned"
    for i, (site, at) in enumerate(scenarios):
        path = str(tmp_path / f"pin{i}.zkd")
        inj = FaultInjector(seed=1000 + i)
        inj.rule(site, "crash", at=at)
        completed, crashed, _ = _run_pinned_workload(path, inj)
        assert crashed, f"{site}:crash@{at} did not fire"
        _assert_pinned_recovered(path, completed)


@pytest.mark.chaos
@pytest.mark.slow
def test_crash_while_snapshot_pinned_full(tmp_path):
    """Nightly: first/middle/last post-pin hit of each site."""
    scenarios = _pinned_scenarios(tmp_path, per_site=3)
    for i, (site, at) in enumerate(scenarios):
        path = str(tmp_path / f"pinf{i}.zkd")
        inj = FaultInjector(seed=2000 + i)
        inj.rule(site, "crash", at=at)
        completed, crashed, _ = _run_pinned_workload(path, inj)
        assert crashed, f"{site}:crash@{at} did not fire"
        _assert_pinned_recovered(path, completed)


@pytest.mark.chaos
def test_double_crash_then_recover(tmp_path):
    """Crash during the workload, then crash *again* during nothing —
    reopen twice; recovery must be idempotent at the tree level."""
    path = str(tmp_path / "twice.zkd")
    inj = FaultInjector(seed=99)
    inj.rule("wal.checkpoint", "crash")
    completed, crashed = _run_workload(path, inj)
    assert crashed
    # First reopen performs the redo; drop it without a clean close.
    first = FilePageStore(path)
    assert first.recovery_stats.get("txns_committed", 0) >= 1
    first.simulate_crash()
    _assert_recovered(path, completed)
