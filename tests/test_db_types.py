"""Tests for domains, including the element object class operations."""

import pytest

from repro.core.geometry import Box, Grid
from repro.core.zvalue import ZValue
from repro.db.types import (
    BOOLEAN,
    ELEMENT,
    FLOAT,
    INTEGER,
    OID,
    SPATIAL_OBJECT,
    STRING,
    ElementDomain,
    SpatialObject,
)


class TestScalarDomains:
    def test_integer(self):
        assert INTEGER.validate(5) == 5
        with pytest.raises(TypeError):
            INTEGER.validate("5")
        with pytest.raises(TypeError):
            INTEGER.validate(True)  # bool is not an integer here

    def test_float(self):
        assert FLOAT.validate(2) == 2.0
        assert FLOAT.validate(2.5) == 2.5
        with pytest.raises(TypeError):
            FLOAT.validate("2.5")

    def test_string(self):
        assert STRING.validate("x") == "x"
        with pytest.raises(TypeError):
            STRING.validate(5)

    def test_boolean(self):
        assert BOOLEAN.validate(True) is True
        with pytest.raises(TypeError):
            BOOLEAN.validate(1)

    def test_oid(self):
        assert OID.validate("p1") == "p1"
        assert OID.validate(42) == 42
        with pytest.raises(TypeError):
            OID.validate(3.5)

    def test_equality_by_type(self):
        from repro.db.types import IntegerDomain

        assert INTEGER == IntegerDomain()
        assert INTEGER != FLOAT
        assert hash(INTEGER) == hash(IntegerDomain())

    def test_repr(self):
        assert repr(INTEGER) == "integer"
        assert repr(ELEMENT) == "element"


class TestElementDomain:
    def test_validate(self):
        z = ZValue.from_string("001")
        assert ELEMENT.validate(z) is z
        with pytest.raises(TypeError):
            ELEMENT.validate("001")

    def test_shuffle_paper_example(self):
        """Section 4 / Figure 2: shuffle([2:3, 0:3]) = 001."""
        grid = Grid(2, 3)
        z = ElementDomain.shuffle(((2, 3), (0, 3)), grid)
        assert str(z) == "001"

    def test_shuffle_single_pixel(self):
        """The range-search plan shuffles [x:x, y:y] point elements."""
        grid = Grid(2, 3)
        z = ElementDomain.shuffle(((3, 3), (5, 5)), grid)
        assert z.bits == 27

    def test_unshuffle_inverse(self):
        grid = Grid(2, 3)
        z = ZValue.from_string("001")
        assert ElementDomain.unshuffle(z, grid) == ((2, 3), (0, 3))

    def test_decompose(self):
        grid = Grid(2, 3)
        zs = ElementDomain.decompose(Box(((1, 3), (0, 4))), grid)
        assert len(zs) == 6

    def test_precedes_contains(self):
        a = ZValue.from_string("00")
        b = ZValue.from_string("001")
        assert ElementDomain.precedes(a, b)
        assert ElementDomain.contains(a, b)
        assert not ElementDomain.contains(b, a)


class TestSpatialObject:
    def test_from_box(self):
        obj = SpatialObject.from_box("roof", Box(((0, 3), (0, 3))))
        assert obj.label == "roof"
        from repro.core.geometry import INSIDE

        assert obj.classify(Box(((1, 2), (1, 2)))) is INSIDE

    def test_domain_validates(self):
        obj = SpatialObject.from_box("roof", Box(((0, 3), (0, 3))))
        assert SPATIAL_OBJECT.validate(obj) is obj
        with pytest.raises(TypeError):
            SPATIAL_OBJECT.validate("roof")

    def test_repr(self):
        obj = SpatialObject.from_box("roof", Box(((0, 3), (0, 3))))
        assert "roof" in repr(obj)
