"""Regression tests for the shared-mutable-state audit.

The concurrency work audited every module-level or cross-query mutable
structure on the read path.  Each fix here gets a pinned regression:

1. ``FilePageStore`` slot reads used seek+read on the shared file
   object — two threads interleaving seek and read returned each
   other's pages (or checksum garbage).  Reads now use ``os.pread``.
2. ``BufferManager.get`` did membership-check / move_to_end / lookup
   non-atomically; a concurrent eviction between the check and the
   lookup raised ``KeyError``.  The frame table is now lock-protected.
3. Per-query buffer accounting called ``reset_stats()`` at query
   start, so one query zeroed another's live counters.  Queries now
   snapshot-and-diff; the live counters are cumulative.
4. The fastz decompose LRU cache is shared across threads; CPython's
   ``functools.lru_cache`` is thread-safe, but nothing locked in that
   concurrent callers get value-identical decompositions — this does.
"""

from __future__ import annotations

import os
import pickle
import threading

from repro.core.fastz import decompose_box_cached
from repro.core.geometry import Box, Grid
from repro.storage.buffer import BufferManager
from repro.storage.diskstore import FilePageStore
from repro.storage.page import Page, PageStore
from repro.storage.prefix_btree import ZkdTree

GRID = Grid(ndims=2, depth=6)
SIDE = GRID.side


def _hammer(nthreads, target):
    errors = []

    def run(i):
        try:
            target(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(nthreads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestPreadSlotReads:
    def test_concurrent_reads_return_correct_pages(self, tmp_path):
        path = os.path.join(tmp_path, "pages.db")
        store = FilePageStore(path, page_capacity=4)
        pages = []
        for i in range(24):
            page = store.allocate()
            page.records.append((i, (i, i)))
            store.write(page)
            pages.append(page.page_id)
        expected = {
            pid: store.read(pid).records for pid in pages
        }

        def reads(i):
            for _ in range(200):
                for pid in pages[i::4]:
                    assert store.read(pid).records == expected[pid]

        errors = _hammer(4, reads)
        store.close()
        assert errors == []

    def test_read_does_not_move_shared_offset(self, tmp_path):
        """pread leaves the file position alone, so an append-side user
        of the shared offset can never be corrupted by readers."""
        path = os.path.join(tmp_path, "pages.db")
        store = FilePageStore(path, page_capacity=4)
        page = store.allocate()
        page.records.append((1, (1, 1)))
        store.write(page)
        pos = store._file.tell()
        store.read(page.page_id)
        store.peek(page.page_id)
        assert store._file.tell() == pos
        store.close()


class TestBufferLocking:
    def test_get_vs_eviction_race(self):
        store = PageStore(page_capacity=4)
        pids = []
        for i in range(32):
            page = store.allocate()
            page.records.append((i, (i, i)))
            store.write(page)
            pids.append(page.page_id)
        # capacity 2 << working set: every get likely races an evict.
        buffer = BufferManager(store, capacity=2)
        value = {pid: k for k, pid in enumerate(pids)}

        def churn(i):
            for _ in range(300):
                for pid in pids[i::4]:
                    page = buffer.get(pid)
                    k = value[pid]
                    assert page.records == [(k, (k, k))]
                    assert buffer.peek(pid).page_id == pid

        errors = _hammer(4, churn)
        assert errors == []

    def test_pickle_roundtrip_recreates_lock(self):
        store = PageStore(page_capacity=4)
        page = store.allocate()
        store.write(page)
        buffer = BufferManager(store, capacity=2)
        buffer.get(page.page_id)
        clone = pickle.loads(pickle.dumps(buffer))
        # The clone has a fresh, working lock.
        assert clone.get(page.page_id).page_id == page.page_id
        assert clone.hits + clone.misses >= 1


class TestBufferStatsDelta:
    def test_queries_do_not_zero_live_counters(self):
        tree = ZkdTree(GRID, page_capacity=4, buffer_frames=4)
        tree.insert_many(
            [(i, (i * 11) % SIDE) for i in range(SIDE)]
        )
        box = Box(((0, SIDE - 1), (0, SIDE - 1)))
        base = tree.buffer.stats()
        first = tree.range_query(box)
        mid = tree.buffer.stats()
        # The old reset_stats() behaviour zeroed these between queries.
        assert mid["hits"] == base["hits"] + first.buffer_stats["hits"]
        assert (
            mid["misses"] == base["misses"] + first.buffer_stats["misses"]
        )
        second = tree.range_query(box)
        final = tree.buffer.stats()
        assert final["hits"] == (
            mid["hits"] + second.buffer_stats["hits"]
        )
        assert final["misses"] == (
            mid["misses"] + second.buffer_stats["misses"]
        )

    def test_deltas_sum_under_sequential_interleaving(self):
        small = ZkdTree(GRID, page_capacity=4, buffer_frames=2)
        small.insert_many([(i, i) for i in range(SIDE)])
        box_a = Box(((0, SIDE // 2), (0, SIDE // 2)))
        box_b = Box(((0, 3), (0, 3)))
        base = small.buffer.stats()
        deltas = []
        for box in (box_a, box_b, box_a, box_b):
            deltas.append(small.range_query(box).buffer_stats)
        final = small.buffer.stats()
        assert final["hits"] == base["hits"] + sum(
            d["hits"] for d in deltas
        )
        assert final["misses"] == base["misses"] + sum(
            d["misses"] for d in deltas
        )


class TestFastzCacheThreadSafety:
    def test_concurrent_decompose_is_value_identical(self):
        grid = Grid(ndims=2, depth=7)
        boxes = [
            Box(((i, i + 13), (i * 2 % 100, i * 2 % 100 + 9)))
            for i in range(16)
        ]
        serial = [tuple(decompose_box_cached(grid, b)) for b in boxes]
        results = [[None] * len(boxes) for _ in range(4)]

        def worker(t):
            for i, box in enumerate(boxes):
                results[t][i] = tuple(decompose_box_cached(grid, box))

        errors = _hammer(4, worker)
        assert errors == []
        for per_thread in results:
            assert per_thread == serial


class TestReclaimVsFreshPin:
    def test_stalled_reclaim_cannot_free_a_new_pins_versions(
        self, monkeypatch
    ):
        """An unpin-triggered reclaim that stalls after deciding who is
        pinned must not free versions retained for a pin (plus commit)
        that landed while it was stalled.  ``reclaim`` now holds the
        manager mutex for its whole pass, so the fresh pin blocks until
        the sweep is done instead of racing it."""
        from repro.concurrency import SnapshotManager
        from repro.concurrency.versions import PageVersionMap

        manager = SnapshotManager()
        tree = ZkdTree(GRID, page_capacity=4, snapshots=manager)
        tree.insert_many([(i, i) for i in range(24)])
        old_epoch = manager.pin()

        entered = threading.Event()
        release = threading.Event()
        original = PageVersionMap.reclaim

        def stalled(self, pinned):
            entered.set()
            assert release.wait(timeout=10)
            return original(self, pinned)

        monkeypatch.setattr(PageVersionMap, "reclaim", stalled)

        def unpinner():
            manager.unpin(old_epoch)

        state = {}

        def pin_and_write():
            epoch = manager.pin()
            frozen = tree.snapshot_view(epoch).points()
            # Dirty every page: the pre-images are retained for epoch.
            tree.insert_many([(i, (i + 1) % 24) for i in range(24)])
            state["epoch"], state["frozen"] = epoch, frozen

        a = threading.Thread(target=unpinner)
        a.start()
        assert entered.wait(timeout=10)
        b = threading.Thread(target=pin_and_write)
        b.start()
        # Give the pin every chance to race in (with the fix it blocks
        # on the manager mutex until the stalled sweep completes).
        b.join(timeout=0.3)
        release.set()
        a.join(timeout=10)
        b.join(timeout=10)
        assert not a.is_alive() and not b.is_alive()
        monkeypatch.setattr(PageVersionMap, "reclaim", original)
        try:
            # Unfixed, the stalled sweep freed the new pin's retained
            # pre-images and this read raises KeyError.
            view = tree.snapshot_view(state["epoch"])
            assert view.points() == state["frozen"]
        finally:
            manager.unpin(state["epoch"])
        assert manager.leak_stats()["cow.live_page_versions"] == 0


class TestSnapshotPickling:
    def test_versioned_tree_pickles_without_manager(self):
        from repro.concurrency import SnapshotManager

        manager = SnapshotManager()
        tree = ZkdTree(GRID, page_capacity=4, snapshots=manager)
        tree.insert_many([(i, i) for i in range(16)])
        epoch = manager.pin()
        try:
            clone = pickle.loads(pickle.dumps(tree))
        finally:
            manager.unpin(epoch)
        # The clone dropped manager wiring (process-pool workers only
        # run live queries) but kept the data.
        assert clone._snapshots is None
        assert clone._index_snapshots == {}
        assert clone.store._versions is None
        assert clone.points() == tree.points()
