"""Store-level durability tests: checksums catch corruption, the WAL
makes multi-page mutations atomic, and recovery is idempotent.

The crash *matrix* (kill the store at every registered failpoint) is
in test_crash_matrix.py; these are the targeted scenarios the issue
calls out — flip a byte on disk and get :class:`ChecksumError` instead
of silent garbage, recover twice and get the same state, roll back a
failed transaction completely.
"""

import os
import struct

import pytest

from repro.core.geometry import Box, Grid
from repro.faults import CrashPoint, FaultError, FaultInjector
from repro.obs.trace import trace
from repro.storage.diskstore import ChecksumError, FilePageStore
from repro.storage.page import Page
from repro.storage.prefix_btree import ZkdTree


def _flip_byte(path, offset):
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0x40]))


def _page_offset(store, page_id):
    return store.page_size + page_id * store.page_size


class TestChecksums:
    def test_flipped_byte_raises_not_garbage(self, tmp_path):
        path = str(tmp_path / "c.zkd")
        store = FilePageStore(path, page_capacity=4, page_size=256)
        page = store.allocate()
        page.insert(1, "payload-one")
        page.insert(2, "payload-two")
        store.write(page)
        store.close()
        # Corrupt a byte in the middle of the record area.
        _flip_byte(path, _page_offset(store, page.page_id) + 40)
        reopened = FilePageStore(path)
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            reopened.read(page.page_id)
        assert reopened.checksum_failures == 1
        reopened.close()

    def test_corruption_publishes_a_fault_counter(self, tmp_path):
        path = str(tmp_path / "t.zkd")
        store = FilePageStore(path, page_capacity=4, page_size=256)
        page = store.allocate()
        page.insert(1, "x")
        store.write(page)
        store.close()
        _flip_byte(path, _page_offset(store, page.page_id) + 20)
        reopened = FilePageStore(path)
        with trace("corruption") as t:
            with pytest.raises(ChecksumError):
                reopened.read(page.page_id)
        assert t.total_counters().get("fault.checksum") == 1
        reopened.close()

    def test_verify_scans_every_live_page(self, tmp_path):
        path = str(tmp_path / "v.zkd")
        store = FilePageStore(path, page_capacity=4, page_size=256)
        pages = [store.allocate() for _ in range(3)]
        for i, page in enumerate(pages):
            page.insert(i, f"val{i}")
            store.write(page)
        assert store.verify() == 3
        store.close()
        _flip_byte(path, _page_offset(store, pages[1].page_id) + 30)
        reopened = FilePageStore(path)
        with pytest.raises(ChecksumError):
            reopened.verify()
        reopened.close()

    def test_injected_read_bit_flip_is_caught(self, tmp_path):
        inj = FaultInjector(seed=2)
        store = FilePageStore(
            str(tmp_path / "r.zkd"),
            page_capacity=4,
            page_size=256,
            faults=inj,
        )
        page = store.allocate()
        page.insert(5, "five")
        store.write(page)
        inj.rule("diskstore.page_read", "bit_flip")
        with pytest.raises(ChecksumError):
            store.read(page.page_id)
        store.read(page.page_id)  # rule spent: clean read succeeds
        store.close()

    def test_injected_short_read_is_caught(self, tmp_path):
        inj = FaultInjector(seed=4)
        store = FilePageStore(
            str(tmp_path / "s.zkd"),
            page_capacity=4,
            page_size=256,
            faults=inj,
        )
        page = store.allocate()
        page.insert(5, "five")
        store.write(page)
        inj.rule("diskstore.page_read", "short_read")
        with pytest.raises(ChecksumError, match="short read"):
            store.read(page.page_id)
        store.close()

    def test_checksums_off_is_honoured(self, tmp_path):
        path = str(tmp_path / "n.zkd")
        store = FilePageStore(
            path, page_capacity=4, page_size=256, checksums=False
        )
        page = store.allocate()
        page.insert(1, "x")
        store.write(page)
        store.close()
        reopened = FilePageStore(path)
        assert reopened.checksums is False
        reopened.read(page.page_id)
        reopened.close()


class TestHeaderDamage:
    def test_torn_next_id_is_reconstructed(self, tmp_path):
        path = str(tmp_path / "h.zkd")
        store = FilePageStore(path, page_capacity=4, page_size=256)
        for i in range(3):
            page = store.allocate()
            page.insert(i, i)
            store.write(page)
        store.close()
        _flip_byte(path, 32)  # the mutable next_id field
        reopened = FilePageStore(path)
        assert reopened.page_ids() == [0, 1, 2]
        assert reopened.recovery_stats.get("next_id_recovered") == 1
        new_page = reopened.allocate()
        assert new_page.page_id == 3  # no id reuse after the tear
        reopened.close()

    def test_torn_fixed_header_is_fatal(self, tmp_path):
        path = str(tmp_path / "f.zkd")
        FilePageStore(path, page_capacity=4, page_size=256).close()
        _flip_byte(path, 5)  # page_size field: crc must catch it
        with pytest.raises(ChecksumError, match="header"):
            FilePageStore(path)


class TestTransactions:
    def test_exception_rolls_back_everything(self, tmp_path):
        store = FilePageStore(
            str(tmp_path / "t.zkd"), page_capacity=4, page_size=256
        )
        base = store.allocate()
        base.insert(1, "keep")
        store.write(base)
        with pytest.raises(RuntimeError):
            with store.transaction():
                page = store.allocate()
                page.insert(2, "discard")
                store.write(page)
                base2 = store.read(base.page_id)
                base2.insert(3, "also discard")
                store.write(base2)
                raise RuntimeError("abort")
        assert store.page_ids() == [base.page_id]
        assert store.read(base.page_id).records == [(1, "keep")]
        assert not store.in_transaction
        # The allocation was rolled back; the next one reuses the id.
        assert store.allocate().page_id == 1
        store.close()

    def test_reads_see_uncommitted_writes(self, tmp_path):
        store = FilePageStore(
            str(tmp_path / "rw.zkd"), page_capacity=4, page_size=256
        )
        page = store.allocate()
        page.insert(1, "old")
        store.write(page)
        with store.transaction():
            inside = store.read(page.page_id)
            inside.records[0] = (1, "new")
            store.write(inside)
            assert store.read(page.page_id).records == [(1, "new")]
        assert store.read(page.page_id).records == [(1, "new")]
        store.close()

    def test_nested_blocks_commit_once_at_the_outermost(self, tmp_path):
        store = FilePageStore(
            str(tmp_path / "n.zkd"), page_capacity=4, page_size=256
        )
        with store.transaction():
            a = store.allocate()
            with store.transaction():
                b = store.allocate()
                assert store.in_transaction
            assert store.in_transaction  # inner exit does not commit
        assert not store.in_transaction
        assert store.page_ids() == [a.page_id, b.page_id]
        store.close()

    def test_transaction_requires_wal(self, tmp_path):
        store = FilePageStore(
            str(tmp_path / "w.zkd"), page_capacity=4, page_size=256, wal=False
        )
        assert store.supports_transactions is False
        with pytest.raises(ValueError, match="WAL"):
            with store.transaction():
                pass
        store.close()

    def test_free_inside_transaction(self, tmp_path):
        store = FilePageStore(
            str(tmp_path / "fr.zkd"), page_capacity=4, page_size=256
        )
        keep = store.allocate()
        drop = store.allocate()
        with store.transaction():
            store.free(drop.page_id)
            with pytest.raises(KeyError):
                store.read(drop.page_id)
        assert store.page_ids() == [keep.page_id]
        reopened = FilePageStore(store.path)
        store.close()
        assert reopened.page_ids() == [keep.page_id]
        reopened.close()


class TestRecovery:
    def _crashed_commit(self, tmp_path, site, at=1):
        """Run one committed mutation, then a second one that crashes
        at ``site``; returns (path, pre-crash committed records)."""
        path = str(tmp_path / "cr.zkd")
        inj = FaultInjector(seed=1)
        store = FilePageStore(
            path, page_capacity=4, page_size=256, faults=inj
        )
        page = store.allocate()
        page.insert(1, "committed")
        store.write(page)
        inj.rule(site, "crash", at=at)
        with pytest.raises(CrashPoint):
            mutated = Page(
                page_id=page.page_id,
                capacity=4,
                records=[(1, "committed"), (2, "second")],
            )
            store.write(mutated)
        store.simulate_crash()
        return path, page.page_id

    def test_crash_before_commit_record_loses_the_txn(self, tmp_path):
        path, pid = self._crashed_commit(tmp_path, "wal.commit")
        reopened = FilePageStore(path)
        assert reopened.read(pid).records == [(1, "committed")]
        reopened.close()

    def test_crash_after_commit_before_apply_redoes_the_txn(self, tmp_path):
        path, pid = self._crashed_commit(tmp_path, "wal.checkpoint")
        reopened = FilePageStore(path)
        assert reopened.recovery_stats.get("txns_committed") == 1
        assert reopened.read(pid).records == [
            (1, "committed"),
            (2, "second"),
        ]
        reopened.close()

    def test_recovery_is_idempotent(self, tmp_path):
        # Crash after commit, then recover twice: byte-identical files.
        path, pid = self._crashed_commit(tmp_path, "wal.checkpoint")
        first = FilePageStore(path)
        stats_one = dict(first.recovery_stats)
        first.close()
        with open(path, "rb") as f:
            image_one = f.read()
        second = FilePageStore(path)
        second.close()
        with open(path, "rb") as f:
            image_two = f.read()
        assert stats_one.get("txns_committed") == 1
        assert image_one == image_two
        # Second open found a clean (reset) log: nothing to redo.
        assert "txns_committed" not in (second.recovery_stats or {})

    def test_recovery_publishes_trace_counters(self, tmp_path):
        path, pid = self._crashed_commit(tmp_path, "wal.checkpoint")
        with trace("open") as t:
            FilePageStore(path).close()
        counters = t.total_counters()
        assert counters.get("recovery.txns_committed") == 1
        assert counters.get("recovery.pages_redone", 0) >= 1

    def test_injected_write_error_aborts_cleanly(self, tmp_path):
        inj = FaultInjector(seed=6)
        store = FilePageStore(
            str(tmp_path / "we.zkd"),
            page_capacity=4,
            page_size=256,
            faults=inj,
        )
        page = store.allocate()
        page.insert(1, "x")
        store.write(page)
        inj.rule("wal.append", "error")
        grown = Page(page_id=page.page_id, capacity=4, records=[(1, "y")])
        with pytest.raises(FaultError):
            store.write(grown)
        # The store object survives an ordinary error: state rolled
        # back, next write succeeds.
        assert store.read(page.page_id).records == [(1, "x")]
        store.write(grown)
        assert store.read(page.page_id).records == [(1, "y")]
        store.close()


class TestTreeOnWalStore:
    def test_tree_mutations_are_atomic_under_crash(self, tmp_path, grid64):
        path = str(tmp_path / "tree.zkd")
        inj = FaultInjector(seed=3)
        store = FilePageStore(path, page_capacity=8, faults=inj)
        tree = ZkdTree(grid64, store=store, page_capacity=8)
        pts = [(i, (3 * i) % 64) for i in range(0, 64, 2)]
        tree.bulk_load(pts)
        before = set(tree.points())
        # Crash mid-insert (first WAL append of the txn).
        inj.rule("wal.append", "crash")
        with pytest.raises(CrashPoint):
            tree.insert((1, 1))
        store.simulate_crash()
        reopened_store = FilePageStore(path)
        reopened = ZkdTree.open(grid64, reopened_store)
        reopened.tree.check_invariants()
        assert set(reopened.points()) == before  # all or nothing
        result = reopened.range_query(Box(((0, 63), (0, 63))))
        assert set(result.matches) == before
        reopened_store.close()

    def test_fsync_on_commit_mode(self, tmp_path, grid64):
        path = str(tmp_path / "sync.zkd")
        store = FilePageStore(path, page_capacity=8, fsync_on_commit=True)
        tree = ZkdTree(grid64, store=store, page_capacity=8)
        tree.bulk_load([(i, i) for i in range(16)])
        tree.insert((1, 2))
        assert len(tree) == 17
        store.close()


def test_wal_flag_persists_across_reopen(tmp_path):
    path = str(tmp_path / "flag.zkd")
    FilePageStore(path, page_capacity=4, page_size=256, wal=False).close()
    reopened = FilePageStore(path, wal=True)  # file's own flags win
    assert reopened.supports_transactions is False
    assert not os.path.exists(reopened.wal_path)
    reopened.close()


def test_next_id_header_is_self_checksummed(tmp_path):
    path = str(tmp_path / "ck.zkd")
    store = FilePageStore(path, page_capacity=4, page_size=256)
    store.allocate()
    store.close()
    with open(path, "rb") as f:
        f.seek(32)
        next_id, crc = struct.unpack("<II", f.read(8))
    assert next_id == 1
    import zlib

    assert crc == zlib.crc32(struct.pack("<I", next_id))
