"""Tests for proximity and kNN queries through the database facade."""

import math

import pytest

from repro.core.geometry import Grid
from repro.db.database import SpatialDatabase
from repro.db.schema import Schema
from repro.db.types import INTEGER, OID

from conftest import random_points


def make_db(rng, n=200):
    db = SpatialDatabase(Grid(2, 6))
    db.create_table(
        "sites", Schema.of(("s@", OID), ("x", INTEGER), ("y", INTEGER))
    )
    rows = [
        (f"s{i}", x, y)
        for i, (x, y) in enumerate(random_points(rng, db.grid, n))
    ]
    db.insert_many("sites", rows)
    db.create_index("sites_xy", "sites", ("x", "y"))
    return db, rows


class TestProximityQuery:
    def test_matches_distance_filter(self, rng):
        db, rows = make_db(rng)
        out = db.proximity_query("sites", ("x", "y"), (30, 30), 9.0)
        expected = sorted(
            row for row in rows if math.dist(row[1:], (30, 30)) <= 9.0
        )
        assert sorted(out.rows) == expected

    def test_requires_index(self, rng):
        db = SpatialDatabase(Grid(2, 6))
        db.create_table(
            "bare", Schema.of(("b@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        with pytest.raises(ValueError):
            db.proximity_query("bare", ("x", "y"), (0, 0), 1.0)

    def test_zero_radius(self, rng):
        db, rows = make_db(rng)
        target = rows[0]
        out = db.proximity_query(
            "sites", ("x", "y"), (target[1], target[2]), 0.0
        )
        assert all(
            (x, y) == (target[1], target[2]) for _, x, y in out.rows
        )
        assert target in out.rows


class TestNearestNeighbours:
    def test_order_and_count(self, rng):
        db, rows = make_db(rng)
        center = (20, 45)
        out = db.nearest_neighbours("sites", ("x", "y"), center, k=5)
        assert len(out) == 5
        distances = [math.dist(row[1:], center) for row in out]
        assert distances == sorted(distances)
        # The 5th is no farther than any excluded row.
        excluded = [
            math.dist(row[1:], center)
            for row in rows
            if row not in out.rows
        ]
        assert distances[-1] <= min(excluded) + 1e-9

    def test_requires_index(self):
        db = SpatialDatabase(Grid(2, 6))
        db.create_table(
            "bare", Schema.of(("b@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        with pytest.raises(ValueError):
            db.nearest_neighbours("bare", ("x", "y"), (0, 0), 1)

    def test_k_exceeds_table(self, rng):
        db = SpatialDatabase(Grid(2, 6))
        db.create_table(
            "tiny", Schema.of(("t@", OID), ("x", INTEGER), ("y", INTEGER))
        )
        db.insert_many("tiny", [("a", 1, 1), ("b", 2, 2)])
        db.create_index("tiny_xy", "tiny", ("x", "y"))
        out = db.nearest_neighbours("tiny", ("x", "y"), (0, 0), k=10)
        assert len(out) == 2
