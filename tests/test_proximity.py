"""Tests for the proximity-preservation measurements (Section 5.2)."""

import random

import pytest

from repro.core.geometry import Box, Grid
from repro.core.proximity import (
    neighbour_page_probability,
    page_cover_count,
    proximity_profile,
)


class TestProximityProfile:
    def test_deterministic_for_seeded_rng(self, grid64):
        a = proximity_profile(grid64, (1, 0), samples=200, rng=random.Random(1))
        b = proximity_profile(grid64, (1, 0), samples=200, rng=random.Random(1))
        assert a == b

    def test_close_in_space_usually_close_in_z(self, grid64):
        """The paper's core proximity claim: for unit offsets the median
        z distance is far below the random-pair expectation."""
        profile = proximity_profile(
            grid64, (1, 0), samples=500, rng=random.Random(0)
        )
        assert profile.median < grid64.npixels / 8

    def test_tail_is_thin(self, grid64):
        """Large discrepancies exist (max can be huge) but are rare
        (p90 is much smaller than max)."""
        profile = proximity_profile(
            grid64, (0, 1), samples=800, rng=random.Random(0)
        )
        assert profile.maximum > profile.quantile_90
        assert profile.quantile_90 <= profile.maximum / 2

    def test_larger_offsets_larger_distance(self, grid64):
        """Greater spatial distance -> greater typical z distance."""
        near = proximity_profile(grid64, (1, 0), samples=500, rng=random.Random(2))
        far = proximity_profile(grid64, (16, 0), samples=500, rng=random.Random(2))
        assert near.median <= far.median

    def test_y_offset_cheaper_than_x(self, grid64):
        """x is the most significant interleaved bit, so unit x steps
        jump further in z than unit y steps on average."""
        dx = proximity_profile(grid64, (1, 0), samples=1000, rng=random.Random(3))
        dy = proximity_profile(grid64, (0, 1), samples=1000, rng=random.Random(3))
        assert dy.mean <= dx.mean

    def test_offset_too_large_rejected(self, grid8):
        with pytest.raises(ValueError):
            proximity_profile(grid8, (8, 0), samples=10)

    def test_negative_offsets_supported(self, grid64):
        profile = proximity_profile(
            grid64, (-1, 0), samples=200, rng=random.Random(4)
        )
        assert profile.samples == 200

    def test_str(self, grid64):
        profile = proximity_profile(grid64, (1, 0), samples=50)
        assert "offset=(1, 0)" in str(profile)


class TestNeighbourPageProbability:
    def test_probability_in_unit_range(self, grid64):
        p = neighbour_page_probability(grid64, (1, 0), page_codes=64, samples=300)
        assert 0.0 <= p <= 1.0

    def test_bigger_pages_more_cohabitation(self, grid64):
        small = neighbour_page_probability(
            grid64, (1, 0), page_codes=16, samples=500, rng=random.Random(0)
        )
        large = neighbour_page_probability(
            grid64, (1, 0), page_codes=256, samples=500, rng=random.Random(0)
        )
        assert large >= small

    def test_neighbours_beat_random_pairs(self, grid64):
        """Spatial neighbours share pages far more often than random
        pixel pairs would (whose probability is ~pagesize/space)."""
        page_codes = 64
        p = neighbour_page_probability(
            grid64, (1, 0), page_codes=page_codes, samples=800,
            rng=random.Random(1),
        )
        random_pair = page_codes / grid64.npixels
        assert p > 10 * random_pair

    def test_rejects_empty_page(self, grid64):
        with pytest.raises(ValueError):
            neighbour_page_probability(grid64, (1, 0), page_codes=0)


class TestPageCoverCount:
    def test_single_pixel_one_page(self, grid8):
        assert page_cover_count(grid8, Box(((3, 3), (5, 5))), 4) == 1

    def test_whole_space(self, grid8):
        assert page_cover_count(grid8, grid8.whole_space(), 16) == 4

    def test_aligned_block_is_cheap(self, grid8):
        # A dyadic-aligned square maps to exactly its own pages.
        assert page_cover_count(grid8, Box(((0, 3), (0, 3))), 16) == 1

    def test_straddling_block_costs_more(self, grid8):
        aligned = page_cover_count(grid8, Box(((0, 3), (0, 3))), 16)
        straddle = page_cover_count(grid8, Box(((2, 5), (2, 5))), 16)
        assert straddle > aligned

    def test_pages_per_block_bound_2d(self):
        """Section 5.2: under the fixed-size page model a block-sized
        square region touches at most 6 pages in 2-d."""
        grid = Grid(2, 5)
        page_codes = 64  # pages of 64 codes = 8x8-pixel z blocks
        worst = 0
        for corner in [(0, 0), (3, 5), (12, 17), (20, 9), (23, 23)]:
            box = Box(
                ((corner[0], corner[0] + 7), (corner[1], corner[1] + 7))
            )
            worst = max(worst, page_cover_count(grid, box, page_codes))
        assert worst <= 6

    def test_rejects_empty_page(self, grid8):
        with pytest.raises(ValueError):
            page_cover_count(grid8, grid8.whole_space(), 0)
