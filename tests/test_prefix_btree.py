"""Tests for the zkd B+-tree (points in z order, paged leaves)."""


import pytest

from repro.core.geometry import Box
from repro.core.rangesearch import brute_force_search
from repro.storage.buffer import ReplacementPolicy
from repro.storage.prefix_btree import ZkdTree

from conftest import random_box, random_points


def loaded_tree(grid, points, page_capacity=20):
    tree = ZkdTree(grid, page_capacity=page_capacity)
    tree.insert_many(points)
    return tree


class TestMaintenance:
    def test_insert_and_contains(self, grid64):
        tree = ZkdTree(grid64)
        tree.insert((3, 5))
        assert (3, 5) in tree
        assert (5, 3) not in tree
        assert len(tree) == 1

    def test_insert_validates(self, grid64):
        tree = ZkdTree(grid64)
        with pytest.raises(ValueError):
            tree.insert((64, 0))

    def test_delete(self, grid64):
        tree = ZkdTree(grid64)
        tree.insert((3, 5))
        assert tree.delete((3, 5))
        assert (3, 5) not in tree
        assert not tree.delete((3, 5))

    def test_duplicate_points(self, grid64):
        tree = ZkdTree(grid64)
        tree.insert((3, 5))
        tree.insert((3, 5))
        assert len(tree) == 2
        result = tree.range_query(Box(((3, 3), (5, 5))))
        assert result.matches == ((3, 5), (3, 5))

    def test_points_in_z_order(self, grid64, rng):
        points = random_points(rng, grid64, 100)
        tree = loaded_tree(grid64, points)
        stored = tree.points()
        zs = [grid64.zvalue(p).bits for p in stored]
        assert zs == sorted(zs)
        assert sorted(stored) == sorted(map(tuple, points))

    def test_npages_tracks_capacity(self, grid64, rng):
        points = random_points(rng, grid64, 200)
        tree = loaded_tree(grid64, points, page_capacity=20)
        assert tree.npages >= 200 // 20
        tree.tree.check_invariants()


class TestRangeQueries:
    def test_matches_brute_force(self, grid64, rng):
        points = random_points(rng, grid64, 400)
        tree = loaded_tree(grid64, points)
        for _ in range(15):
            box = random_box(rng, grid64)
            result = tree.range_query(box)
            truth = brute_force_search(grid64, points, box)
            assert list(result.matches) == truth

    def test_bigmin_variant_agrees(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        tree = loaded_tree(grid64, points)
        for _ in range(10):
            box = random_box(rng, grid64)
            a = tree.range_query(box)
            b = tree.range_query(box, use_bigmin=True)
            assert a.matches == b.matches

    def test_empty_result(self, grid64):
        tree = loaded_tree(grid64, [(0, 0), (63, 63)])
        result = tree.range_query(Box(((30, 31), (30, 31))))
        assert result.matches == ()
        assert result.nmatches == 0

    def test_whole_space_returns_everything(self, grid64, rng):
        points = random_points(rng, grid64, 100)
        tree = loaded_tree(grid64, points)
        result = tree.range_query(grid64.whole_space())
        assert result.nmatches == 100
        assert result.pages_accessed == tree.npages

    def test_3d_queries(self, grid3d, rng):
        points = random_points(rng, grid3d, 300)
        tree = loaded_tree(grid3d, points)
        box = Box(((2, 9), (1, 12), (5, 14)))
        result = tree.range_query(box)
        assert list(result.matches) == brute_force_search(
            grid3d, points, box
        )


class TestAccessAccounting:
    def test_small_query_touches_few_pages(self, grid64, rng):
        points = random_points(rng, grid64, 500)
        tree = loaded_tree(grid64, points, page_capacity=20)
        result = tree.range_query(Box(((10, 13), (10, 13))))
        assert result.pages_accessed < tree.npages / 2

    def test_efficiency_definition(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        tree = loaded_tree(grid64, points)
        result = tree.range_query(Box(((0, 31), (0, 31))))
        if result.records_on_pages:
            assert result.efficiency == pytest.approx(
                result.nmatches / result.records_on_pages
            )
        assert 0.0 <= result.efficiency <= 1.0

    def test_efficiency_zero_when_nothing_touched(self, grid64):
        tree = ZkdTree(grid64)
        result = tree.range_query(Box(((0, 1), (0, 1))))
        assert result.efficiency == 0.0

    def test_access_log_reset_per_query(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        tree = loaded_tree(grid64, points)
        first = tree.range_query(Box(((0, 15), (0, 15))))
        second = tree.range_query(Box(((0, 15), (0, 15))))
        assert first.pages_accessed == second.pages_accessed

    def test_larger_queries_cost_more_pages(self, grid64, rng):
        points = random_points(rng, grid64, 500)
        tree = loaded_tree(grid64, points)
        small = tree.range_query(Box(((16, 23), (16, 23))))
        large = tree.range_query(Box(((0, 47), (0, 47))))
        assert small.pages_accessed <= large.pages_accessed


class TestPartialMatch:
    def test_pins_one_axis(self, grid64, rng):
        points = random_points(rng, grid64, 400)
        tree = loaded_tree(grid64, points)
        result = tree.partial_match_query((20, None))
        expected = sorted(
            (p for p in map(tuple, points) if p[0] == 20),
            key=lambda p: grid64.zvalue(p).bits,
        )
        assert list(result.matches) == expected

    def test_wrong_arity_rejected(self, grid64):
        tree = ZkdTree(grid64)
        with pytest.raises(ValueError):
            tree.partial_match_query((1, 2, 3))

    def test_out_of_range_value_rejected(self, grid64):
        tree = ZkdTree(grid64)
        with pytest.raises(ValueError):
            tree.partial_match_query((64, None))

    def test_all_axes_unrestricted_is_full_scan(self, grid64, rng):
        points = random_points(rng, grid64, 100)
        tree = loaded_tree(grid64, points)
        result = tree.partial_match_query((None, None))
        assert result.nmatches == 100


class TestPartitionMap:
    def test_map_dimensions(self, grid8, rng):
        points = random_points(rng, grid8, 40)
        tree = loaded_tree(grid8, points, page_capacity=4)
        matrix = tree.partition_map()
        assert len(matrix) == 8 and all(len(row) == 8 for row in matrix)

    def test_pages_cover_contiguous_z_ranges(self, grid8, rng):
        points = random_points(rng, grid8, 40)
        tree = loaded_tree(grid8, points, page_capacity=4)
        matrix = tree.partition_map()
        from repro.core.interleave import interleave

        by_z = sorted(
            (interleave((x, y), 3), matrix[y][x])
            for x in range(8)
            for y in range(8)
        )
        pages = [page for _, page in by_z]
        # Page ordinals must be non-decreasing along the z order.
        assert pages == sorted(pages)

    def test_page_of_point_consistent_with_map(self, grid8, rng):
        points = random_points(rng, grid8, 40)
        tree = loaded_tree(grid8, points, page_capacity=4)
        matrix = tree.partition_map()
        for x in range(8):
            for y in range(8):
                assert tree.page_of_point((x, y)) == matrix[y][x]

    def test_partition_map_is_2d_only(self, grid3d):
        tree = ZkdTree(grid3d)
        tree.insert((0, 0, 0))
        with pytest.raises(ValueError):
            tree.partition_map()


class TestBufferPolicies:
    def test_merge_insensitive_to_policy(self, grid64, rng):
        """Section 4: merges touch each page once, so LRU vs FIFO vs MRU
        gives identical distinct-page counts."""
        points = random_points(rng, grid64, 400)
        box = Box(((5, 40), (10, 50)))
        counts = set()
        for policy in ReplacementPolicy:
            tree = ZkdTree(grid64, page_capacity=20, policy=policy)
            tree.insert_many(points)
            counts.add(tree.range_query(box).pages_accessed)
        assert len(counts) == 1
