"""Tests for the quadtree, grid-file and heap-scan baselines."""


import pytest

from repro.baselines.gridfile import FixedGridIndex
from repro.baselines.linearscan import HeapFile
from repro.baselines.quadtree import (
    RegionQuadtree,
    elements_to_quadtree_leaves,
    quadtree_leaves_to_elements,
)
from repro.core.decompose import Element, decompose_box
from repro.core.geometry import Box, Grid, box_classifier, circle_classifier
from repro.core.intervals import elements_to_intervals
from repro.core.rangesearch import brute_force_search

from conftest import random_box, random_points


class TestRegionQuadtree:
    def test_black_area_matches_object(self):
        grid = Grid(2, 4)
        box = Box(((2, 9), (4, 13)))
        tree = RegionQuadtree.build(grid, box_classifier(box))
        assert tree.black_area() == box.volume

    def test_is_black_per_pixel(self):
        grid = Grid(2, 4)
        classify = circle_classifier((8, 8), 5.0)
        tree = RegionQuadtree.build(grid, classify)
        for x in range(16):
            for y in range(16):
                expected = (x - 8) ** 2 + (y - 8) ** 2 <= 25
                assert tree.is_black((x, y)) == expected

    def test_leaves_have_even_z_length(self):
        grid = Grid(2, 4)
        tree = RegionQuadtree.build(grid, box_classifier(Box(((1, 6), (2, 9)))))
        assert all(leaf.z.length % 2 == 0 for leaf in tree.leaves)

    def test_leaves_in_z_order(self):
        grid = Grid(2, 4)
        tree = RegionQuadtree.build(grid, box_classifier(Box(((1, 6), (2, 9)))))
        zs = [leaf.z for leaf in tree.leaves]
        assert zs == sorted(zs)

    def test_max_level_conservative(self):
        grid = Grid(2, 5)
        classify = circle_classifier((16, 16), 9.0)
        coarse = RegionQuadtree.build(grid, classify, max_level=3)
        fine = RegionQuadtree.build(grid, classify)
        assert coarse.black_area() >= fine.black_area()
        assert coarse.nleaves() <= fine.nleaves()

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            RegionQuadtree.build(Grid(3, 3), lambda r: None)

    def test_quadtree_elements_equivalence(self):
        """The unification claim: black quadtree leaves ARE an AG
        decomposition covering the same pixels as decompose_box."""
        grid = Grid(2, 4)
        box = Box(((2, 9), (4, 13)))
        tree = RegionQuadtree.build(grid, box_classifier(box))
        quad_elements = quadtree_leaves_to_elements(tree)
        ag_elements = [Element.of(z, grid) for z in decompose_box(grid, box)]
        assert elements_to_intervals(quad_elements) == elements_to_intervals(
            ag_elements
        )

    def test_elements_to_quadtree_leaves_even_lengths(self):
        grid = Grid(2, 4)
        box = Box(((2, 9), (4, 13)))
        ag_elements = [Element.of(z, grid) for z in decompose_box(grid, box)]
        leaves = elements_to_quadtree_leaves(grid, ag_elements)
        assert all(z.length % 2 == 0 for z in leaves)
        back = [Element.of(z, grid) for z in leaves]
        assert elements_to_intervals(back) == elements_to_intervals(
            ag_elements
        )


class TestFixedGridIndex:
    def test_matches_brute_force(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        index = FixedGridIndex(grid64, cells_per_axis=8, page_capacity=10)
        index.insert_many(points)
        for _ in range(10):
            box = random_box(rng, grid64)
            result = index.range_query(box)
            assert list(result.matches) == brute_force_search(
                grid64, points, box
            )

    def test_cells_must_divide_side(self, grid64):
        with pytest.raises(ValueError):
            FixedGridIndex(grid64, cells_per_axis=3)

    def test_delete(self, grid64):
        index = FixedGridIndex(grid64, 8)
        index.insert((1, 1))
        assert index.delete((1, 1))
        assert not index.delete((1, 1))
        assert len(index) == 0

    def test_page_accounting_counts_overflow(self, grid64):
        index = FixedGridIndex(grid64, cells_per_axis=64, page_capacity=2)
        for _ in range(10):
            index.insert((0, 0))  # one cell, 5 pages
        assert index.npages == 5
        result = index.range_query(Box(((0, 0), (0, 0))))
        assert result.pages_accessed == 5

    def test_skew_hurts_grid_directory(self, grid64, rng):
        """Diagonal data leaves most cells empty; queries on the
        diagonal hit overflowing cells — the adaptivity gap the paper's
        dynamic structures close."""
        diagonal = [(i, i) for i in range(64) for _ in range(4)]
        index = FixedGridIndex(grid64, cells_per_axis=8, page_capacity=8)
        index.insert_many(diagonal)
        on_diag = index.range_query(Box(((0, 7), (0, 7))))
        assert on_diag.pages_accessed >= 4  # 8 cells x 32 pts / 8 cap

    def test_query_outside_grid(self, grid64):
        index = FixedGridIndex(grid64, 8)
        index.insert((1, 1))
        assert index.range_query(Box(((70, 80), (70, 80)))).matches == ()


class TestHeapFile:
    def test_matches_brute_force(self, grid64, rng):
        points = random_points(rng, grid64, 200)
        heap = HeapFile(grid64, page_capacity=20)
        heap.insert_many(points)
        box = random_box(rng, grid64)
        assert list(heap.range_query(box).matches) == brute_force_search(
            grid64, points, box
        )

    def test_always_scans_everything(self, grid64, rng):
        heap = HeapFile(grid64, page_capacity=10)
        heap.insert_many(random_points(rng, grid64, 100))
        tiny = heap.range_query(Box(((0, 0), (0, 0))))
        assert tiny.pages_accessed == heap.npages == 10
        assert tiny.records_on_pages == 100

    def test_delete(self, grid64):
        heap = HeapFile(grid64)
        heap.insert((1, 1))
        assert heap.delete((1, 1))
        assert not heap.delete((1, 1))
