"""Property tests: ``parse(render(ast)) == ast`` over randomized
statements, render idempotence, and "byte soup never raises anything
but ParseError"."""

from hypothesis import given, settings, strategies as st

from repro.sql import ParseError, parse, render
from repro.sql import ast as A

NAMES = ("a", "b", "c", "x", "y", "pop", "id@")
TABLES = ("t", "points", "regions")


def _col():
    return st.builds(
        A.ColumnRef,
        table=st.none() | st.sampled_from(TABLES),
        name=st.sampled_from(NAMES),
    )


def _literal():
    ints = st.integers(0, 999).map(A.IntLit)
    floats = (
        st.floats(0, 99, allow_nan=False)
        .map(lambda f: round(f, 3))
        .map(A.FloatLit)
    )
    strings = st.text(
        alphabet="ab c'z_", min_size=0, max_size=6
    ).map(A.StringLit)
    return ints | floats | strings


def _numeric():
    base = _col() | st.integers(0, 99).map(A.IntLit)
    return st.recursive(
        base,
        lambda inner: st.builds(
            A.Arith,
            op=st.sampled_from(("+", "-", "*")),
            left=inner,
            right=inner,
        )
        | inner.map(A.Neg),
        max_leaves=4,
    )


def _box(ndims):
    pair = st.tuples(st.integers(-9, 50), st.integers(0, 50)).map(
        lambda p: (min(p), max(p))
    )
    return st.builds(
        A.BoxLit, ranges=st.tuples(*([pair] * ndims)).map(tuple)
    )


def _predicate():
    compare = st.builds(
        A.Compare,
        op=st.sampled_from(("=", "!=", "<", "<=", ">", ">=")),
        left=_numeric(),
        right=_literal() | _numeric(),
    )
    between = st.builds(
        A.Between, expr=_numeric(), low=_numeric(), high=_numeric()
    )
    contains = st.integers(1, 3).flatmap(
        lambda n: st.builds(
            A.Contains,
            box=_box(n),
            point=st.builds(
                A.PointRef,
                columns=st.tuples(*([_col()] * n)).map(tuple),
            ),
        )
    )
    return compare | between | contains


def _where():
    return st.recursive(
        _predicate(),
        lambda inner: st.builds(A.And, left=inner, right=inner)
        | st.builds(A.Or, left=inner, right=inner)
        | inner.map(A.Not),
        max_leaves=5,
    )


def _select():
    order = st.builds(
        A.OrderBy,
        columns=st.lists(_col(), min_size=1, max_size=2).map(tuple),
        descending=st.booleans(),
        explicit_direction=st.just(True),
    )
    join = st.builds(
        A.Join,
        table=st.just("q"),
        on=st.builds(
            A.Overlaps,
            left=st.builds(
                A.ColumnRef, table=st.just("t"), name=st.just("geom")
            ),
            right=st.builds(
                A.ColumnRef, table=st.just("q"), name=st.just("geom")
            ),
        ),
    )
    return st.builds(
        A.Select,
        columns=st.none()
        | st.lists(_col(), min_size=1, max_size=3).map(tuple),
        table=st.sampled_from(TABLES),
        distinct=st.booleans(),
        join=st.none() | join,
        where=st.none() | _where(),
        order=st.none() | order,
        limit=st.none() | st.integers(0, 99),
    )


@settings(max_examples=120, deadline=None)
@given(_select())
def test_parse_render_roundtrip(select):
    text = render(select)
    assert parse(text).select == select


@settings(max_examples=120, deadline=None)
@given(_select())
def test_render_is_idempotent(select):
    text = render(select)
    assert render(parse(text).select) == text


@settings(max_examples=60, deadline=None)
@given(_select(), st.sampled_from([None, "explain", "analyze"]))
def test_statement_modes_roundtrip(select, mode):
    text = render(select)
    if mode == "explain":
        text = "explain " + text
    elif mode == "analyze":
        text = "EXPLAIN ANALYZE " + text
    stmt = parse(text)
    assert stmt.mode == mode
    assert stmt.select == select


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=80))
def test_byte_soup_only_raises_parse_error(soup):
    try:
        parse(soup)
    except ParseError:
        pass  # the only acceptable failure mode


@settings(max_examples=300, deadline=None)
@given(
    st.text(
        alphabet="SELECT FROMWHEANDORBY()*,.'0123456789ab<>=+-@",
        max_size=60,
    )
)
def test_near_miss_soup_only_raises_parse_error(soup):
    try:
        parse(soup)
    except ParseError:
        pass
