"""Tests for the Section 5.1 / 5.3.1 analysis."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.analysis import (
    bit_span,
    block_shape,
    coarsen_size,
    coarsening_tradeoff,
    element_count,
    element_count_2d,
    pages_per_block_bound,
    predicted_partial_match_pages,
    predicted_range_pages,
)
from repro.core.decompose import decompose_box
from repro.core.geometry import Box, Grid


class TestElementCount:
    def test_matches_actual_decomposition_2d(self):
        grid = Grid(2, 4)
        for u in range(0, 17, 3):
            for v in range(0, 17, 5):
                if u == 0 or v == 0:
                    assert element_count((u, v), 4) == 0
                    continue
                actual = len(
                    decompose_box(grid, Box(((0, u - 1), (0, v - 1))))
                )
                assert element_count((u, v), 4) == actual, (u, v)

    def test_matches_actual_decomposition_3d(self):
        grid = Grid(3, 3)
        for sizes in [(3, 5, 2), (8, 8, 8), (7, 1, 4)]:
            box = Box(tuple((0, s - 1) for s in sizes))
            assert element_count(sizes, 3) == len(decompose_box(grid, box))

    def test_whole_space_is_one(self):
        assert element_count((16, 16), 4) == 1
        assert element_count((8, 8, 8), 3) == 1

    def test_empty_box(self):
        assert element_count((0, 5), 4) == 0

    def test_cyclic_property(self):
        """Section 5.1: E(U, V) = E(2U, 2V)."""
        for u, v in [(3, 5), (7, 2), (13, 9), (1, 1), (11, 16)]:
            assert element_count_2d(u, v, 6) == element_count_2d(
                2 * u, 2 * v, 7
            )

    @given(st.integers(1, 32), st.integers(1, 32))
    def test_cyclic_property_hypothesis(self, u, v):
        assert element_count_2d(u, v, 5) == element_count_2d(2 * u, 2 * v, 6)

    def test_power_of_two_boxes_are_cheap(self):
        # Aligned dyadic boxes need very few elements.
        assert element_count_2d(16, 16, 6) == 1
        assert element_count_2d(16, 32, 6) <= 2

    def test_bit_span_drives_growth(self):
        """Section 5.1: E is highly dependent on the bit span of U|V.
        Zeroing low bits (smaller span) must not increase the count."""
        depth = 8
        u, v = 0b01101101, 0b01011011
        baseline = element_count_2d(u, v, depth)
        coarse = element_count_2d(
            coarsen_size(u, 4), coarsen_size(v, 4), depth
        )
        assert bit_span(
            coarsen_size(u, 4) | coarsen_size(v, 4)
        ) < bit_span(u | v)
        assert coarse < baseline

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            element_count((5,), 2)  # 5 > 4
        with pytest.raises(ValueError):
            element_count((), 3)


class TestBitSpan:
    def test_examples(self):
        assert bit_span(0b01101101) == 7
        assert bit_span(0b01110000) == 3
        assert bit_span(0) == 0
        assert bit_span(1) == 1
        assert bit_span(0b1000) == 1
        assert bit_span(0b1001) == 4


class TestCoarsening:
    def test_paper_example(self):
        """Section 5.1: "if U = 01101101 and m = 4, then U' = 01110000"."""
        assert coarsen_size(0b01101101, 4) == 0b01110000

    def test_zero_m_is_identity(self):
        assert coarsen_size(123, 0) == 123

    def test_already_aligned(self):
        assert coarsen_size(0b0110000, 4) == 0b0110000

    def test_monotone_and_aligned(self):
        for size in range(0, 200, 7):
            for m in range(6):
                out = coarsen_size(size, m)
                assert out >= size
                assert out % (1 << m) == 0
                assert out - size < (1 << m)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            coarsen_size(-1, 2)
        with pytest.raises(ValueError):
            coarsen_size(1, -2)

    def test_tradeoff_reduces_elements_slow_error_growth(self):
        """The optimization: fewer elements, slowly growing area error."""
        t = coarsening_tradeoff((109, 91), depth=8, m=4)
        assert t.elements_after < t.elements_before
        assert 0 <= t.volume_error < 0.5
        assert t.element_reduction > 0.3

    def test_tradeoff_m_zero_is_noop(self):
        t = coarsening_tradeoff((109, 91), depth=8, m=0)
        assert t.elements_after == t.elements_before
        assert t.volume_error == 0.0

    def test_error_grows_slowly_with_m(self):
        """Going one level coarser at most doubles... in fact the error
        stays small relative to the element savings."""
        errors = [
            coarsening_tradeoff((109, 91), depth=8, m=m).volume_error
            for m in range(6)
        ]
        assert all(e < 0.6 for e in errors)
        assert errors == sorted(errors)  # monotone in m


class TestBlocks:
    def test_published_constants(self):
        assert pages_per_block_bound(2) == 6
        assert pages_per_block_bound(3) == Fraction(28, 3)
        assert pages_per_block_bound(1) == 2

    def test_unpublished_dimensions_raise(self):
        with pytest.raises(ValueError):
            pages_per_block_bound(4)

    def test_block_shape_power_of_two_sides(self):
        for pixels in (1, 2, 4, 64, 100, 4096):
            for k in (1, 2, 3):
                shape = block_shape(pixels, k)
                assert len(shape) == k
                for s in shape:
                    assert s & (s - 1) == 0
                total = 1
                for s in shape:
                    total *= s
                assert total >= pixels

    def test_block_shape_aspect_at_most_two(self):
        for pixels in (2, 8, 32, 128, 512):
            shape = block_shape(pixels, 2)
            assert max(shape) <= 2 * min(shape)

    def test_rejects_empty_block(self):
        with pytest.raises(ValueError):
            block_shape(0, 2)


class TestPredictions:
    def test_range_leading_term_is_vN(self):
        """Section 5.3.1: O(vN) pages for a range query."""
        side, n_pages = 1024, 100_000
        big = predicted_range_pages((512, 512), side, n_pages, 2)
        small = predicted_range_pages((128, 128), side, n_pages, 2)
        # Volume ratio is 16; with many pages the boundary terms fade
        # and the prediction scales near-linearly in v.
        assert 10 < big / small <= 16

    def test_range_clamped_to_total(self):
        assert (
            predicted_range_pages((1024, 1024), 1024, 100, 2) <= 100
        )

    def test_long_narrow_costs_more(self):
        """Same volume, worse shape -> more predicted pages."""
        side, n_pages = 1024, 1000
        square = predicted_range_pages((64, 64), side, n_pages, 2)
        narrow = predicted_range_pages((1024, 4), side, n_pages, 2)
        assert narrow > square

    def test_partial_match_exponent(self):
        """Section 5.3.1: O(N^(1 - t/k)) pages."""
        assert predicted_partial_match_pages(10000, 2, 1) == pytest.approx(
            100.0
        )
        assert predicted_partial_match_pages(1000, 3, 1) == pytest.approx(
            1000 ** (2 / 3)
        )
        assert predicted_partial_match_pages(1000, 3, 0) == 1000.0

    def test_partial_match_rejects_t_equal_k(self):
        with pytest.raises(ValueError):
            predicted_partial_match_pages(1000, 2, 2)

    def test_range_rejects_no_pages(self):
        with pytest.raises(ValueError):
            predicted_range_pages((4, 4), 16, 0, 2)
