"""Tests for the merge-based range search (Section 3.3, Figure 5)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decompose import Element, decompose_box
from repro.core.geometry import Box, Grid
from repro.core.rangesearch import (
    MergeStats,
    PointRecord,
    SortedPointCursor,
    brute_force_search,
    build_point_sequence,
    range_search,
    range_search_bigmin,
    range_search_simple,
)

from conftest import random_box, random_points


def run_all_variants(grid, points, box):
    seq = build_point_sequence(grid, points)
    elements = [Element.of(z, grid) for z in decompose_box(grid, box)]
    merged = list(range_search(SortedPointCursor(seq), grid, box))
    simple = list(range_search_simple(seq, elements))
    jumped = list(range_search_bigmin(SortedPointCursor(seq), grid, box))
    return merged, simple, jumped


class TestBuildPointSequence:
    def test_sorted_by_z(self, grid8, rng):
        points = random_points(rng, grid8, 30)
        seq = build_point_sequence(grid8, points)
        assert [r.z for r in seq] == sorted(r.z for r in seq)

    def test_payload_is_point(self, grid8):
        seq = build_point_sequence(grid8, [(3, 5)])
        assert seq[0].payload == (3, 5)
        assert seq[0].z == 27


class TestSortedPointCursor:
    def test_iteration(self, grid8, rng):
        seq = build_point_sequence(grid8, random_points(rng, grid8, 10))
        cursor = SortedPointCursor(seq)
        walked = []
        while cursor.current is not None:
            walked.append(cursor.current)
            cursor.step()
        assert walked == seq

    def test_seek_forward_only(self, grid8):
        seq = build_point_sequence(grid8, [(0, 0), (3, 5), (7, 7)])
        cursor = SortedPointCursor(seq)
        cursor.seek(27)
        assert cursor.current.z == 27
        cursor.seek(0)  # never goes back
        assert cursor.current.z == 27

    def test_seek_past_end(self, grid8):
        seq = build_point_sequence(grid8, [(0, 0)])
        cursor = SortedPointCursor(seq)
        assert cursor.seek(1) is None

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            SortedPointCursor([PointRecord(5, None), PointRecord(1, None)])

    def test_empty(self):
        cursor = SortedPointCursor([])
        assert cursor.current is None
        assert cursor.step() is None
        assert cursor.seek(0) is None


class TestCorrectness:
    def test_figure5_scenario(self, grid8, figure_box):
        points = [(0, 1), (1, 1), (2, 3), (3, 6), (5, 2), (6, 6), (2, 4)]
        merged, simple, jumped = run_all_variants(grid8, points, figure_box)
        truth = brute_force_search(grid8, points, figure_box)
        assert merged == simple == jumped == truth
        assert set(truth) == {(1, 1), (2, 3), (2, 4)}

    def test_empty_box_region(self, grid8):
        points = [(0, 0), (7, 7)]
        box = Box(((3, 4), (3, 4)))
        merged, simple, jumped = run_all_variants(grid8, points, box)
        assert merged == simple == jumped == []

    def test_no_points(self, grid8, figure_box):
        merged, simple, jumped = run_all_variants(grid8, [], figure_box)
        assert merged == simple == jumped == []

    def test_all_points_match(self, grid8):
        points = [(x, y) for x in range(8) for y in range(8)]
        box = grid8.whole_space()
        merged, simple, jumped = run_all_variants(grid8, points, box)
        assert len(merged) == len(simple) == len(jumped) == 64

    def test_duplicate_points(self, grid8):
        points = [(2, 2)] * 5 + [(6, 6)] * 3
        box = Box(((0, 3), (0, 3)))
        merged, simple, jumped = run_all_variants(grid8, points, box)
        assert merged == simple == jumped == [(2, 2)] * 5

    def test_box_outside_grid(self, grid8):
        points = [(1, 1)]
        box = Box(((10, 12), (10, 12)))
        merged, simple, jumped = run_all_variants(grid8, points, box)
        assert merged == simple == jumped == []

    def test_results_in_z_order(self, grid64, rng):
        points = random_points(rng, grid64, 200)
        box = Box(((5, 40), (10, 55)))
        merged, _, _ = run_all_variants(grid64, points, box)
        zs = [grid64.zvalue(p).bits for p in merged]
        assert zs == sorted(zs)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_agreement(self, data):
        grid = Grid(2, 5)
        rng = random.Random(data.draw(st.integers(0, 10**6)))
        points = random_points(rng, grid, 100)
        box = random_box(rng, grid)
        merged, simple, jumped = run_all_variants(grid, points, box)
        truth = brute_force_search(grid, points, box)
        assert merged == simple == jumped == truth

    def test_3d_agreement(self, grid3d, rng):
        points = random_points(rng, grid3d, 200)
        box = Box(((2, 9), (1, 12), (5, 14)))
        merged, simple, jumped = run_all_variants(grid3d, points, box)
        truth = brute_force_search(grid3d, points, box)
        assert merged == simple == jumped == truth

    def test_1d_agreement(self, rng):
        grid = Grid(1, 8)
        points = random_points(rng, grid, 100)
        box = Box(((30, 200),))
        merged, simple, jumped = run_all_variants(grid, points, box)
        truth = brute_force_search(grid, points, box)
        assert merged == simple == jumped == truth


class TestSkippingOptimization:
    def test_skips_reduce_points_examined(self, grid64):
        # Clustered points far from the query: the optimized merge must
        # not walk them one by one.
        points = [(x, 63) for x in range(50)] + [(2, 2)]
        seq = build_point_sequence(grid64, points)
        box = Box(((0, 3), (0, 3)))
        stats = MergeStats()
        result = list(
            range_search(SortedPointCursor(seq), grid64, box, stats)
        )
        assert result == [(2, 2)]
        assert stats.points_examined < len(points)

    def test_stats_populated(self, grid64, rng):
        points = random_points(rng, grid64, 300)
        seq = build_point_sequence(grid64, points)
        box = Box(((10, 30), (10, 30)))
        stats = MergeStats()
        result = list(
            range_search(SortedPointCursor(seq), grid64, box, stats)
        )
        assert stats.matches == len(result)
        assert stats.elements_generated > 0

    def test_simple_merge_stats(self, grid8, figure_box):
        points = [(1, 1), (5, 5)]
        seq = build_point_sequence(grid8, points)
        elements = [
            Element.of(z, grid8) for z in decompose_box(grid8, figure_box)
        ]
        stats = MergeStats()
        list(range_search_simple(seq, elements, stats))
        assert stats.elements_generated == len(elements)

    def test_bigmin_seeks_on_miss(self, grid64):
        # Points inside the z envelope of the box but outside the box
        # itself force BIGMIN jumps.
        box = Box(((0, 15), (32, 47)))
        outside = [(20, 20), (25, 25), (30, 30)]
        inside = [(5, 40)]
        seq = build_point_sequence(grid64, outside + inside)
        stats = MergeStats()
        result = list(
            range_search_bigmin(
                SortedPointCursor(seq), grid64, box, stats
            )
        )
        assert result == [(5, 40)]
